"""Deterministic fault injection for simulations and sweeps.

The package supplies the chaos half of the robustness layer (the other
half is the fault-tolerant batch runner in
:mod:`repro.simulator.runner`): seedable :class:`FaultPlan` values that
compose with :class:`~repro.simulator.runner.SimulationSpec` digests, a
catalogue of fault models (spot-eviction storms, carbon-forecast
bias/dropout, corrupted traces, mid-run queue corruption, and
worker-process sabotage for runner chaos tests), and the hooks
``run_simulation`` uses to apply a plan.  ``docs/robustness.md`` is the
narrative guide.
"""

from __future__ import annotations

from repro.faults.apply import (
    apply_input_faults,
    apply_process_faults,
    engine_injector,
    wrap_eviction,
    wrap_forecaster,
)
from repro.faults.models import (
    KNOWN_FAULT_KINDS,
    PerturbedForecaster,
    QueueCorruptionInjector,
    StormEvictionModel,
    corrupt_carbon_nan,
    corrupt_carbon_truncate,
)
from repro.faults.plan import FaultPlan, FaultSpec, parse_fault_plan

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "parse_fault_plan",
    "KNOWN_FAULT_KINDS",
    "StormEvictionModel",
    "PerturbedForecaster",
    "QueueCorruptionInjector",
    "corrupt_carbon_nan",
    "corrupt_carbon_truncate",
    "apply_process_faults",
    "apply_input_faults",
    "wrap_forecaster",
    "wrap_eviction",
    "engine_injector",
]
