"""Fault model implementations behind :class:`~repro.faults.plan.FaultPlan`.

Three families, mirroring where real sweeps break (see
``docs/robustness.md`` for the taxonomy and the parameters of every
kind):

* **simulation faults** perturb the modelled world deterministically --
  spot-eviction storms, carbon-forecast bias/dropout, mid-run job-queue
  corruption.  The run completes with finite (but different) numbers, or
  the engine detects the damage and raises a typed error.
* **input faults** corrupt the trace data itself -- NaN-bearing or
  truncated carbon segments.  The validation layer either rejects them
  with :class:`~repro.errors.TraceError` or the simulation survives on
  the degraded input; a silent wrong number is never an outcome.
* **process faults** sabotage the worker process running the spec --
  crash, hang, deterministic failure, heal-after-N-attempts flakiness.
  They exist to exercise the runner's retry/timeout/respawn machinery
  from chaos tests.

Every class here is module-level and picklable, so faulty specs cross
process boundaries exactly like clean ones.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from repro.carbon.forecast import Forecaster
from repro.carbon.trace import CarbonIntensityTrace, HourlySeries
from repro.cluster.spot import EvictionModel
from repro.errors import ConfigError
from repro.units import MINUTES_PER_HOUR

__all__ = [
    "KNOWN_FAULT_KINDS",
    "StormEvictionModel",
    "PerturbedForecaster",
    "corrupt_carbon_nan",
    "corrupt_carbon_truncate",
    "QueueCorruptionInjector",
    "run_process_fault",
]

#: Catalogue of fault kinds: kind tag -> one-line description.  Parse-time
#: validation and ``docs/robustness.md`` both key off this mapping.
KNOWN_FAULT_KINDS: dict[str, str] = {
    "eviction-storm": "spot hazard spikes to `rate` inside [start_hour, start_hour+hours)",
    "forecast-bias": "every CI forecast is scaled by (1 + bias)",
    "forecast-dropout": "a seeded `fraction` of forecast hours report a stale fallback",
    "trace-nan": "`count` seeded hours of the carbon trace become NaN",
    "trace-truncate": "the carbon trace is cut to a `fraction` of its hours",
    "queue-corruption": "at a seeded minute the pending queue is shuffled or entries are dropped",
    "migration-drop": "a federated run ignores its migration delay (off-home staging becomes free)",
    "worker-crash": "the worker process dies via os._exit(code) at run start",
    "worker-hang": "the worker sleeps `seconds` at run start (timeout fodder)",
    "worker-fail": "the worker raises RuntimeError at run start",
    "worker-flaky": "fails until `path` records `times` prior attempts, then heals",
}


# ----------------------------------------------------------------------
# Simulation faults
# ----------------------------------------------------------------------
class StormEvictionModel(EvictionModel):
    """Spot-eviction storm: a base hazard with a high-rate window.

    Inside ``[start_minute, end_minute)`` the hazard is the storm's
    (memoryless, ``storm_rate`` per hour); outside it the wrapped base
    model applies.  The sampled eviction offset is the earlier of the
    base draw and the storm draw, so storms only ever *add* evictions.
    """

    def __init__(
        self,
        base: EvictionModel,
        storm_rate: float,
        start_minute: int,
        end_minute: int,
    ):
        if not 0 <= storm_rate < 1:
            raise ConfigError("storm eviction rate must be in [0, 1)")
        if end_minute <= start_minute:
            raise ConfigError("storm window must be non-empty")
        self.base = base
        self.storm_rate = storm_rate
        self.start_minute = int(start_minute)
        self.end_minute = int(end_minute)
        self._lambda_per_minute = (
            -math.log(1.0 - storm_rate) / MINUTES_PER_HOUR if storm_rate > 0 else 0.0
        )

    def sample_eviction(self, start_minute: int, rng: np.random.Generator) -> float:
        """Earlier of the base model's draw and the storm-window draw.

        The storm draw is consumed unconditionally so the per-job RNG
        stream advances identically however the allocation falls relative
        to the window -- eviction times depend only on (seed, job).
        """
        base_offset = self.base.sample_eviction(start_minute, rng)
        if self._lambda_per_minute == 0.0:
            return base_offset
        storm_draw = float(rng.exponential(1.0 / self._lambda_per_minute))
        if start_minute >= self.end_minute:
            return base_offset
        # The storm hazard only acts once the allocation enters the window.
        storm_offset = max(0, self.start_minute - start_minute) + storm_draw
        if start_minute + storm_offset >= self.end_minute:
            return base_offset  # survived to the storm's end
        return min(base_offset, storm_offset)


class PerturbedForecaster(Forecaster):
    """Forecaster whose answers come from a perturbed copy of the trace.

    Implements both forecast fault kinds: a multiplicative ``bias`` and a
    seeded per-hour ``dropout`` mask whose dropped hours answer with the
    trace mean (a stale "climatology" fallback).  Accounting is
    untouched -- ``self.trace`` stays the *true* trace (the engine
    insists on it), only the policy-visible view is wrong.
    """

    def __init__(
        self,
        trace: CarbonIntensityTrace,
        bias: float = 0.0,
        dropout_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(trace)
        if bias <= -1.0:
            raise ConfigError("forecast bias must keep intensities positive (> -1)")
        if not 0.0 <= dropout_fraction <= 1.0:
            raise ConfigError("forecast dropout fraction must be in [0, 1]")
        values = trace.hourly * (1.0 + bias)
        if dropout_fraction > 0.0:
            if rng is None:
                raise ConfigError("forecast dropout needs a plan-seeded rng")
            mask = rng.random(trace.num_hours) < dropout_fraction
            values = np.where(mask, float(trace.hourly.mean()), values)
        self._faulty = HourlySeries(values, name=f"{trace.name}:faulty")

    def slot_values(self, now: int, start_minute: int, num_hours: int) -> np.ndarray:
        """Perturbed hourly values for the requested window."""
        return self._faulty.hour_values(start_minute // MINUTES_PER_HOUR, num_hours)

    def interval_carbon(self, now: int, start_minute: int, end_minute: int) -> float:
        """Perturbed CI integral over ``[start, end)``."""
        return self._faulty.integrate(start_minute, end_minute)

    def window_carbon_many(
        self, now: int, starts: np.ndarray, duration: int
    ) -> np.ndarray:
        """Vectorized perturbed CI integrals over equal-length windows."""
        return self._faulty.integrate_many(starts, duration)


class QueueCorruptionInjector:
    """Mid-run corruption of the engine's pending (reserved-pickup) queue.

    Fires once, at the first event at or after ``fire_minute``:

    * ``mode="shuffle"`` deterministically permutes the queue -- the
      first-fit drain order changes, the run completes with finite (but
      possibly different) numbers;
    * ``mode="drop"`` loses up to ``count`` entries as if the queue's
      backing store forgot them -- the engine's end-of-run audit then
      raises the typed ``jobs never finished`` :class:`SimulationError`
      instead of reporting totals that silently miss jobs.
    """

    def __init__(self, fire_minute: int, mode: str, count: int, rng: np.random.Generator):
        if mode not in ("shuffle", "drop"):
            raise ConfigError(f"unknown queue-corruption mode {mode!r}")
        if fire_minute < 0:
            raise ConfigError("queue-corruption minute must be non-negative")
        self.next_time = int(fire_minute)
        self.mode = mode
        self.count = int(count)
        self._rng = rng

    def fire(self, engine, now: int) -> None:
        """Apply the corruption to ``engine`` and disarm the injector."""
        self.next_time = -1  # disarmed; engine checks next_time >= 0
        pending = engine._pending
        if not pending:
            return
        if self.mode == "shuffle":
            order = self._rng.permutation(len(pending))
            engine._pending = [pending[i] for i in order]
            return
        for _ in range(min(self.count, len(pending))):
            victim_index = int(self._rng.integers(len(pending)))
            victim = pending.pop(victim_index)
            # The corrupted queue "remembers" the job as started, so the
            # engine never allocates it -- detected by the end-of-run audit.
            victim.started = True

    @property
    def armed(self) -> bool:
        """Whether the injector still has a pending firing."""
        return self.next_time >= 0


# ----------------------------------------------------------------------
# Input faults
# ----------------------------------------------------------------------
def corrupt_carbon_nan(
    carbon: CarbonIntensityTrace, count: int, rng: np.random.Generator
) -> CarbonIntensityTrace:
    """Rebuild ``carbon`` with ``count`` seeded hours set to NaN.

    :class:`HourlySeries` rejects non-finite values at construction, so
    this *raises* :class:`~repro.errors.TraceError` -- the typed-rejection
    path the chaos suite asserts.  It returns only if ``count`` is 0.
    """
    if count <= 0:
        return carbon
    values = carbon.hourly.copy()
    positions = rng.choice(values.size, size=min(count, values.size), replace=False)
    values[positions] = np.nan
    return CarbonIntensityTrace(values, name=carbon.name)


def corrupt_carbon_truncate(
    carbon: CarbonIntensityTrace, fraction: float
) -> CarbonIntensityTrace:
    """``carbon`` cut down to ``fraction`` of its hours (at least one).

    A truncated trace is *survivable*: ``prepare_carbon`` re-tiles it to
    cover the workload, so the run completes on the shortened cycle.  A
    fraction that leaves no data raises :class:`TraceError`.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError("truncation fraction must be in (0, 1]")
    keep = int(carbon.num_hours * fraction)
    return carbon.slice_hours(0, max(1, keep))


# ----------------------------------------------------------------------
# Process faults (chaos-testing aids for the runner)
# ----------------------------------------------------------------------
def run_process_fault(fault) -> None:
    """Execute one ``worker-*`` fault in the current process.

    Called at the top of a faulted ``run_simulation``; the whole point is
    to damage the process the way real sweeps get damaged, so the batch
    runner's recovery paths can be tested end to end.
    """
    kind = fault.kind
    if kind == "worker-crash":
        os._exit(int(fault.param("code", 1)))
    if kind == "worker-hang":
        time.sleep(float(fault.param("seconds", 5.0)))
        return
    if kind == "worker-fail":
        raise RuntimeError(fault.param("message", "injected worker failure"))
    if kind == "worker-flaky":
        path = fault.param("path")
        if not path:
            raise ConfigError("worker-flaky needs a path= parameter")
        times = int(fault.param("times", 1))
        try:
            with open(path, encoding="utf-8") as handle:
                prior = len(handle.read().splitlines())
        except FileNotFoundError:
            prior = 0
        if prior < times:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("attempt\n")
            raise RuntimeError(f"injected flaky failure (attempt {prior + 1}/{times})")
        return
    raise ConfigError(f"unknown process fault {kind!r}")
