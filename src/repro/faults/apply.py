"""Application of a :class:`FaultPlan` to one simulation's components.

:func:`run_simulation` calls these hooks at fixed points of its setup --
process faults first, then input corruption, then wrappers around the
forecaster and eviction model, and finally the engine's mid-run injector.
Each hook is a no-op (returning its input unchanged) when the plan holds
no fault of its family, so a ``fault_plan=None`` or empty plan leaves the
simulation byte-identical to an unfaulted build.
"""

from __future__ import annotations

from repro.carbon.forecast import Forecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.spot import EvictionModel, NoEvictions
from repro.faults.models import (
    PerturbedForecaster,
    QueueCorruptionInjector,
    StormEvictionModel,
    corrupt_carbon_nan,
    corrupt_carbon_truncate,
    run_process_fault,
)
from repro.faults.plan import FaultPlan
from repro.units import MINUTES_PER_HOUR

__all__ = [
    "apply_process_faults",
    "apply_input_faults",
    "wrap_forecaster",
    "wrap_eviction",
    "engine_injector",
]


def apply_process_faults(plan: FaultPlan | None) -> None:
    """Run every ``worker-*`` fault (crash/hang/fail/flaky) in-process."""
    if plan is None:
        return
    for fault in plan.faults:
        if fault.kind.startswith("worker-"):
            run_process_fault(fault)


def apply_input_faults(
    plan: FaultPlan | None, carbon: CarbonIntensityTrace
) -> CarbonIntensityTrace:
    """The carbon trace after every input fault of the plan.

    Truncation applies before NaN injection so a plan combining both
    corrupts the trace that will actually be used.  NaN injection raises
    :class:`~repro.errors.TraceError` (typed rejection); truncation
    returns a shorter trace the simulation survives on.
    """
    if plan is None:
        return carbon
    trace = carbon
    for fault in plan.by_kind("trace-truncate"):
        trace = corrupt_carbon_truncate(trace, float(fault.param("fraction", 0.5)))
    for fault in plan.by_kind("trace-nan"):
        trace = corrupt_carbon_nan(
            trace, int(fault.param("count", 1)), plan.rng("trace-nan")
        )
    return trace


def wrap_forecaster(plan: FaultPlan | None, forecaster: Forecaster) -> Forecaster:
    """The forecaster the policies will see, after forecast faults.

    Bias and dropout collapse into one :class:`PerturbedForecaster` over
    the *true* trace (accounting never uses the perturbed view).
    """
    if plan is None:
        return forecaster
    bias = 0.0
    for fault in plan.by_kind("forecast-bias"):
        bias += float(fault.param("bias", 0.25))
    dropout = 0.0
    for fault in plan.by_kind("forecast-dropout"):
        dropout = max(dropout, float(fault.param("fraction", 0.1)))
    if bias == 0.0 and dropout == 0.0:
        return forecaster
    return PerturbedForecaster(
        forecaster.trace,
        bias=bias,
        dropout_fraction=dropout,
        rng=plan.rng("forecast-dropout") if dropout > 0.0 else None,
    )


def wrap_eviction(
    plan: FaultPlan | None, model: EvictionModel | None
) -> EvictionModel | None:
    """The eviction model after storm faults (stacking left to right)."""
    if plan is None:
        return model
    storms = plan.by_kind("eviction-storm")
    if not storms:
        return model
    wrapped = model if model is not None else NoEvictions()
    for fault in storms:
        start_hour = int(fault.param("start_hour", 0))
        hours = int(fault.param("hours", 6))
        wrapped = StormEvictionModel(
            wrapped,
            storm_rate=float(fault.param("rate", 0.5)),
            start_minute=start_hour * MINUTES_PER_HOUR,
            end_minute=(start_hour + hours) * MINUTES_PER_HOUR,
        )
    return wrapped


def engine_injector(plan: FaultPlan | None) -> QueueCorruptionInjector | None:
    """The mid-run injector for the engine, or ``None`` when unfaulted."""
    if plan is None:
        return None
    corruptions = plan.by_kind("queue-corruption")
    if not corruptions:
        return None
    fault = corruptions[0]
    return QueueCorruptionInjector(
        fire_minute=int(fault.param("minute", 0)),
        mode=str(fault.param("mode", "shuffle")),
        count=int(fault.param("count", 1)),
        rng=plan.rng("queue-corruption"),
    )
