"""Declarative, seedable fault plans.

A :class:`FaultPlan` is the fault-injection analogue of a
:class:`~repro.simulator.runner.spec.SimulationSpec`: a frozen, hashable,
picklable description of *which* fault models perturb a simulation and
*how* they are seeded.  Plans compose with spec digests, so a faulty run
caches, deduplicates, and reproduces exactly like a clean one -- two runs
of the same spec under the same plan (same seed) are bit-identical.

Every randomized fault draws from :meth:`FaultPlan.rng`, which derives an
independent, deterministic ``np.random.Generator`` per fault label from
the plan seed -- never from global RNG state (lint rule SIM001).

The catalogue of fault kinds and their parameters lives in
:mod:`repro.faults.models`; ``docs/robustness.md`` is the prose taxonomy.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["FaultSpec", "FaultPlan", "parse_fault_plan"]


#: Parameter values a fault may carry (JSON-native scalars only, so
#: plans stay hashable, picklable, and digest-stable).
_SCALAR_TYPES = (str, int, float, bool)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind tag plus its sorted ``(name, value)`` parameters.

    Build via :meth:`make` (which sorts and type-checks the parameters)
    rather than the raw constructor.
    """

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, **params) -> "FaultSpec":
        """A fault spec with canonically ordered, scalar-only parameters."""
        for name, value in params.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise ConfigError(
                    f"fault {kind!r} parameter {name!r} must be a scalar, "
                    f"got {type(value).__name__}"
                )
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def param(self, name: str, default=None):
        """The value of parameter ``name``, or ``default`` when absent."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        """Canonical ``kind:name=value,...`` rendering (digest input)."""
        if not self.params:
            return self.kind
        rendered = ",".join(f"{name}={value!r}" for name, value in self.params)
        return f"{self.kind}:{rendered}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults plus the seed their randomness derives from.

    The plan is applied in fault order; faults of independent kinds
    commute, and faults sharing a kind stack left to right.  ``seed``
    scopes *every* draw any fault makes, so re-running a spec with an
    identical plan is bit-identical (the reproducibility contract in
    ``docs/robustness.md``).
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def build(cls, *faults: FaultSpec, seed: int = 0) -> "FaultPlan":
        """A plan over ``faults`` (``FaultSpec`` values), seeded by ``seed``."""
        for fault in faults:
            if not isinstance(fault, FaultSpec):
                raise ConfigError(
                    f"FaultPlan.build takes FaultSpec values, got {fault!r}"
                )
        return cls(faults=tuple(faults), seed=int(seed))

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same faults under a different seed."""
        return FaultPlan(faults=self.faults, seed=int(seed))

    def kinds(self) -> tuple[str, ...]:
        """The kind tag of every fault, in plan order."""
        return tuple(fault.kind for fault in self.faults)

    def by_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        """Every fault of one kind, in plan order."""
        return tuple(fault for fault in self.faults if fault.kind == kind)

    def rng(self, label: str) -> np.random.Generator:
        """A deterministic generator scoped to this plan and ``label``.

        Distinct labels (one per fault application site) give independent
        streams; the same (seed, label) pair always replays identically.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, zlib.crc32(label.encode())])
        )

    def digest(self) -> str:
        """SHA-256 content address of the plan (faults, order, and seed).

        Folded into :meth:`SimulationSpec.digest`, so the result cache
        never serves a clean result for a faulty request or vice versa.
        """
        parts = ["FaultPlan", str(self.seed)]
        parts.extend(fault.describe() for fault in self.faults)
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def _parse_value(text: str):
    """Parse one parameter value: int, then float, then bare string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_fault_plan(text: str, seed: int = 0) -> FaultPlan:
    """Parse the CLI syntax: ``kind[:k=v,...][;kind...]``.

    Example: ``"eviction-storm:rate=0.6,start_hour=30,hours=6;trace-nan:count=2"``.
    Fault kinds are validated against the catalogue in
    :mod:`repro.faults.models` so typos fail loudly at parse time.
    """
    from repro.faults.models import KNOWN_FAULT_KINDS

    faults = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, param_text = clause.partition(":")
        kind = kind.strip()
        if kind not in KNOWN_FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {kind!r}; known: {sorted(KNOWN_FAULT_KINDS)}"
            )
        params = {}
        if param_text:
            for pair in param_text.split(","):
                name, separator, value = pair.partition("=")
                if not separator or not name.strip():
                    raise ConfigError(
                        f"fault {kind!r}: malformed parameter {pair!r} "
                        "(expected name=value)"
                    )
                params[name.strip()] = _parse_value(value.strip())
        faults.append(FaultSpec.make(kind, **params))
    if not faults:
        raise ConfigError(f"fault plan {text!r} names no faults")
    return FaultPlan.build(*faults, seed=seed)
