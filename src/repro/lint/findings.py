"""The :class:`Finding` record emitted by every simlint rule.

A finding pinpoints one violation: file, position, rule code, and a
human-readable message.  Findings sort by location so reports are stable
regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Format as the conventional ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
