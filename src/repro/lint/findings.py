"""The :class:`Finding` record emitted by every simlint rule.

A finding pinpoints one violation: file, position, rule code, and a
human-readable message.  Findings sort by location so reports are stable
regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Whole-program evidence (e.g. the SIM102 call chain proving
    #: reachability); empty for per-module rules.  Rendered by the JSON
    #: format and ``--explain``-style tooling, not the one-line form.
    evidence: tuple[str, ...] = ()

    def render(self) -> str:
        """Format as the conventional ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_record(self) -> dict:
        """The structured (JSON-ready) form of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "evidence": list(self.evidence),
        }

    def baseline_key(self) -> str:
        """Identity used by ``--baseline`` matching.

        Deliberately excludes line/col (and evidence) so unrelated edits
        that shift a known finding do not resurface it as new.
        """
        return f"{self.path}::{self.code}::{self.message}"
