"""``python -m repro.lint`` -- the simlint command line.

Usage::

    python -m repro.lint src tests          # lint trees, exit 1 on findings
    python -m repro.lint --list-rules       # rule codes + rationales
    python -m repro.lint --select SIM001 src/repro/policies

Findings print one per line as ``path:line:col: CODE message``; the
exit status is the number of findings capped at 1, so CI can gate on
it (2 for usage errors: unknown rule codes, nonexistent paths).  See
docs/linting.md for the rule catalogue and the
``# simlint: disable=CODE`` suppression syntax.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.lint.base import all_rules
from repro.lint.runner import lint_paths

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: static checks for GAIA's simulation invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line; findings only",
    )
    return parser


def _split(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    return [code.strip() for code in spec.split(",") if code.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; return a process exit status (0 = clean)."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0

    try:
        findings = lint_paths(
            args.paths, select=_split(args.select), ignore=_split(args.ignore)
        )
    except ConfigError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"simlint: {len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0
