"""``python -m repro.lint`` -- the simlint command line.

Usage::

    python -m repro.lint src tests          # lint trees, exit 1 on findings
    python -m repro.lint --list-rules       # rule codes + rationales
    python -m repro.lint --select SIM001 src/repro/policies
    python -m repro.lint --format json src  # machine-readable report
    python -m repro.lint --write-baseline simlint-baseline.json src tests
    python -m repro.lint --baseline simlint-baseline.json src tests

Findings print one per line as ``path:line:col: CODE message`` (or as a
JSON report with ``--format json``, including the SIM102
certified-reachable-set evidence); the exit status is the number of
findings capped at 1, so CI can gate on it (2 for usage errors: unknown
rule codes, nonexistent paths, unreadable baselines).  With
``--baseline``, previously recorded findings are filtered out and only
*new* ones fail the run.  See docs/linting.md for the rule catalogue,
the baseline workflow, and the ``# simlint: disable=CODE`` suppression
syntax.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.errors import ConfigError
from repro.lint.analysis.certify import certified_modules, entry_functions
from repro.lint.analysis.project import ProjectContext
from repro.lint.base import all_rules
from repro.lint.findings import Finding
from repro.lint.runner import lint_paths_with_project

__all__ = ["main"]

#: Schema version of the JSON report and baseline formats.
_REPORT_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: static checks for GAIA's simulation invariants",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="JSON baseline of accepted findings; only new ones fail the run",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line; findings only",
    )
    return parser


def _split(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    return [code.strip() for code in spec.split(",") if code.strip()]


def _load_baseline(path: str) -> set[str]:
    """The accepted finding keys recorded in a baseline file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigError(f"cannot read baseline {path}: {error}") from error
    keys = payload.get("keys") if isinstance(payload, dict) else None
    if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
        raise ConfigError(
            f"baseline {path} is malformed: expected {{'keys': [str, ...]}}"
        )
    return set(keys)


def _write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Record the given findings' keys as the new baseline."""
    payload = {
        "version": _REPORT_VERSION,
        "keys": sorted({finding.baseline_key() for finding in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _certification_report(project: ProjectContext) -> dict | None:
    """The SIM102 certified-reachable-set section of the JSON report.

    ``None`` when the linted tree defines no digest entry point (e.g. a
    partial run over a single module).
    """
    entries = entry_functions(project)
    if not entries:
        return None
    modules = certified_modules(project)
    reachable = project.callgraph().reachable(sorted(entries))
    return {
        "entry_points": sorted(entries),
        "reachable_functions": sorted(reachable),
        "certified_modules": sorted(modules),
        "certified_files": sorted(
            str(project.modules[name].path) for name in modules
        ),
    }


def _json_report(
    findings: Sequence[Finding],
    baselined: int,
    project: ProjectContext,
) -> str:
    report = {
        "version": _REPORT_VERSION,
        "findings": [finding.to_record() for finding in findings],
        "baselined": baselined,
        "certification": _certification_report(project),
    }
    return json.dumps(report, indent=2)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; return a process exit status (0 = clean)."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0

    try:
        baseline = _load_baseline(args.baseline) if args.baseline else set()
        findings, project = lint_paths_with_project(
            args.paths, select=_split(args.select), ignore=_split(args.ignore)
        )
    except ConfigError as error:
        print(f"simlint: error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        _write_baseline(args.write_baseline, findings)
        if not args.quiet:
            noun = "finding" if len(findings) == 1 else "findings"
            print(
                f"simlint: baseline of {len(findings)} {noun} written to "
                f"{args.write_baseline}",
                file=sys.stderr,
            )
        return 0

    new = [f for f in findings if f.baseline_key() not in baseline]
    baselined = len(findings) - len(new)

    if args.format == "json":
        print(_json_report(new, baselined, project))
    else:
        for finding in new:
            print(finding.render())
    if not args.quiet:
        noun = "finding" if len(new) == 1 else "findings"
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(f"simlint: {len(new)} {noun}{suffix}", file=sys.stderr)
    return 1 if new else 0
