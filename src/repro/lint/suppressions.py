"""Inline suppression comments for simlint findings.

Two forms are recognized, mirroring the conventions of flake8/pylint:

* ``# simlint: disable=SIM001`` on a source line suppresses the listed
  codes (comma-separated) for findings **on that line**.
* ``# simlint: disable-file=SIM005`` anywhere in a file suppresses the
  listed codes for the **whole file**.

``disable=all`` suppresses every rule.  Suppressions are parsed with a
regex over raw source lines rather than the tokenizer so they also work
in files that fail to parse (those are reported as SIM000 syntax
findings, which cannot be suppressed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.findings import Finding

__all__ = ["Suppressions"]

_LINE_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _codes(spec: str) -> set[str]:
    return {code.strip().upper() for code in spec.split(",") if code.strip()}


@dataclass
class Suppressions:
    """Per-line and file-wide suppressed rule codes for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, source: str) -> Suppressions:
        """Collect suppression comments from raw source text."""
        suppressions = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _FILE_RE.search(line)
            if match:
                suppressions.file_wide |= _codes(match.group(1))
                continue
            match = _LINE_RE.search(line)
            if match:
                suppressions.by_line.setdefault(lineno, set()).update(
                    _codes(match.group(1))
                )
        return suppressions

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether the finding is silenced by an inline comment."""
        if finding.code == "SIM000":  # syntax errors are never maskable
            return False
        for scope in (self.file_wide, self.by_line.get(finding.line, ())):
            if finding.code in scope or "ALL" in scope:
                return True
        return False
