"""Run simlint rules over files and collect findings.

``lint_paths`` is the programmatic entry point used by the CLI and the
test suite: expand paths to ``.py`` files, parse each into a
:class:`ModuleContext`, run every applicable per-module rule, then run
the whole-program (simcheck) rules once over the assembled
:class:`~repro.lint.analysis.project.ProjectContext` -- and drop
findings silenced by inline suppressions.  Unparseable files surface as
SIM000 findings (never suppressible) instead of crashing the run.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import ConfigError
from repro.lint.analysis.project import ProjectContext
from repro.lint.base import ProjectRule, Rule, all_rules
from repro.lint.context import ModuleContext, collect_files
from repro.lint.findings import Finding

__all__ = ["lint_module", "lint_paths", "lint_paths_with_project", "lint_project"]


def lint_module(module: ModuleContext, rules: Iterable[Rule]) -> list[Finding]:
    """Run the given rules over one parsed module, honoring suppressions."""
    findings: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule) or not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.suppressions.is_suppressed(finding):
                findings.append(finding)
    return sorted(findings)


def lint_project(project: ProjectContext, rules: Iterable[Rule]) -> list[Finding]:
    """Run the whole-program rules once, honoring per-line suppressions.

    A project-rule finding is suppressed exactly like a per-module one:
    by a ``# simlint: disable=CODE`` comment in the file the finding
    points into.
    """
    findings: list[Finding] = []
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            context = project.context_for_path(finding.path)
            if context is not None and context.suppressions.is_suppressed(finding):
                continue
            findings.append(finding)
    return sorted(findings)


def _selected_rules(
    select: Iterable[str] | None, ignore: Iterable[str] | None
) -> list[Rule]:
    rules = all_rules()
    known = {rule.code for rule in rules}
    if select is not None:
        wanted = {code.upper() for code in select}
        unknown = sorted(wanted - known)
        if unknown:
            raise ConfigError(f"unknown rule code(s) in --select: {', '.join(unknown)}")
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore is not None:
        dropped = {code.upper() for code in ignore}
        unknown = sorted(dropped - known)
        if unknown:
            raise ConfigError(f"unknown rule code(s) in --ignore: {', '.join(unknown)}")
        rules = [rule for rule in rules if rule.code not in dropped]
    return rules


def lint_paths_with_project(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    root_package: str = "repro",
) -> tuple[list[Finding], ProjectContext]:
    """Lint files/directories; return (findings, project context).

    ``select`` restricts to the given codes; ``ignore`` drops codes.
    Unknown codes and nonexistent paths raise :class:`ConfigError`
    rather than silently linting nothing -- a typo must not turn into
    a green CI run.  The returned project context holds every module
    that parsed, whether or not any project rule ran; the CLI reuses it
    for the certified-reachable-set section of the JSON report.
    """
    rules = _selected_rules(select, ignore)

    resolved = [Path(p) for p in paths]
    missing = [str(p) for p in resolved if not p.exists()]
    if missing:
        raise ConfigError(f"no such file or directory: {', '.join(missing)}")

    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    for file_path in collect_files(resolved):
        try:
            module = ModuleContext.from_path(file_path)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(file_path),
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    code="SIM000",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        contexts.append(module)
        findings.extend(lint_module(module, rules))
    project = ProjectContext.from_contexts(contexts, root_package=root_package)
    findings.extend(lint_project(project, rules))
    return sorted(findings), project


def lint_paths(
    paths: Sequence[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files/directories; return all unsuppressed findings, sorted."""
    findings, _project = lint_paths_with_project(paths, select=select, ignore=ignore)
    return findings
