"""Parsed-module context handed to every simlint rule.

A :class:`ModuleContext` bundles what a rule needs to reason about one
file: its path, dotted module name (``repro.policies.base``), raw
source, parsed AST, and suppression comments.  Module names drive rule
scoping -- e.g. determinism rules apply only to ``repro.*`` modules,
not to tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.suppressions import Suppressions

__all__ = ["ModuleContext", "module_name_for", "collect_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "node_modules", ".hypothesis"}


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Files under a ``src`` directory are named from the package root
    (``src/repro/units.py`` -> ``repro.units``); other files are named
    from their repo-relative path (``tests/lint/test_rules.py`` ->
    ``tests.lint.test_rules``).  ``__init__`` segments are dropped so a
    package and its ``__init__.py`` share a name.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    while parts and parts[0] in (".", ".."):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ModuleContext:
    """Everything a rule may consult about one Python file."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def from_path(cls, path: Path) -> ModuleContext:
        """Parse a file into a context (raises ``SyntaxError`` on bad source)."""
        source = path.read_text(encoding="utf-8")
        return cls.from_source(source, path=path)

    @classmethod
    def from_source(
        cls, source: str, path: Path | str = "<string>", module: str | None = None
    ) -> ModuleContext:
        """Build a context from in-memory source (used heavily by tests)."""
        path = Path(path)
        if module is None:
            module = module_name_for(path)
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            suppressions=Suppressions.parse(source),
        )

    @property
    def lines(self) -> list[str]:
        """Source split into lines (1-indexed via ``lines[lineno - 1]``)."""
        return self.source.splitlines()


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)
