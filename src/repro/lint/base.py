"""Rule interface and registry for simlint.

A rule is a class with a unique ``code`` (``SIM0xx``), a short ``name``,
a ``rationale`` tying it to GAIA's simulation invariants (rendered by
``--list-rules`` and docs/linting.md), and a ``check`` generator
yielding :class:`Finding` objects for one :class:`ModuleContext`.

Rules self-register via the :func:`register` decorator at import time;
:mod:`repro.lint.rules` imports every rule module so ``all_rules`` is
complete once the package is imported.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

if TYPE_CHECKING:
    from repro.lint.analysis.project import ProjectContext

__all__ = ["ProjectRule", "Rule", "register", "all_rules", "get_rule"]

_REGISTRY: dict[str, type[Rule]] = {}


class Rule(ABC):
    """Base class for one simlint rule."""

    #: Unique error code, e.g. ``"SIM001"``.
    code: str = "SIM000"
    #: Short human-readable rule name.
    name: str = "rule"
    #: Why the rule exists, tied to the paper's accounting model.
    rationale: str = ""

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether the rule should run on this module (default: always)."""
        return True

    @abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finding(self, module: ModuleContext, node, message: str) -> Finding:
        """Build a finding anchored at an AST node (or at line 1 for None)."""
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program (simcheck) rules.

    A project rule sees every parsed module of the lint run at once via
    a :class:`~repro.lint.analysis.project.ProjectContext` -- symbol
    tables, call graph, import closure -- instead of one module at a
    time.  ``check`` (the per-module hook) is a no-op; the runner calls
    :meth:`check_project` once per run instead.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Project rules produce nothing per-module."""
        return iter(())

    @abstractmethod
    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings for the whole project."""


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_class.code
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ConfigError(f"duplicate simlint rule code {code!r}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, ordered by code."""
    import repro.lint.rules  # noqa: F401  (side-effect: rule registration)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Instantiate one rule by its code."""
    import repro.lint.rules  # noqa: F401  (side-effect: rule registration)

    rule_class = _REGISTRY.get(code.upper())
    if rule_class is None:
        raise ConfigError(
            f"unknown simlint rule {code!r}; known: {sorted(_REGISTRY)}"
        )
    return rule_class()
