"""simcheck -- whole-program static analysis under simlint.

Where the ``SIM0xx`` rules reason about one expression or one module at
a time, this subpackage builds *project-wide* context -- per-module
symbol tables, an interprocedural call graph, import closures, and
AST-normalized source fingerprints -- and powers the flow-aware rules
``SIM101`` (unit flow), ``SIM102`` (digest-safety certification), and
``SIM103`` (pool-boundary pickle safety).

The analysis is also load-bearing outside the linter: the result
cache's :func:`repro.simulator.runner.cache.code_version_salt` is an
AST-normalized fingerprint of exactly the SIM102-certified reachable
file set, so comment-only edits never evict cached sweeps while
semantic edits anywhere digest-reachable always do.
"""

from __future__ import annotations

from repro.lint.analysis.callgraph import CallGraph
from repro.lint.analysis.certify import (
    certified_files,
    certified_modules,
    entry_functions,
    reachable_functions,
)
from repro.lint.analysis.entrypoints import (
    DIGEST_ENTRY_PATTERNS,
    POOL_BOUNDARY_ROOTS,
    register_entry_pattern,
)
from repro.lint.analysis.fingerprint import (
    fingerprint_files,
    fingerprint_source,
    normalized_dump,
)
from repro.lint.analysis.project import ProjectContext
from repro.lint.analysis.symbols import ClassSymbol, FunctionSymbol, ModuleSymbols

__all__ = [
    "CallGraph",
    "ClassSymbol",
    "DIGEST_ENTRY_PATTERNS",
    "FunctionSymbol",
    "ModuleSymbols",
    "POOL_BOUNDARY_ROOTS",
    "ProjectContext",
    "certified_files",
    "certified_modules",
    "entry_functions",
    "fingerprint_files",
    "fingerprint_source",
    "normalized_dump",
    "reachable_functions",
    "register_entry_pattern",
]
