"""Whole-program context shared by the simcheck passes.

A :class:`ProjectContext` holds every parsed module of one lint run,
keyed by dotted module name, and lazily derives the project-level
structures the flow-aware rules need: per-module symbol tables, the
interprocedural call graph, and the module import graph (whose closure
certifies the digest-reachable file set for the cache salt).

``root_package`` scopes the analysis: only modules inside it are
symbolized and analyzed, so lint runs over ``src tests`` analyze
``repro.*`` without chewing on the test suite, and fixture
mini-packages in tests can be analyzed under their own root.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.lint.analysis.symbols import ModuleSymbols
from repro.lint.context import ModuleContext, collect_files

if TYPE_CHECKING:
    from repro.lint.analysis.callgraph import CallGraph

__all__ = ["ProjectContext"]


@dataclass
class ProjectContext:
    """Every parsed module of one lint run, plus derived project facts."""

    #: Dotted module name -> parsed context, all files of the run.
    modules: dict[str, ModuleContext]
    #: Package whose modules the whole-program passes analyze.
    root_package: str = "repro"
    _symbols: dict[str, ModuleSymbols] | None = field(default=None, repr=False)
    _import_graph: dict[str, set[str]] | None = field(default=None, repr=False)
    _by_path: dict[str, ModuleContext] | None = field(default=None, repr=False)
    _callgraph: object | None = field(default=None, repr=False)

    @classmethod
    def from_contexts(
        cls, contexts: Iterable[ModuleContext], root_package: str = "repro"
    ) -> ProjectContext:
        """Index already-parsed modules by dotted name."""
        return cls(
            modules={context.module: context for context in contexts},
            root_package=root_package,
        )

    @classmethod
    def from_paths(
        cls, paths: Sequence[Path | str], root_package: str = "repro"
    ) -> ProjectContext:
        """Parse files/directories into a project (unparseable files skipped).

        The runner reports unparseable files as SIM000 findings
        separately; the whole-program passes simply proceed without
        them.
        """
        contexts: list[ModuleContext] = []
        for file_path in collect_files([Path(p) for p in paths]):
            try:
                contexts.append(ModuleContext.from_path(file_path))
            except SyntaxError:
                continue
        return cls.from_contexts(contexts, root_package=root_package)

    @classmethod
    def from_root(cls, root: Path, package: str | None = None) -> ProjectContext:
        """Parse one package directory, naming modules under ``package``.

        ``root`` is the package directory itself (e.g. the installed
        ``repro`` directory); ``package`` defaults to its basename.
        Used by the cache salt, which must analyze the *installed*
        sources regardless of the working directory.
        """
        package = package or root.name
        contexts: list[ModuleContext] = []
        for file_path in sorted(root.rglob("*.py")):
            if "__pycache__" in file_path.parts:
                continue
            relative = file_path.relative_to(root)
            module = ".".join((package, *relative.with_suffix("").parts))
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            try:
                contexts.append(
                    ModuleContext.from_source(
                        file_path.read_text(encoding="utf-8"),
                        path=file_path,
                        module=module,
                    )
                )
            except SyntaxError:
                continue
        return cls.from_contexts(contexts, root_package=package)

    def in_scope(self, module: str) -> bool:
        """Whether a dotted module name falls under the analysis root."""
        return module == self.root_package or module.startswith(
            self.root_package + "."
        )

    def scoped_modules(self) -> dict[str, ModuleContext]:
        """The in-scope subset of :attr:`modules`."""
        return {
            name: context
            for name, context in self.modules.items()
            if self.in_scope(name)
        }

    def symbols(self) -> dict[str, ModuleSymbols]:
        """Per-module symbol tables for every in-scope module (cached)."""
        if self._symbols is None:
            self._symbols = {
                name: ModuleSymbols.build(context)
                for name, context in sorted(self.scoped_modules().items())
            }
        return self._symbols

    def callgraph(self) -> "CallGraph":
        """The project call graph (cached).  See :mod:`.callgraph`."""
        from repro.lint.analysis.callgraph import CallGraph

        if self._callgraph is None:
            self._callgraph = CallGraph.build(self)
        assert isinstance(self._callgraph, CallGraph)
        return self._callgraph

    def context_for_path(self, path: str | Path) -> ModuleContext | None:
        """Look a module up by its source path (suppression filtering)."""
        if self._by_path is None:
            self._by_path = {
                str(context.path): context for context in self.modules.values()
            }
        return self._by_path.get(str(path))

    # -- import graph ---------------------------------------------------
    def import_graph(self) -> dict[str, set[str]]:
        """In-scope module -> in-scope modules it imports (cached).

        ``from repro.x import name`` counts both ``repro.x`` and -- when
        ``repro.x.name`` is itself a module of the project -- the
        submodule, so re-exported packages link to their contents.
        """
        if self._import_graph is None:
            known = set(self.scoped_modules())
            graph: dict[str, set[str]] = {}
            for name, table in self.symbols().items():
                edges: set[str] = set()
                for target in table.imports.values():
                    edges.update(self._project_modules_of(target, known))
                graph[name] = edges - {name}
            self._import_graph = graph
        return self._import_graph

    def _project_modules_of(self, target: str, known: set[str]) -> set[str]:
        """Project modules a dotted import target touches.

        ``repro.carbon.trace.CarbonIntensityTrace`` touches
        ``repro.carbon.trace`` (longest known prefix); importing a
        package touches its ``__init__`` module.
        """
        touched: set[str] = set()
        parts = target.split(".")
        for length in range(len(parts), 0, -1):
            prefix = ".".join(parts[:length])
            if prefix in known:
                touched.add(prefix)
                break
        return touched

    def import_closure(self, seeds: Iterable[str]) -> set[str]:
        """Transitive import closure of ``seeds`` over in-scope modules."""
        graph = self.import_graph()
        seen: set[str] = set()
        frontier = [seed for seed in seeds if seed in graph]
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            frontier.extend(graph.get(module, ()) - seen)
        return seen
