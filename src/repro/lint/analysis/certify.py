"""Digest-safety certification: the reachable set behind SIM102 and the salt.

Certification answers two questions about a project:

* **which functions** can influence a simulation result for a given
  spec digest -- the call-graph closure of the digest entry points
  (:data:`~repro.lint.analysis.entrypoints.DIGEST_ENTRY_PATTERNS`),
  each with a breadth-first call chain as evidence; and
* **which files** must participate in the cache's code-version salt --
  the *import closure* of the entry-point modules, a sound
  over-approximation at file granularity that covers edges the static
  call resolver cannot see (dynamic dispatch, registry indirection).

The union is deliberately asymmetric: findings want precision (call
chains), the salt wants soundness (no digest-relevant file may escape
it, or semantic edits there would silently serve stale cached sweeps).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigError
from repro.lint.analysis.entrypoints import DIGEST_ENTRY_PATTERNS, matches_any
from repro.lint.analysis.project import ProjectContext
from repro.lint.analysis.symbols import FunctionSymbol

__all__ = [
    "certified_files",
    "certified_modules",
    "entry_functions",
    "reachable_functions",
]


def entry_functions(
    project: ProjectContext, patterns: list[str] | None = None
) -> dict[str, FunctionSymbol]:
    """The project functions matching the digest entry-point patterns."""
    patterns = DIGEST_ENTRY_PATTERNS if patterns is None else patterns
    graph = project.callgraph()
    return {
        qualname: symbol
        for qualname, symbol in sorted(graph.functions.items())
        if matches_any(qualname, patterns)
    }


def reachable_functions(
    project: ProjectContext, patterns: list[str] | None = None
) -> dict[str, tuple[str, ...]]:
    """Call-graph-reachable functions with their evidence chains.

    Maps each reachable qualname to the breadth-first call chain
    ``(entry, ..., qualname)`` proving reachability.
    """
    entries = entry_functions(project, patterns)
    return project.callgraph().reachable(sorted(entries))


def certified_modules(
    project: ProjectContext, patterns: list[str] | None = None
) -> set[str]:
    """Modules certified digest-relevant: import closure ∪ call closure.

    Raises :class:`~repro.errors.ConfigError` when no entry point
    matches -- an empty certification must never silently produce an
    empty salt.
    """
    entries = entry_functions(project, patterns)
    if not entries:
        raise ConfigError(
            "no digest entry points found; the analyzed tree does not "
            "define any function matching DIGEST_ENTRY_PATTERNS"
        )
    seed_modules = {symbol.module for symbol in entries.values()}
    closure = project.import_closure(seed_modules)
    chains = project.callgraph().reachable(sorted(entries))
    call_modules = {
        project.callgraph().functions[qualname].module for qualname in chains
    }
    return closure | call_modules | seed_modules


def certified_files(
    project: ProjectContext, patterns: list[str] | None = None
) -> list[Path]:
    """The sorted source files of the certified module set."""
    modules = certified_modules(project, patterns)
    return sorted(project.modules[name].path for name in modules)
