"""Per-module symbol tables for the whole-program analysis passes.

A :class:`ModuleSymbols` is the bridge between one parsed
:class:`~repro.lint.context.ModuleContext` and the project-level
layers: it resolves import aliases to dotted targets, indexes every
function/method definition under its project-unique *qualname*
(``repro.simulator.engine.Engine.run``), and records dataclass facts
the pickle-safety pass needs (frozen-ness, field annotations).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.context import ModuleContext

__all__ = [
    "ClassSymbol",
    "DataclassField",
    "FunctionSymbol",
    "ModuleSymbols",
    "dotted_name",
]


def dotted_name(node: ast.expr) -> str | None:
    """Render an attribute chain like ``np.random.rand`` as a dotted string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class FunctionSymbol:
    """One function or method definition, addressable project-wide."""

    #: Dotted project-unique name: ``<module>[.<class>].<name>``.
    qualname: str
    module: str
    name: str
    #: Enclosing class name, or ``None`` for module-level functions.
    owner: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Positional-or-keyword parameter names in order, ``self``/``cls``
    #: already stripped for methods.
    params: tuple[str, ...]
    #: Whether the function accepts ``*args`` (disables positional
    #: argument matching at call sites).
    has_varargs: bool

    @property
    def lineno(self) -> int:
        """Source line of the ``def`` statement."""
        return self.node.lineno


@dataclass(frozen=True)
class DataclassField:
    """One annotated dataclass field (pickle-safety raw material)."""

    name: str
    annotation: ast.expr | None
    default: ast.expr | None
    lineno: int


@dataclass(frozen=True)
class ClassSymbol:
    """One class definition with the facts the analyses consult."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base classes as written (dotted strings; unresolvable bases dropped).
    bases: tuple[str, ...]
    methods: dict[str, FunctionSymbol]
    is_dataclass: bool
    dataclass_frozen: bool
    fields: tuple[DataclassField, ...]

    @property
    def lineno(self) -> int:
        """Source line of the ``class`` statement."""
        return self.node.lineno


def _decorator_dataclass_facts(node: ast.ClassDef) -> tuple[bool, bool]:
    """Whether a class is decorated as a dataclass, and whether frozen."""
    for decorator in node.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call is not None else decorator
        name = dotted_name(target) or ""
        if name in ("dataclass", "dataclasses.dataclass"):
            frozen = False
            if call is not None:
                for keyword in call.keywords:
                    if keyword.arg == "frozen" and isinstance(
                        keyword.value, ast.Constant
                    ):
                        frozen = bool(keyword.value.value)
            return True, frozen
    return False, False


def _function_symbol(
    node: ast.FunctionDef | ast.AsyncFunctionDef, module: str, owner: str | None
) -> FunctionSymbol:
    params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    if owner is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    qualname = f"{module}.{owner}.{node.name}" if owner else f"{module}.{node.name}"
    return FunctionSymbol(
        qualname=qualname,
        module=module,
        name=node.name,
        owner=owner,
        node=node,
        params=tuple(params),
        has_varargs=node.args.vararg is not None,
    )


def _class_fields(node: ast.ClassDef) -> tuple[DataclassField, ...]:
    fields: list[DataclassField] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            fields.append(
                DataclassField(
                    name=statement.target.id,
                    annotation=statement.annotation,
                    default=statement.value,
                    lineno=statement.lineno,
                )
            )
    return tuple(fields)


@dataclass
class ModuleSymbols:
    """Symbol table of one module: imports, functions, classes."""

    context: ModuleContext
    module: str
    #: Local name -> dotted target.  ``import numpy as np`` maps ``np ->
    #: numpy``; ``from repro.x import f`` maps ``f -> repro.x.f``.
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level functions and methods by *local* qualname
    #: (``run_reference``, ``Engine.run``).
    functions: dict[str, FunctionSymbol] = field(default_factory=dict)
    classes: dict[str, ClassSymbol] = field(default_factory=dict)

    @classmethod
    def build(cls, context: ModuleContext) -> ModuleSymbols:
        """Extract the symbol table from one parsed module."""
        table = cls(context=context, module=context.module)
        table._collect_imports()
        for statement in context.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = _function_symbol(statement, context.module, owner=None)
                table.functions[statement.name] = symbol
            elif isinstance(statement, ast.ClassDef):
                table._collect_class(statement)
        return table

    def _collect_imports(self) -> None:
        package = self._package_name()
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _package_name(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.context.path.name == "__init__.py":
            return self.module
        head, _, _tail = self.module.rpartition(".")
        return head

    @staticmethod
    def _resolve_from_base(node: ast.ImportFrom, package: str) -> str | None:
        if node.level == 0:
            return node.module
        parts = package.split(".") if package else []
        ascend = node.level - 1
        if ascend > len(parts):
            return None
        base_parts = parts[: len(parts) - ascend] if ascend else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _collect_class(self, node: ast.ClassDef) -> None:
        methods: dict[str, FunctionSymbol] = {}
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[statement.name] = _function_symbol(
                    statement, self.module, owner=node.name
                )
        bases = tuple(
            name for name in (dotted_name(base) for base in node.bases) if name
        )
        is_dataclass, frozen = _decorator_dataclass_facts(node)
        self.classes[node.name] = ClassSymbol(
            qualname=f"{self.module}.{node.name}",
            module=self.module,
            name=node.name,
            node=node,
            bases=bases,
            methods=methods,
            is_dataclass=is_dataclass,
            dataclass_frozen=frozen,
            fields=_class_fields(node),
        )

    def resolve(self, name: str) -> str:
        """Resolve a (possibly dotted) local name to its dotted target.

        ``np.random.rand`` resolves through the ``np -> numpy`` alias to
        ``numpy.random.rand``; unresolvable heads return the name as
        written.
        """
        head, _, tail = name.partition(".")
        target = self.imports.get(head)
        if target is None:
            return name
        return f"{target}.{tail}" if tail else target

    def all_functions(self) -> list[FunctionSymbol]:
        """Every function and method defined in this module."""
        symbols = list(self.functions.values())
        for klass in self.classes.values():
            symbols.extend(klass.methods.values())
        return symbols
