"""Unit-suffix vocabulary shared by SIM003 and the SIM101 flow analysis.

The codebase encodes physical units in name suffixes (``carbon_g``,
``energy_kwh``, ``price_per_hour``); :func:`unit_family` maps a name to
its unit family, or ``None`` when the name carries no unit.  Lives in
the analysis layer so both the per-module rule and the whole-program
flow pass share one vocabulary without import cycles.
"""

from __future__ import annotations

__all__ = ["SUFFIX_FAMILIES", "unit_family"]

#: Map of recognized unit suffixes to their unit family.
SUFFIX_FAMILIES = {
    "g": "carbon-mass[g]",
    "kg": "carbon-mass[kg]",
    "kwh": "energy[kWh]",
    "kw": "power[kW]",
    "usd": "money[USD]",
    "cost": "money[USD]",
    "per_hour": "rate[/h]",
    "per_kwh": "rate[/kWh]",
}


def unit_family(name: str) -> str | None:
    """The unit family a suffixed name belongs to, or ``None``."""
    lowered = name.lower()
    if lowered.endswith("_per_hour"):
        return SUFFIX_FAMILIES["per_hour"]
    if lowered.endswith("_per_kwh"):
        return SUFFIX_FAMILIES["per_kwh"]
    if lowered == "cost" or lowered.endswith("_cost"):
        return SUFFIX_FAMILIES["cost"]
    tail = lowered.rsplit("_", 1)[-1]
    if tail != lowered and tail in SUFFIX_FAMILIES:
        return SUFFIX_FAMILIES[tail]
    return None
