"""Interprocedural unit-flow inference (the engine behind SIM101).

SIM003 checks unit suffixes *per expression*; this layer follows the
quantities.  Unit families are seeded from the repository's suffix
convention (``carbon_g``, ``energy_kwh``, ``usage_cost`` -- see
:func:`repro.lint.rules.sim003_unit_suffixes.unit_family`) and
propagated through assignments, function returns, and resolved call
edges, so a gram-valued expression reaching a ``_kg`` parameter two
modules away is still a typed mismatch.

Propagation is deliberately conservative: only ``+``/``-`` preserve a
family (multiplication and division legitimately change units), only
*known, conflicting* families are reported, and unresolved calls infer
nothing.  Precision over recall -- every finding should read as a real
unit bug or an honest naming drift.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.lint.analysis.callgraph import CallGraph, CallSite
from repro.lint.analysis.project import ProjectContext
from repro.lint.analysis.symbols import FunctionSymbol
from repro.lint.analysis.units import unit_family

__all__ = ["UnitMismatch", "function_return_families", "unit_flow_mismatches"]

#: Fixpoint bound for return-family propagation through call chains.
_MAX_PASSES = 5


@dataclass(frozen=True)
class UnitMismatch:
    """One cross-expression unit-family conflict."""

    #: ``argument`` | ``keyword-argument`` | ``assignment`` | ``return``.
    kind: str
    message: str
    module: str
    lineno: int
    col: int
    #: Human-readable flow evidence (caller -> callee, families).
    evidence: tuple[str, ...]


def _family_of_name(name: str) -> str | None:
    return unit_family(name)


class _FunctionFlow:
    """Per-function unit environment: parameter/local name families."""

    def __init__(
        self,
        symbol: FunctionSymbol,
        returns: dict[str, str],
        graph: CallGraph,
    ):
        self.symbol = symbol
        self.returns = returns
        self.graph = graph
        self._callees_by_node: dict[int, str] = {
            id(site.node): site.callee for site in graph.sites_in(symbol.qualname)
        }
        self.env: dict[str, str] = {}
        for param in symbol.params:
            family = _family_of_name(param)
            if family is not None:
                self.env[param] = family
        #: Names whose family was *inferred* from flow rather than read
        #: off their own suffix (drives SIM101/SIM003 division of labor).
        self.inferred: set[str] = set()
        self._seed_assignments()

    def _seed_assignments(self) -> None:
        for node in ast.walk(self.symbol.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                declared = _family_of_name(target.id)
                if declared is not None:
                    self.env.setdefault(target.id, declared)
                    continue
                inferred = self.expression_family(node.value)
                if inferred is not None:
                    self.env[target.id] = inferred
                    self.inferred.add(target.id)

    def expression_family(self, node: ast.expr) -> str | None:
        """The unit family of an expression, or ``None`` when unknown."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or _family_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return _family_of_name(node.attr)
        if isinstance(node, ast.Call):
            callee = self._callees_by_node.get(id(node))
            if callee is not None:
                return self.returns.get(callee)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.expression_family(node.left)
            right = self.expression_family(node.right)
            if left is not None and left == right:
                return left
            return None
        if isinstance(node, ast.UnaryOp):
            return self.expression_family(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.expression_family(node.body)
            orelse = self.expression_family(node.orelse)
            return body if body is not None and body == orelse else None
        return None

    def is_inferred(self, node: ast.expr) -> bool:
        """Whether the expression's family came from flow, not a suffix."""
        if isinstance(node, ast.Name):
            return node.id in self.inferred
        if isinstance(node, (ast.Attribute, ast.Constant)):
            return False
        return True  # calls, arithmetic: by construction flow-inferred


def function_return_families(
    project: ProjectContext, graph: CallGraph | None = None
) -> dict[str, str]:
    """Return-unit families per function qualname, to a fixpoint.

    A family comes from the function's own name suffix when present
    (``def added_carbon_g(...)``), else from agreeing families of every
    ``return`` expression; conflicting or unknown returns infer nothing.
    """
    graph = graph or project.callgraph()
    returns: dict[str, str] = {}
    for qualname, symbol in graph.functions.items():
        family = _family_of_name(symbol.name)
        if family is not None:
            returns[qualname] = family
    for _ in range(_MAX_PASSES):
        changed = False
        for qualname, symbol in graph.functions.items():
            if qualname in returns:
                continue
            flow = _FunctionFlow(symbol, returns, graph)
            families = set()
            for node in ast.walk(symbol.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    families.add(flow.expression_family(node.value))
            if len(families) == 1:
                family = families.pop()
                if family is not None:
                    returns[qualname] = family
                    changed = True
        if not changed:
            break
    return returns


def _call_argument_pairs(
    site: CallSite, callee: FunctionSymbol
) -> Iterator[tuple[ast.expr, str, str]]:
    """Yield ``(argument, parameter_name, kind)`` for one resolved call."""
    if not callee.has_varargs:
        for position, argument in enumerate(site.node.args):
            if isinstance(argument, ast.Starred):
                return  # positional mapping unknowable past a splat
            if position < len(callee.params):
                yield argument, callee.params[position], "argument"
    for keyword in site.node.keywords:
        if keyword.arg is not None:
            yield keyword.value, keyword.arg, "keyword-argument"


def unit_flow_mismatches(project: ProjectContext) -> Iterator[UnitMismatch]:
    """Every unit-family conflict the flow analysis can prove.

    Three shapes: a call argument whose family conflicts with the
    parameter's declared suffix (positional arguments always; keyword
    arguments only when the argument family was flow-inferred, since
    suffix-vs-suffix keyword conflicts are SIM003's per-expression
    finding); an assignment whose target suffix conflicts with the
    value's family; and a ``return`` whose family conflicts with the
    function's own name suffix.
    """
    graph = project.callgraph()
    returns = function_return_families(project, graph)
    for qualname in sorted(graph.functions):
        symbol = graph.functions[qualname]
        flow = _FunctionFlow(symbol, returns, graph)

        for site in graph.sites_in(qualname):
            callee = graph.functions[site.callee]
            for argument, parameter, kind in _call_argument_pairs(site, callee):
                parameter_family = _family_of_name(parameter)
                if parameter_family is None:
                    continue
                argument_family = flow.expression_family(argument)
                if argument_family is None or argument_family == parameter_family:
                    continue
                if kind == "keyword-argument" and not flow.is_inferred(argument):
                    continue  # SIM003 territory: suffix vs suffix at the call
                label = ast.unparse(argument)
                yield UnitMismatch(
                    kind=kind,
                    message=(
                        f"passing {label!r} ({argument_family}) to parameter "
                        f"{parameter!r} ({parameter_family}) of {site.callee}()"
                    ),
                    module=symbol.module,
                    lineno=argument.lineno,
                    col=argument.col_offset,
                    evidence=(
                        f"caller {qualname} at line {site.lineno}",
                        f"callee {site.callee} declares {parameter!r} "
                        f"as {parameter_family}",
                        f"argument {label!r} carries {argument_family}",
                    ),
                )

        for node in ast.walk(symbol.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                declared = _family_of_name(target.id)
                if declared is None:
                    continue
                value_family = flow.expression_family(node.value)
                if (
                    value_family is not None
                    and value_family != declared
                    and (
                        flow.is_inferred(node.value)
                        or isinstance(node.value, (ast.Name, ast.Attribute))
                    )
                ):
                    yield UnitMismatch(
                        kind="assignment",
                        message=(
                            f"assigning a {value_family} value to "
                            f"{target.id!r} ({declared})"
                        ),
                        module=symbol.module,
                        lineno=node.lineno,
                        col=node.col_offset,
                        evidence=(
                            f"in {qualname}",
                            f"value is {value_family}, target suffix "
                            f"declares {declared}",
                        ),
                    )
            elif isinstance(node, ast.Return) and node.value is not None:
                declared = _family_of_name(symbol.name)
                if declared is None:
                    continue
                value_family = flow.expression_family(node.value)
                if value_family is not None and value_family != declared:
                    yield UnitMismatch(
                        kind="return",
                        message=(
                            f"{qualname}() is suffixed {declared} but returns "
                            f"a {value_family} value"
                        ),
                        module=symbol.module,
                        lineno=node.lineno,
                        col=node.col_offset,
                        evidence=(
                            f"function name declares {declared}",
                            f"returned expression carries {value_family}",
                        ),
                    )
