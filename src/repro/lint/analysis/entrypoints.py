"""Digest entry points and pool-boundary roots for the simcheck passes.

The certification pass (SIM102) and the cache salt both start from the
*digest-relevant entry points*: the functions whose behavior determines
what a cached :class:`~repro.simulator.results.SimulationResult` holds
for a given spec digest.  Patterns are matched with :func:`fnmatch`
against project qualnames, written suffix-style (``*.Engine.run``) so
they bind to both the real ``repro`` package and fixture mini-packages
in tests.

When you add a new policy, engine backend, or fault family whose
``decide``/``run``-style hook is reached *only* dynamically (no static
call or import path from the existing entry points), register its
pattern here via :func:`register_entry_pattern` -- see
``docs/linting.md`` ("Registering new digest entry points").
"""

from __future__ import annotations

from fnmatch import fnmatch

__all__ = [
    "DIGEST_ENTRY_PATTERNS",
    "POOL_BOUNDARY_ROOTS",
    "matches_any",
    "register_entry_pattern",
]

#: Qualname patterns of the digest-relevant entry points.
DIGEST_ENTRY_PATTERNS: list[str] = [
    # The optimized and reference engines.
    "*.Engine.run",
    "*.run_reference",
    # Simulation assembly (freezing/thawing, fault wiring, validation).
    "*.run_simulation",
    "*.SimulationSpec.run",
    "*.SimulationSpec.digest",
    # Every policy decision hook, including future registry entries.
    "*.decide",
    # Batched decision hooks backing the engine's fast path; reached
    # dynamically from Engine._precompute_decisions, and their scoring
    # helpers must stay inside the certified set.
    "*.decide_many",
    # Fault application: folded into spec digests via FaultPlan.digest.
    "*.faults.apply.*",
    # Federated and scaling specs: first-class run_many citizens, so
    # their run/digest paths (and the selector hook, reached dynamically
    # through the selector registry) determine cached payloads too.
    "*.run_federated_simulation",
    "*.run_reference_federated",
    "*.FederatedSpec.run",
    "*.FederatedSpec.digest",
    "*.select",
    "*.ScalingSpec.run",
    "*.ScalingSpec.digest",
    "*.plan_carbon_scaling",
    "*.fixed_allocation_plan",
]

#: Types that cross the ``run_many`` process-pool boundary, with whether
#: their dataclass closure must be frozen.  Specs are cache keys and
#: in-batch dedup keys, so they must be immutable; results only need to
#: pickle.
POOL_BOUNDARY_ROOTS: list[tuple[str, bool]] = [
    ("*.SimulationSpec", True),
    ("*.SimulationResult", False),
    ("*.FederatedSpec", True),
    ("*.FederatedResult", False),
    ("*.ScalingSpec", True),
    ("*.ScalingResult", False),
]


def register_entry_pattern(pattern: str) -> None:
    """Add a digest entry-point pattern (idempotent).

    Extends both SIM102 certification and the certified-reachable-set
    cache salt in this process.  Library code should call this at import
    time of the module that introduces the new entry point.
    """
    if pattern not in DIGEST_ENTRY_PATTERNS:
        DIGEST_ENTRY_PATTERNS.append(pattern)


def matches_any(qualname: str, patterns: list[str]) -> bool:
    """Whether a qualname matches one of the fnmatch patterns."""
    return any(fnmatch(qualname, pattern) for pattern in patterns)
