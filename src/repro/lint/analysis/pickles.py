"""Pool-boundary pickle safety (the engine behind SIM103).

Everything :func:`repro.simulator.runner.run_many` ships across its
``ProcessPoolExecutor`` boundary must pickle: the specs going out and
the results coming back.  A lambda, an open handle, a lock, or a live
tracer smuggled into a spec only explodes at sweep time, deep inside a
worker traceback.  This pass verifies the boundary *statically*:

* the dataclass closure of each registered boundary root
  (:data:`~repro.lint.analysis.entrypoints.POOL_BOUNDARY_ROOTS`) is
  walked field by field, resolving annotations to project classes;
* fields typed as callables, locks/threads, IO handles, generators, or
  live tracer objects are flagged, as are lambda defaults;
* roots marked ``require_frozen`` (specs: cache keys, dedup keys) must
  be frozen dataclasses throughout their closure;
* construction sites of closure types anywhere in the project are
  scanned for lambda arguments.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.lint.analysis.entrypoints import POOL_BOUNDARY_ROOTS, matches_any
from repro.lint.analysis.project import ProjectContext
from repro.lint.analysis.symbols import ClassSymbol, ModuleSymbols, dotted_name

__all__ = ["BoundaryViolation", "boundary_closure", "boundary_violations"]

#: Bare annotation identifiers that never pickle (or pickle by identity
#: loss) regardless of their defining module.
_FORBIDDEN_BARE = {
    "Callable",
    "Generator",
    "AsyncGenerator",
    "Coroutine",
    "IO",
    "TextIO",
    "BinaryIO",
    "TextIOBase",
    "BufferedReader",
    "BufferedWriter",
}

#: Modules whose types are process-local by nature.
_FORBIDDEN_MODULES = ("threading", "_thread", "multiprocessing", "asyncio", "socket")

#: Project types that wrap process-local state (live sinks, handles).
_FORBIDDEN_PROJECT = ("repro.obs.tracer.Tracer",)


@dataclass(frozen=True)
class BoundaryViolation:
    """One statically-provable pickle hazard at the pool boundary."""

    message: str
    module: str
    lineno: int
    col: int
    evidence: tuple[str, ...]


def _annotation_identifiers(annotation: ast.expr) -> Iterator[str]:
    """Every dotted/bare identifier mentioned inside an annotation.

    Handles string annotations (``"QueueSet | None"``) by reparsing.
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return
    stack: list[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Name, ast.Attribute)):
            target = dotted_name(node)
            if target is not None:
                # Do not descend: ``threading.Lock`` is one identifier,
                # not an identifier plus a bare ``threading``.
                yield target
                continue
        stack.extend(ast.iter_child_nodes(node))


def _forbidden_reason(identifier: str, table: ModuleSymbols) -> str | None:
    """Why an annotation identifier cannot cross the pool, if it cannot."""
    head = identifier.split(".")[0]
    tail = identifier.rsplit(".", 1)[-1]
    if tail in _FORBIDDEN_BARE:
        return f"{tail} values do not pickle"
    resolved = table.resolve(identifier)
    resolved_head = resolved.split(".")[0]
    if resolved_head in _FORBIDDEN_MODULES or head in _FORBIDDEN_MODULES:
        return f"{resolved} is process-local state"
    if resolved in _FORBIDDEN_PROJECT:
        return f"{resolved} is a live observability sink, not data"
    return None


def _resolve_class(
    identifier: str, table: ModuleSymbols, symbols: dict[str, ModuleSymbols]
) -> ClassSymbol | None:
    """Resolve an annotation identifier to a project class, if it is one."""
    if identifier in table.classes:
        return table.classes[identifier]
    resolved = table.resolve(identifier)
    module, _, name = resolved.rpartition(".")
    other = symbols.get(module)
    if other is not None:
        return other.classes.get(name)
    return None


def boundary_closure(
    project: ProjectContext,
    roots: list[tuple[str, bool]] | None = None,
) -> dict[str, tuple[ClassSymbol, bool, tuple[str, ...]]]:
    """The dataclass closure of the pool-boundary roots.

    Maps class qualname to ``(symbol, require_frozen, path)`` where
    ``path`` is the field chain from a root (evidence for findings).
    ``require_frozen`` propagates from the root down its closure.
    """
    roots = POOL_BOUNDARY_ROOTS if roots is None else roots
    symbols = project.symbols()
    closure: dict[str, tuple[ClassSymbol, bool, tuple[str, ...]]] = {}
    frontier: list[tuple[ClassSymbol, bool, tuple[str, ...]]] = []
    for table in symbols.values():
        for klass in table.classes.values():
            for pattern, require_frozen in roots:
                if matches_any(klass.qualname, [pattern]):
                    frontier.append((klass, require_frozen, (klass.qualname,)))
    while frontier:
        klass, require_frozen, path = frontier.pop()
        known = closure.get(klass.qualname)
        if known is not None and (known[1] or not require_frozen):
            continue
        closure[klass.qualname] = (klass, require_frozen, path)
        table = symbols[klass.module]
        for field_symbol in klass.fields:
            if field_symbol.annotation is None:
                continue
            for identifier in _annotation_identifiers(field_symbol.annotation):
                member = _resolve_class(identifier, table, symbols)
                if member is not None:
                    frontier.append(
                        (
                            member,
                            require_frozen,
                            path + (f"{klass.name}.{field_symbol.name}",),
                        )
                    )
    return closure


def boundary_violations(
    project: ProjectContext,
    roots: list[tuple[str, bool]] | None = None,
) -> Iterator[BoundaryViolation]:
    """Every statically-provable pickle hazard at the pool boundary."""
    symbols = project.symbols()
    closure = boundary_closure(project, roots)
    for qualname in sorted(closure):
        klass, require_frozen, path = closure[qualname]
        table = symbols[klass.module]
        chain = " -> ".join(path)
        if require_frozen and klass.is_dataclass and not klass.dataclass_frozen:
            yield BoundaryViolation(
                message=(
                    f"{klass.name} crosses the worker-pool boundary inside a "
                    "spec but is not a frozen dataclass; specs are cache and "
                    "dedup keys and must be immutable"
                ),
                module=klass.module,
                lineno=klass.lineno,
                col=klass.node.col_offset,
                evidence=(f"boundary path: {chain}",),
            )
        for field_symbol in klass.fields:
            # ``= lambda: ...`` directly or buried in ``field(default=lambda: ...)``.
            if field_symbol.default is not None and any(
                isinstance(inner, ast.Lambda)
                for inner in ast.walk(field_symbol.default)
            ):
                yield BoundaryViolation(
                    message=(
                        f"field {klass.name}.{field_symbol.name} defaults to a "
                        "lambda; lambdas do not pickle across the worker pool"
                    ),
                    module=klass.module,
                    lineno=field_symbol.lineno,
                    col=klass.node.col_offset,
                    evidence=(f"boundary path: {chain}",),
                )
            if field_symbol.annotation is None:
                continue
            for identifier in _annotation_identifiers(field_symbol.annotation):
                reason = _forbidden_reason(identifier, table)
                if reason is not None:
                    yield BoundaryViolation(
                        message=(
                            f"field {klass.name}.{field_symbol.name} is typed "
                            f"{identifier}: {reason}, so it cannot cross "
                            "run_many's process-pool boundary"
                        ),
                        module=klass.module,
                        lineno=field_symbol.lineno,
                        col=klass.node.col_offset,
                        evidence=(f"boundary path: {chain}",),
                    )
    yield from _lambda_construction_sites(project, closure)


def _lambda_construction_sites(
    project: ProjectContext,
    closure: dict[str, tuple[ClassSymbol, bool, tuple[str, ...]]],
) -> Iterator[BoundaryViolation]:
    """Lambdas passed where a boundary type is constructed.

    Construction sites are resolved directly (a dataclass ``__init__``
    is generated, so the call graph has no edge to it): any call whose
    function name resolves -- through the calling module's imports --
    to a class in the boundary closure.
    """
    closure_names = set(closure)
    for module_name, table in sorted(project.symbols().items()):
        for node in ast.walk(table.context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func)
            if target is None:
                continue
            constructed = _resolve_class(target, table, project.symbols())
            if constructed is None or constructed.qualname not in closure_names:
                continue
            arguments = list(node.args) + [
                keyword.value for keyword in node.keywords
            ]
            for argument in arguments:
                for inner in ast.walk(argument):
                    if isinstance(inner, ast.Lambda):
                        yield BoundaryViolation(
                            message=(
                                f"lambda passed into {constructed.name}(); it "
                                "cannot pickle across run_many's process-pool "
                                "boundary"
                            ),
                            module=module_name,
                            lineno=inner.lineno,
                            col=inner.col_offset,
                            evidence=(
                                f"constructed in {module_name} at line "
                                f"{node.lineno}",
                            ),
                        )
