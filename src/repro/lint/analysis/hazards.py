"""Determinism-hazard detection shared by SIM001 and SIM102.

The tables name the stdlib/numpy surfaces whose use makes a simulation
depend on hidden process state: module-level RNGs, wall-clock reads,
environment lookups, and (via ``PYTHONHASHSEED``) the iteration order
of string-keyed sets.  SIM001 flags direct *calls* per module;
SIM102 additionally scans digest-reachable functions for the shapes
SIM001 cannot see -- hazardous callables stored or passed as values
(``clock = time.time``), ``os.environ`` reads behind indirection, and
unordered set iteration.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.lint.analysis.symbols import FunctionSymbol, ModuleSymbols, dotted_name

__all__ = [
    "Hazard",
    "SEEDED_CONSTRUCTORS",
    "WALL_CLOCK_DATETIME",
    "WALL_CLOCK_TIME",
    "function_hazards",
]

#: numpy.random attributes that construct explicitly seeded generators.
SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "RandomState",
    "PCG64",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Wall-clock reads on the ``time`` module (monotonic/perf_counter are
#: allowed: they are profiling tools, not simulation inputs).
WALL_CLOCK_TIME = {"time", "time_ns", "localtime", "gmtime"}

#: Wall-clock constructors on datetime/date classes.
WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}

#: Call targets that read entropy or identity no seed controls.
_ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
}


@dataclass(frozen=True)
class Hazard:
    """One determinism hazard inside a function body."""

    #: Category: ``unseeded-rng`` | ``wall-clock`` | ``env-read`` |
    #: ``entropy`` | ``rng-reference`` | ``clock-reference`` |
    #: ``set-iteration``.
    kind: str
    message: str
    lineno: int
    col: int


def _is_hazard_target(resolved: str) -> tuple[str, str] | None:
    """Classify a resolved dotted target; return (kind, description)."""
    head, _, tail = resolved.partition(".")
    if head == "random" and tail and not tail.startswith("_"):
        return "unseeded-rng", f"random.{tail} uses the global RNG"
    if head == "numpy" and tail.startswith("random."):
        attribute = tail.split(".", 1)[1]
        if attribute and attribute not in SEEDED_CONSTRUCTORS:
            return "unseeded-rng", f"numpy.random.{attribute} uses the module-level RNG"
    if head == "time" and tail in WALL_CLOCK_TIME:
        return "wall-clock", f"time.{tail} reads the wall clock"
    if head in ("datetime", "date") and resolved.rsplit(".", 1)[-1] in (
        WALL_CLOCK_DATETIME
    ):
        return "wall-clock", f"{resolved} reads the wall clock"
    if resolved in _ENTROPY_CALLS:
        return "entropy", f"{resolved} draws unseedable entropy"
    return None


def _environ_read(node: ast.expr, table: ModuleSymbols) -> str | None:
    """Describe an ``os.environ`` / ``os.getenv`` access, if this is one."""
    if isinstance(node, ast.Call):
        target = dotted_name(node.func)
        if target is not None and table.resolve(target) in (
            "os.getenv",
            "os.environ.get",
        ):
            return table.resolve(target)
        return None
    target = dotted_name(node)
    if target is not None and table.resolve(target) == "os.environ":
        return "os.environ"
    return None


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def function_hazards(
    symbol: FunctionSymbol, table: ModuleSymbols
) -> Iterator[Hazard]:
    """Scan one function body for determinism hazards.

    Yields both direct hazardous *calls* (overlapping SIM001, so the
    certification never depends on another rule being enabled) and the
    indirection shapes only a reachability pass can justify flagging:
    hazardous callables referenced as values, environment reads, and
    unordered set iteration.
    """
    call_function_nodes = set()
    for node in ast.walk(symbol.node):
        if isinstance(node, ast.Call):
            call_function_nodes.add(id(node.func))

    for node in ast.walk(symbol.node):
        if isinstance(node, ast.Call):
            environ = _environ_read(node, table)
            if environ is not None:
                yield Hazard(
                    kind="env-read",
                    message=f"{environ} read makes behavior depend on the environment",
                    lineno=node.lineno,
                    col=node.col_offset,
                )
                continue
            target = dotted_name(node.func)
            if target is None:
                continue
            classified = _is_hazard_target(table.resolve(target))
            if classified is not None:
                kind, description = classified
                yield Hazard(
                    kind=kind,
                    message=f"call to {target}(): {description}",
                    lineno=node.lineno,
                    col=node.col_offset,
                )
        elif isinstance(node, (ast.Attribute, ast.Name)):
            if id(node) in call_function_nodes:
                continue  # the call case above already covers it
            if not isinstance(node.ctx, ast.Load):
                continue
            environ = _environ_read(node, table)
            if environ is not None:
                yield Hazard(
                    kind="env-read",
                    message=f"{environ} read makes behavior depend on the environment",
                    lineno=node.lineno,
                    col=node.col_offset,
                )
                continue
            target = dotted_name(node)
            if target is None or "." not in target:
                # Bare names alias too readily (parameters, locals); only
                # dotted references identify a hazardous callable surely.
                continue
            classified = _is_hazard_target(table.resolve(target))
            if classified is not None:
                kind, description = classified
                yield Hazard(
                    kind=f"{'rng' if kind == 'unseeded-rng' else 'clock'}-reference",
                    message=(
                        f"reference to {target} (not a call): {description}; "
                        "storing or passing it hides the hazard from "
                        "per-expression linting"
                    ),
                    lineno=node.lineno,
                    col=node.col_offset,
                )
        elif isinstance(node, ast.For) and _is_set_expression(node.iter):
            yield Hazard(
                kind="set-iteration",
                message=(
                    "iterating a set: string hashing is randomized per "
                    "process, so iteration order is not reproducible; "
                    "wrap in sorted(...)"
                ),
                lineno=node.iter.lineno,
                col=node.iter.col_offset,
            )
        elif isinstance(node, ast.comprehension) and _is_set_expression(node.iter):
            yield Hazard(
                kind="set-iteration",
                message=(
                    "comprehension over a set: iteration order is not "
                    "reproducible across processes; wrap in sorted(...)"
                ),
                lineno=node.iter.lineno,
                col=node.iter.col_offset,
            )

    # list()/tuple()/join() over a set expression: materializes an
    # unordered sequence.
    for node in ast.walk(symbol.node):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        name = (
            node.func.id
            if isinstance(node.func, ast.Name)
            else node.func.attr
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if name in ("list", "tuple", "join", "enumerate") and _is_set_expression(
            node.args[0]
        ):
            yield Hazard(
                kind="set-iteration",
                message=(
                    f"{name}() over a set materializes an unordered sequence; "
                    "wrap the set in sorted(...)"
                ),
                lineno=node.args[0].lineno,
                col=node.args[0].col_offset,
            )
