"""AST-normalized source fingerprints.

A fingerprint hashes what the interpreter *executes*, not the bytes on
disk: source is parsed, docstrings are stripped (module, class, and
function bodies), and the remaining tree is serialized with
:func:`ast.dump` -- which carries no comments, no blank lines, no
trailing whitespace, and no line/column numbers.  Two sources that
differ only in comments, docstrings, or formatting therefore fingerprint
identically, while any semantic change (a constant, an operator, a
default, an added statement) changes the digest.

This is the foundation of the cache's code-version salt
(:func:`repro.simulator.runner.cache.code_version_salt`): comment-only
edits stop evicting warmed sweep caches, semantic edits keep doing so.
"""

from __future__ import annotations

import ast
import hashlib
from collections.abc import Iterable
from pathlib import Path

__all__ = [
    "fingerprint_files",
    "fingerprint_source",
    "normalized_dump",
    "strip_docstrings",
]

_DOCUMENTED = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def strip_docstrings(tree: ast.AST) -> ast.AST:
    """Remove docstring statements from a tree, in place.

    A body emptied by the removal gets an ``ast.Pass()`` so the tree
    stays valid (``def f(): "doc"`` normalizes like ``def f(): pass``).
    """
    for node in ast.walk(tree):
        if not isinstance(node, _DOCUMENTED):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            del body[0]
            if not body:
                body.append(ast.Pass())
    return tree


def normalized_dump(source: str, filename: str = "<fingerprint>") -> str:
    """The comment/docstring/whitespace-free serialization of a source.

    Raises ``SyntaxError`` for unparseable source -- the caller decides
    whether to fall back to byte hashing.
    """
    tree = ast.parse(source, filename=filename)
    return ast.dump(strip_docstrings(tree), annotate_fields=False)


def fingerprint_source(source: str, filename: str = "<fingerprint>") -> str:
    """SHA-256 of one source's normalized form."""
    return hashlib.sha256(normalized_dump(source, filename).encode()).hexdigest()


def fingerprint_files(root: Path, files: Iterable[Path]) -> str:
    """One SHA-256 over the normalized forms of many files.

    Files hash in sorted root-relative order, with their relative path
    mixed in, so renames and moves change the digest while traversal
    order cannot.  A file that fails to parse contributes its raw bytes
    instead (strictly safer: byte-level edits there keep evicting).
    """
    hasher = hashlib.sha256()
    resolved_root = root.resolve()
    ordered = sorted(
        (path.resolve().relative_to(resolved_root).as_posix(), path) for path in files
    )
    for relative, path in ordered:
        hasher.update(relative.encode())
        hasher.update(b"\x00")
        source_bytes = path.read_bytes()
        try:
            dump = normalized_dump(source_bytes.decode("utf-8"), filename=relative)
        except (SyntaxError, UnicodeDecodeError):
            hasher.update(source_bytes)
        else:
            hasher.update(dump.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()
