"""Project-wide call graph with evidence-carrying reachability.

Edges are resolved *statically and conservatively* from four call
shapes:

* ``f(...)`` -- a name defined or imported in the calling module;
* ``mod.f(...)`` / ``pkg.mod.f(...)`` -- resolved through import aliases;
* ``self.m(...)`` / ``cls.m(...)`` -- a method of the enclosing class
  (following project-local base classes);
* ``obj.m(...)`` -- *unique-name fallback*: linked only when exactly one
  project class defines a method ``m`` and no module-level function
  shares the name, a CHA-lite that resolves idioms like
  ``plan.rng(...)`` without guessing among homonyms.

Class instantiation links to ``__init__`` when the class defines one.
Unresolved calls (stdlib, numpy, dynamic dispatch) simply produce no
edge -- the certification layer compensates by unioning call-graph
reachability with the module *import closure*, which is a sound
over-approximation at file granularity.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lint.analysis.symbols import FunctionSymbol, ModuleSymbols, dotted_name

if TYPE_CHECKING:
    from repro.lint.analysis.project import ProjectContext

__all__ = ["CallGraph", "CallSite"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its source location."""

    caller: str
    callee: str
    lineno: int
    col: int
    #: The call expression itself (argument matching for unit flow).
    node: ast.Call


class CallGraph:
    """Resolved call edges over every in-scope function of a project."""

    def __init__(
        self,
        functions: dict[str, FunctionSymbol],
        sites: list[CallSite],
    ):
        #: Every in-scope function/method by project qualname.
        self.functions = functions
        #: Every resolved call site.
        self.sites = sites
        self.edges: dict[str, set[str]] = {}
        self._sites_by_caller: dict[str, list[CallSite]] = {}
        for site in sites:
            self.edges.setdefault(site.caller, set()).add(site.callee)
            self._sites_by_caller.setdefault(site.caller, []).append(site)

    @classmethod
    def build(cls, project: ProjectContext) -> CallGraph:
        """Resolve every call site of the project's in-scope modules."""
        symbols = project.symbols()
        functions: dict[str, FunctionSymbol] = {}
        for table in symbols.values():
            for symbol in table.all_functions():
                functions[symbol.qualname] = symbol
        unique_methods = _unique_method_index(symbols)
        sites: list[CallSite] = []
        for table in symbols.values():
            for symbol in table.all_functions():
                sites.extend(
                    _resolve_calls(symbol, table, symbols, functions, unique_methods)
                )
        return cls(functions, sites)

    def callees_of(self, qualname: str) -> set[str]:
        """Direct callees of one function."""
        return self.edges.get(qualname, set())

    def reachable(self, entries: list[str]) -> dict[str, tuple[str, ...]]:
        """Functions reachable from ``entries``, with evidence chains.

        Returns ``qualname -> (entry, ..., qualname)``: the breadth-first
        call chain proving reachability, used verbatim as finding
        evidence by SIM102.
        """
        parent: dict[str, str | None] = {}
        queue: deque[str] = deque()
        for entry in entries:
            if entry in self.functions and entry not in parent:
                parent[entry] = None
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee in parent or callee not in self.functions:
                    continue
                parent[callee] = current
                queue.append(callee)
        chains: dict[str, tuple[str, ...]] = {}
        for qualname in parent:
            chain: list[str] = []
            cursor: str | None = qualname
            while cursor is not None:
                chain.append(cursor)
                cursor = parent[cursor]
            chains[qualname] = tuple(reversed(chain))
        return chains

    def sites_in(self, qualname: str) -> list[CallSite]:
        """Call sites whose caller is ``qualname``."""
        return self._sites_by_caller.get(qualname, [])


def _unique_method_index(
    symbols: dict[str, ModuleSymbols]
) -> dict[str, FunctionSymbol]:
    """Method name -> symbol, for names defined by exactly one class.

    Names that are also module-level functions anywhere are excluded:
    the fallback must never guess between a method and a function.
    """
    seen: dict[str, FunctionSymbol | None] = {}
    function_names: set[str] = set()
    for table in symbols.values():
        function_names.update(table.functions)
        for klass in table.classes.values():
            for name, method in klass.methods.items():
                seen[name] = None if name in seen else method
    return {
        name: method
        for name, method in seen.items()
        if method is not None and name not in function_names
    }


def _resolve_calls(
    caller: FunctionSymbol,
    table: ModuleSymbols,
    symbols: dict[str, ModuleSymbols],
    functions: dict[str, FunctionSymbol],
    unique_methods: dict[str, FunctionSymbol],
) -> list[CallSite]:
    sites: list[CallSite] = []
    for node in ast.walk(caller.node):
        if not isinstance(node, ast.Call):
            continue
        callee = _resolve_callee(node.func, caller, table, symbols, unique_methods)
        if callee is None or callee.qualname not in functions:
            continue
        sites.append(
            CallSite(
                caller=caller.qualname,
                callee=callee.qualname,
                lineno=node.lineno,
                col=node.col_offset,
                node=node,
            )
        )
    return sites


def _resolve_callee(
    func: ast.expr,
    caller: FunctionSymbol,
    table: ModuleSymbols,
    symbols: dict[str, ModuleSymbols],
    unique_methods: dict[str, FunctionSymbol],
) -> FunctionSymbol | None:
    """Best-effort resolution of one call expression to a project symbol."""
    if isinstance(func, ast.Name):
        return _resolve_name(func.id, table, symbols)
    if not isinstance(func, ast.Attribute):
        return None
    # self.m(...) / cls.m(...): the enclosing class, then its bases.
    if (
        isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
        and caller.owner is not None
    ):
        found = _resolve_method(caller.module, caller.owner, func.attr, table, symbols)
        if found is not None:
            return found
    dotted = dotted_name(func)
    if dotted is not None:
        resolved = table.resolve(dotted)
        found = _lookup_qualname(resolved, symbols)
        if found is not None:
            return found
    # obj.m(...): unique-name fallback.
    return unique_methods.get(func.attr)


def _resolve_name(
    name: str, table: ModuleSymbols, symbols: dict[str, ModuleSymbols]
) -> FunctionSymbol | None:
    if name in table.functions:
        return table.functions[name]
    if name in table.classes:
        return table.classes[name].methods.get("__init__")
    target = table.imports.get(name)
    if target is not None:
        return _lookup_qualname(target, symbols)
    return None


def _resolve_method(
    module: str,
    class_name: str,
    method: str,
    table: ModuleSymbols,
    symbols: dict[str, ModuleSymbols],
    depth: int = 0,
) -> FunctionSymbol | None:
    """A method of a class, following project-local bases (bounded)."""
    if depth > 8:
        return None
    klass = table.classes.get(class_name)
    if klass is None:
        return None
    if method in klass.methods:
        return klass.methods[method]
    for base in klass.bases:
        resolved = table.resolve(base)
        owner_module, _, owner_name = resolved.rpartition(".")
        base_table = symbols.get(owner_module)
        if base_table is None:
            # A base written unqualified in the same module.
            if resolved in table.classes:
                found = _resolve_method(
                    module, resolved, method, table, symbols, depth + 1
                )
                if found is not None:
                    return found
            continue
        found = _resolve_method(
            owner_module, owner_name, method, base_table, symbols, depth + 1
        )
        if found is not None:
            return found
    return None


def _lookup_qualname(
    qualname: str, symbols: dict[str, ModuleSymbols]
) -> FunctionSymbol | None:
    """Find ``module.func``, ``module.Class.method``, or a class init."""
    parts = qualname.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:split])
        table = symbols.get(module)
        if table is None:
            continue
        remainder = parts[split:]
        if len(remainder) == 1:
            name = remainder[0]
            if name in table.functions:
                return table.functions[name]
            if name in table.classes:
                return table.classes[name].methods.get("__init__")
        elif len(remainder) == 2:
            klass = table.classes.get(remainder[0])
            if klass is not None:
                return klass.methods.get(remainder[1])
        return None
    return None
