"""SIM007 -- ``__all__`` export hygiene.

The package's public surface is declared through ``__all__`` in every
module (the top-level ``repro/__init__.py`` re-exports from them).  Two
failure modes are flagged:

* a name listed in ``__all__`` that is never defined or imported in the
  module -- ``from repro.x import *`` would raise ``AttributeError``;
* a public top-level class or function that is *not* listed -- it
  silently falls out of the documented API surface.

The second check applies only to library modules (``repro.*``); test
modules rarely declare ``__all__`` and never need to.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["ExportHygiene"]


def _declared_all(tree: ast.Module) -> tuple[ast.stmt, list[str]] | None:
    """The ``__all__`` assignment and its string entries, if present."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    return node, names
    return None


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Every name bound at module top level (defs, classes, imports, assigns)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            bound |= _top_level_bindings(
                ast.Module(body=list(getattr(node, "body", [])), type_ignores=[])
            )
    return bound


@register
class ExportHygiene(Rule):
    """Flag phantom ``__all__`` entries and unexported public defs."""

    code = "SIM007"
    name = "export-hygiene"
    rationale = (
        "__all__ is the declared API surface; phantom entries break "
        "star-imports and unexported public defs hide API from users."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        declared = _declared_all(module.tree)
        if declared is None:
            return
        all_node, exported = declared
        bound = _top_level_bindings(module.tree)
        for name in exported:
            if name not in bound and name != "__version__":
                yield self.finding(
                    module, all_node,
                    f"__all__ lists {name!r} but the module never defines or "
                    "imports it",
                )
        if not module.module.startswith("repro"):
            return
        exported_set = set(exported)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_") and node.name not in exported_set:
                    yield self.finding(
                        module, node,
                        f"public definition {node.name!r} is missing from "
                        "__all__ (export it or prefix with _)",
                    )
