"""SIM009 -- method docstrings in the simulator and observability layers.

SIM008 requires docstrings on modules and public *top-level* symbols
everywhere.  The simulator core (``repro.simulator``) and the telemetry
contract (``repro.obs``) are held to a stricter bar: every public
*method and property* of a public class must carry a docstring too.
These two packages are the layers external tooling programs against --
``SimulationResult`` accessors feed the analysis/benchmark stack, and
``repro.obs`` events/tracers are a documented wire contract
(``docs/observability.md``) -- so an undocumented method there is an
undocumented API.

Private (``_``-prefixed) and dunder methods are exempt: the former are
implementation detail, the latter are documented by the data model.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["MethodDocstrings"]

#: Dotted-module prefixes the rule applies to.
_STRICT_PACKAGES = ("repro.simulator", "repro.obs")


@register
class MethodDocstrings(Rule):
    """Flag missing docstrings on public methods in simulator/obs."""

    code = "SIM009"
    name = "method-docstrings"
    rationale = (
        "repro.simulator results and repro.obs events are programmed "
        "against by the analysis stack and external tooling; an "
        "undocumented public method there is an undocumented API "
        "(docs/observability.md is built on these docstrings)."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        """Only the simulator core and the observability layer."""
        return module.module.startswith(_STRICT_PACKAGES)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per undocumented public method/property."""
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if member.name.startswith("_"):
                    continue
                if ast.get_docstring(member) is None:
                    yield self.finding(
                        module, member,
                        f"public method {node.name}.{member.name!r} has no docstring",
                    )
