"""simlint's domain rules; importing this package registers them all.

Each ``sim0xx_*`` module defines one rule class decorated with
:func:`repro.lint.base.register`.  Add new rules by creating a module
here and importing it below -- the registry, CLI, and docs pick it up
automatically.
"""

from __future__ import annotations

from repro.lint.rules.sim001_determinism import UnseededRandomness
from repro.lint.rules.sim002_integer_minutes import IntegerMinutes
from repro.lint.rules.sim003_unit_suffixes import UnitSuffixes
from repro.lint.rules.sim004_policy_registry import PolicyRegistryCompleteness
from repro.lint.rules.sim005_experiment_registry import ExperimentRegistryCompleteness
from repro.lint.rules.sim006_mutable_defaults import MutableDefaults
from repro.lint.rules.sim007_export_hygiene import ExportHygiene
from repro.lint.rules.sim008_docstrings import PublicDocstrings
from repro.lint.rules.sim009_method_docstrings import MethodDocstrings
from repro.lint.rules.sim101_unit_flow import UnitFlow
from repro.lint.rules.sim102_digest_safety import DigestSafety
from repro.lint.rules.sim103_pool_boundary import PoolBoundary

__all__ = [
    "UnseededRandomness",
    "IntegerMinutes",
    "UnitSuffixes",
    "PolicyRegistryCompleteness",
    "ExperimentRegistryCompleteness",
    "MutableDefaults",
    "ExportHygiene",
    "PublicDocstrings",
    "MethodDocstrings",
    "UnitFlow",
    "DigestSafety",
    "PoolBoundary",
]
