"""SIM003 -- unit-suffix discipline for carbon/energy/cost quantities.

The accounting model (``docs/accounting.md``) moves between gCO2eq,
kWh, and USD; the codebase encodes the unit in the variable name
(``carbon_g``, ``energy_kwh``, ``usage_cost``, ``price_per_hour``).
This rule enforces two things:

* **no mixed-unit arithmetic**: adding or subtracting two names whose
  suffixes place them in different unit families (``carbon_g +
  energy_kwh``) is flagged -- such sums are physically meaningless and
  exactly the bug class ``repro.simulator.validation`` exists to catch
  at runtime;
* **no bare quantity names**: assigning an arithmetic result or a
  carbon/cost-producing call to a bare ``carbon`` / ``energy`` /
  ``cost`` / ``price`` name is flagged -- the unit must be in the name.

Trace/object constructors (``region_trace``) are not quantities and are
exempt; so are plain name-to-name copies.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.analysis.units import unit_family
from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["UnitSuffixes", "unit_family"]

#: Bare quantity stems that need a unit suffix when assigned numbers.
_BARE_STEMS = {"carbon", "energy", "cost", "price"}

#: Substrings marking a call as producing a unit-bearing quantity.
_QUANTITY_CALL_MARKERS = ("carbon", "energy", "cost", "price")


def _operand_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_quantity_expression(node: ast.expr) -> bool:
    """Whether an expression plausibly produces a raw unit-bearing number."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, (ast.BinOp, ast.UnaryOp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        lowered = name.lower()
        if "trace" in lowered:  # trace constructors return objects, not numbers
            return False
        return any(marker in lowered for marker in _QUANTITY_CALL_MARKERS) or (
            lowered in ("sum", "float")
        )
    return False


@register
class UnitSuffixes(Rule):
    """Flag mixed-unit arithmetic and unsuffixed quantity names."""

    code = "SIM003"
    name = "unit-suffixes"
    rationale = (
        "Quantities carry their unit in the name (gCO2eq vs kWh vs USD); "
        "mixing families in one sum is physically meaningless and evades "
        "runtime validation."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.module.startswith("repro")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left, right = _operand_name(node.left), _operand_name(node.right)
                if left and right:
                    left_family = unit_family(left)
                    right_family = unit_family(right)
                    if (
                        left_family
                        and right_family
                        and left_family != right_family
                    ):
                        yield self.finding(
                            module, node,
                            f"mixing units: {left!r} is {left_family} but "
                            f"{right!r} is {right_family}; convert explicitly "
                            "before combining",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id.lower() in _BARE_STEMS
                        and _is_quantity_expression(node.value)
                    ):
                        yield self.finding(
                            module, node,
                            f"unit-bearing variable {target.id!r} has no unit "
                            "suffix; name it e.g. "
                            f"{target.id}_g / {target.id}_kwh / {target.id}_usd",
                        )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    parameter_family = unit_family(keyword.arg)
                    argument = _operand_name(keyword.value)
                    if parameter_family is None or argument is None:
                        continue
                    argument_family = unit_family(argument)
                    if argument_family and argument_family != parameter_family:
                        yield self.finding(
                            module, keyword.value,
                            f"passing {argument!r} ({argument_family}) to "
                            f"parameter {keyword.arg!r} ({parameter_family})",
                        )
