"""SIM102 -- digest-safety certification of the reachable simulation core.

The result cache trusts that a :meth:`SimulationSpec.digest` plus the
code-version salt fully determine a simulation's output.  That trust
fails if anything *reachable* from the digest-relevant entry points
(``Engine.run``, ``run_reference``, policy ``decide`` implementations,
``SimulationSpec.digest``, ``repro.faults.apply``) consults hidden
process state.  SIM001 already flags direct hazardous calls per module;
SIM102 walks the interprocedural call graph from the entry points and
flags, with the call chain as evidence, the shapes indirection hides:
hazardous callables stored as values, ``os.environ`` reads, unseedable
entropy, and string-set iteration (ordered by the per-process hash
seed).

The pass's certified reachable-file set is also the input to the cache
salt -- see :func:`repro.lint.analysis.certify.certified_files` and
``docs/linting.md``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.analysis.certify import entry_functions, reachable_functions
from repro.lint.analysis.hazards import function_hazards
from repro.lint.analysis.project import ProjectContext
from repro.lint.base import ProjectRule, register
from repro.lint.findings import Finding

__all__ = ["DigestSafety"]


@register
class DigestSafety(ProjectRule):
    """Certify the digest-reachable call graph free of hidden state."""

    code = "SIM102"
    name = "digest-safety"
    rationale = (
        "Cached results are keyed by spec digest + code salt; any "
        "randomness, wall-clock, environment, or hash-order dependence "
        "reachable from the digest entry points makes bit-identical "
        "replays impossible and cache hits silently wrong."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Scan every digest-reachable function for determinism hazards."""
        if not entry_functions(project):
            return  # nothing to certify in this tree (partial lint run)
        graph = project.callgraph()
        symbols = project.symbols()
        for qualname, chain in sorted(reachable_functions(project).items()):
            symbol = graph.functions[qualname]
            table = symbols[symbol.module]
            context = project.modules.get(symbol.module)
            if context is None:
                continue
            for hazard in function_hazards(symbol, table):
                yield Finding(
                    path=str(context.path),
                    line=hazard.lineno,
                    col=hazard.col,
                    code=self.code,
                    message=(
                        f"[{hazard.kind}] {hazard.message} "
                        f"(digest-reachable via {' -> '.join(chain)})"
                    ),
                    evidence=chain,
                )
