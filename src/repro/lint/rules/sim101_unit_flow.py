"""SIM101 -- interprocedural unit-flow discipline.

SIM003 polices unit suffixes one expression at a time; it cannot see a
gram-valued call result assigned to a ``_kg`` name, nor a ``_g`` local
passed *positionally* into a ``_kg`` parameter defined two modules
away.  SIM101 runs the whole-program unit-flow inference
(:mod:`repro.lint.analysis.unitflow`): families seed from the suffix
convention, propagate through assignments, returns, and resolved call
edges, and every provable cross-expression conflict is reported with
its flow evidence.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.analysis.project import ProjectContext
from repro.lint.analysis.unitflow import unit_flow_mismatches
from repro.lint.base import ProjectRule, register
from repro.lint.findings import Finding

__all__ = ["UnitFlow"]


@register
class UnitFlow(ProjectRule):
    """Flag unit-family conflicts that flow across expressions and calls."""

    code = "SIM101"
    name = "unit-flow"
    rationale = (
        "gCO2eq/kWh/USD quantities keep their unit family along every "
        "assignment, return, and call edge; a _g value reaching a _kg "
        "parameter across modules is a silent 1000x accounting error "
        "SIM003's per-expression view cannot see."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Report every provable cross-expression unit-family conflict."""
        for mismatch in unit_flow_mismatches(project):
            context = project.modules.get(mismatch.module)
            if context is None:
                continue
            yield Finding(
                path=str(context.path),
                line=mismatch.lineno,
                col=mismatch.col,
                code=self.code,
                message=f"[{mismatch.kind}] {mismatch.message}",
                evidence=mismatch.evidence,
            )
