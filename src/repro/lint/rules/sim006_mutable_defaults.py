"""SIM006 -- no mutable default arguments.

A ``def run(jobs=[])`` default is created once and shared across calls;
in a simulator that reuses policy and engine objects across sweeps
(``reserved_sweep`` runs dozens of simulations in one process) a
mutated default silently couples runs -- a determinism bug SIM001
cannot see.  Use ``None`` plus an inside-the-function default, or a
``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["MutableDefaults"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaults(Rule):
    """Flag list/dict/set (and friends) used as parameter defaults."""

    code = "SIM006"
    name = "mutable-defaults"
    rationale = (
        "Mutable defaults are shared across calls; sweeps that run many "
        "simulations in one process pick up state from earlier runs."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {label!r}; use None "
                        "and construct inside the function",
                    )
