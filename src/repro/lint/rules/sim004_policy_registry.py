"""SIM004 -- every concrete Policy subclass is registered and complete.

The experiment layer builds policies exclusively through
``repro.policies.registry.make_policy`` spec strings; a Policy subclass
missing from the registry silently falls out of Table 1, the figure
benchmarks, and the CLI.  Likewise a subclass that forgets to override
``decide`` -- the one abstract hook of ``base.Policy`` -- only explodes
at simulation time.

Private (``_``-prefixed) and abstract classes are exempt: they are
implementation scaffolding, not selectable policies.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["PolicyRegistryCompleteness"]

#: The hooks a concrete policy must override from base.Policy.
_REQUIRED_HOOKS = ("decide",)


def _base_names(class_def: ast.ClassDef) -> set[str]:
    names = set()
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _is_abstract(class_def: ast.ClassDef) -> bool:
    if {"ABC", "ABCMeta"} & _base_names(class_def):
        return True
    for node in class_def.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                name = (
                    decorator.id
                    if isinstance(decorator, ast.Name)
                    else getattr(decorator, "attr", "")
                )
                if name in ("abstractmethod", "abstractproperty"):
                    return True
    return False


def _registered_policy_class_names() -> set[str]:
    """Class names reachable through the policy registry (imported live)."""
    from repro.policies.registry import TIMING_POLICIES, WRAPPERS

    names = set()
    for factory in (*TIMING_POLICIES.values(), *WRAPPERS.values()):
        names.add(getattr(factory, "__name__", str(factory)))
    return names


@register
class PolicyRegistryCompleteness(Rule):
    """Flag unregistered or incomplete Policy subclasses."""

    code = "SIM004"
    name = "policy-registry"
    rationale = (
        "Policies are only reachable through registry spec strings; an "
        "unregistered subclass is dead code and an un-overridden decide() "
        "fails only at simulation time."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.module.startswith("repro.policies")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        registered = _registered_policy_class_names()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "Policy" not in _base_names(node):
                continue  # only direct textual subclasses of Policy
            if node.name.startswith("_") or node.name == "Policy":
                continue
            if _is_abstract(node):
                continue
            defined = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for hook in _REQUIRED_HOOKS:
                if hook not in defined:
                    yield self.finding(
                        module, node,
                        f"Policy subclass {node.name!r} does not override "
                        f"required hook {hook!r}",
                    )
            if node.name not in registered:
                yield self.finding(
                    module, node,
                    f"Policy subclass {node.name!r} is not registered in "
                    "repro.policies.registry (TIMING_POLICIES/WRAPPERS)",
                )
