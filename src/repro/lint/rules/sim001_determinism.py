"""SIM001 -- no unseeded randomness or wall-clock reads in the library.

GAIA's simulator must be bit-reproducible: the paper's figures are
regenerated from seeds, and the spot-eviction and synthetic-trace
machinery routes every draw through an explicitly seeded
``np.random.Generator`` (see ``cluster.spot`` and ``carbon.synthetic``).
A single ``random.random()`` or ``time.time()`` hidden in a policy makes
results irreproducible in a way no test reliably catches.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.analysis.hazards import (
    SEEDED_CONSTRUCTORS as _SEEDED_CONSTRUCTORS,
    WALL_CLOCK_DATETIME as _WALL_CLOCK_DATETIME,
    WALL_CLOCK_TIME as _WALL_CLOCK_TIME,
)
from repro.lint.analysis.symbols import dotted_name as _dotted
from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["UnseededRandomness"]


@register
class UnseededRandomness(Rule):
    """Flag global-RNG and wall-clock calls inside ``repro`` modules."""

    code = "SIM001"
    name = "unseeded-randomness"
    rationale = (
        "Simulations must be reproducible from explicit seeds; module-level "
        "RNGs and wall-clock reads make results depend on hidden state."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.module.startswith("repro")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        random_from_names: set[str] = set()
        time_function_imported = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    random_from_names.update(
                        alias.asname or alias.name for alias in node.names
                    )
                if node.module == "time":
                    time_function_imported |= any(
                        alias.name in _WALL_CLOCK_TIME for alias in node.names
                    )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in random_from_names:
                    yield self.finding(
                        module, node,
                        f"call to random.{func.id}() uses the global RNG; "
                        "draw from an explicitly seeded np.random.Generator",
                    )
                elif time_function_imported and func.id in _WALL_CLOCK_TIME:
                    yield self.finding(
                        module, node,
                        f"wall-clock read {func.id}(); simulation time is the "
                        "integer-minute clock, not real time",
                    )
                continue
            dotted = _dotted(func)
            if dotted is None:
                continue
            head, _, tail = dotted.partition(".")
            if head == "random" and tail:
                yield self.finding(
                    module, node,
                    f"call to {dotted}() uses the global RNG; draw from an "
                    "explicitly seeded np.random.Generator",
                )
            elif head in numpy_aliases and tail.startswith("random."):
                attr = tail.split(".", 1)[1]
                if attr not in _SEEDED_CONSTRUCTORS:
                    yield self.finding(
                        module, node,
                        f"call to {dotted}() uses numpy's module-level RNG; "
                        "use an explicitly seeded np.random.default_rng(seed)",
                    )
            elif head == "time" and tail in _WALL_CLOCK_TIME:
                yield self.finding(
                    module, node,
                    f"wall-clock read {dotted}(); simulation time is the "
                    "integer-minute clock, not real time",
                )
            elif (
                head in ("datetime", "date")
                and dotted.rsplit(".", 1)[-1] in _WALL_CLOCK_DATETIME
            ):
                yield self.finding(
                    module, node,
                    f"wall-clock read {dotted}(); simulation time is the "
                    "integer-minute clock, not real time",
                )
