"""SIM002 -- timestamps are integer minutes; floats must not leak in.

The simulator runs on a discrete minute clock (``docs/accounting.md``):
every ``start``, ``end``, ``arrival``, and ``finish`` is an ``int``
minute index.  A float sneaking into one of these (a true division, a
float literal, a ``float`` annotation) silently breaks slot arithmetic
-- carbon integration and capacity accounting both index arrays by
these values.

Names ending in ``cpu_minutes`` / ``overhead_minutes`` (bare or
suffixed) are exempt: they are *resource quantities* (cpu x minutes),
legitimately fractional after division by a job's cpu count.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["IntegerMinutes", "is_minute_name"]

_MINUTE_WORDS = {"start", "end", "arrival", "finish"}
_INT_PRODUCERS = {"int", "round", "len", "floor", "ceil", "hours", "days", "weeks"}


def is_minute_name(name: str) -> bool:
    """Whether a variable/parameter name denotes an integer-minute value."""
    lowered = name.lower()
    if lowered.endswith(("cpu_minutes", "cpu_minute", "overhead_minutes")):
        return False
    if "per_minute" in lowered:  # rates (1/min), legitimately fractional
        return False
    if lowered.endswith(("_minute", "_minutes")):
        return True
    return lowered in _MINUTE_WORDS or lowered.rsplit("_", 1)[-1] in _MINUTE_WORDS


def _is_floaty(node: ast.expr) -> bool:
    """Conservatively decide whether an expression produces a float.

    Only expressions that *definitely* yield floats are flagged (float
    literals, true division, ``float()`` casts); anything wrapped in an
    integer-producing call (``int``, ``round``, unit helpers like
    ``hours``) is trusted.  Unknown names get the benefit of the doubt.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Mod, ast.Pow)):
            return _is_floaty(node.left) or _is_floaty(node.right)
        return False
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name in _INT_PRODUCERS:
            return False
        if name == "float":
            return True
        if name in ("min", "max", "sum", "abs"):
            return any(_is_floaty(arg) for arg in node.args)
        return False
    if isinstance(node, ast.IfExp):
        return _is_floaty(node.body) or _is_floaty(node.orelse)
    return False


def _target_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class IntegerMinutes(Rule):
    """Flag float values flowing into minute-valued names."""

    code = "SIM002"
    name = "integer-minutes"
    rationale = (
        "All timestamps are integer minutes on the discrete simulation "
        "clock; float starts/ends corrupt slot indexing and carbon "
        "integration."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.module.startswith("repro")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_binding(module, target, node.value)
            elif isinstance(node, ast.AnnAssign):
                name = _target_name(node.target)
                if name is not None and is_minute_name(name):
                    annotation = node.annotation
                    if isinstance(annotation, ast.Name) and annotation.id == "float":
                        yield self.finding(
                            module, node,
                            f"minute-valued {name!r} annotated as float; "
                            "timestamps are integer minutes",
                        )
                if node.value is not None:
                    yield from self._check_binding(module, node.target, node.value)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.op, ast.Div):
                    name = _target_name(node.target)
                    if name is not None and is_minute_name(name):
                        yield self.finding(
                            module, node,
                            f"true division into minute-valued {name!r}; "
                            "use // or wrap in int(round(...))",
                        )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg is not None
                        and is_minute_name(keyword.arg)
                        and _is_floaty(keyword.value)
                    ):
                        yield self.finding(
                            module, keyword.value,
                            f"float expression passed to minute-valued "
                            f"parameter {keyword.arg!r}",
                        )

    def _check_binding(
        self, module: ModuleContext, target: ast.expr, value: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                yield from self._check_binding(module, element, value)
            return
        name = _target_name(target)
        if name is not None and is_minute_name(name) and _is_floaty(value):
            yield self.finding(
                module, value,
                f"float expression assigned to minute-valued {name!r}; "
                "timestamps are integer minutes (use //, int(), or round())",
            )
