"""SIM008 -- public API docstring presence.

Every library module, public top-level class, and public top-level
function must carry a docstring.  The reproduction is navigated by
researchers comparing code to the paper; the docstrings are where the
paper-section cross-references live (see ``docs/architecture.md``), so
an undocumented public symbol is an unreviewable one.

Test modules are exempt (test names are their own documentation), as
are ``_``-private symbols and methods (documented at the class level).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Rule, register
from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["PublicDocstrings"]


@register
class PublicDocstrings(Rule):
    """Flag missing docstrings on modules and public top-level defs."""

    code = "SIM008"
    name = "public-docstrings"
    rationale = (
        "Docstrings carry the paper-section cross-references; an "
        "undocumented public symbol cannot be checked against the paper."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.module.startswith("repro")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if ast.get_docstring(module.tree) is None:
            yield self.finding(
                module, module.tree.body[0] if module.tree.body else None,
                "module has no docstring",
            )
        for node in module.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            if ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.finding(
                    module, node,
                    f"public {kind} {node.name!r} has no docstring",
                )
