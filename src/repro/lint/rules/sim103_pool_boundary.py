"""SIM103 -- pickle safety across the ``run_many`` worker-pool boundary.

Specs ship to ``ProcessPoolExecutor`` workers and results ship back;
both must pickle, and specs additionally serve as cache and dedup keys
so their whole dataclass closure must be frozen.  A lambda, a live
tracer, a lock, or an open handle that sneaks into the closure only
explodes at sweep time inside a worker traceback.  SIM103 walks the
registered boundary roots
(:data:`~repro.lint.analysis.entrypoints.POOL_BOUNDARY_ROOTS`) field by
field and reports every statically-provable violation, including lambda
arguments at construction sites anywhere in the project.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.analysis.pickles import boundary_violations
from repro.lint.analysis.project import ProjectContext
from repro.lint.base import ProjectRule, register
from repro.lint.findings import Finding

__all__ = ["PoolBoundary"]


@register
class PoolBoundary(ProjectRule):
    """Verify every type crossing the worker pool is frozen/picklable."""

    code = "SIM103"
    name = "pool-boundary"
    rationale = (
        "run_many ships specs to worker processes and results back; an "
        "unpicklable field (lambda, lock, handle, live tracer) or a "
        "mutable spec breaks sweeps at runtime, deep inside a worker "
        "traceback instead of at definition time."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Report every statically-provable pool-boundary pickle hazard."""
        for violation in boundary_violations(project):
            context = project.modules.get(violation.module)
            if context is None:
                continue
            yield Finding(
                path=str(context.path),
                line=violation.lineno,
                col=violation.col,
                code=self.code,
                message=violation.message,
                evidence=violation.evidence,
            )
