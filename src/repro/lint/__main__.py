"""``python -m repro.lint`` entry point (see :mod:`repro.lint.cli`)."""

from __future__ import annotations

from repro.lint.cli import main

raise SystemExit(main())
