"""simlint -- domain-aware static analysis for GAIA's simulation invariants.

The Python type system cannot see that all timestamps are integer
minutes, that every stochastic draw must come from an explicitly seeded
RNG, or that gCO2eq and kWh and USD must never silently mix.  simlint
encodes those invariants as AST rules (SIM001..SIM008) with inline
``# simlint: disable=CODE`` suppressions and a CLI gate for CI::

    python -m repro.lint src tests

See docs/linting.md for the rule catalogue, and :mod:`repro.lint.base`
for how to add a rule.
"""

from __future__ import annotations

from repro.lint.base import Rule, all_rules, get_rule, register
from repro.lint.context import ModuleContext, collect_files, module_name_for
from repro.lint.findings import Finding
from repro.lint.runner import lint_module, lint_paths
from repro.lint.suppressions import Suppressions

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Suppressions",
    "all_rules",
    "collect_files",
    "get_rule",
    "lint_module",
    "lint_paths",
    "module_name_for",
    "register",
]
