"""The GAIA-Simulator discrete-event engine.

Replays a workload trace against a carbon-intensity trace under a
scheduling policy and the cluster's purchase-option configuration,
producing a :class:`~repro.simulator.results.SimulationResult`.

Event semantics (all timestamps are integer minutes):

* ``FINISH``/segment-end events run before anything else at the same
  minute so freed reserved capacity is immediately reusable.
* ``EVICT`` (spot revocation) runs next: the job loses all progress and
  restarts at once on reserved-if-free, else on-demand (paper 4.2.4).
* ``ARRIVAL`` asks the policy for a decision; work-conserving jobs
  (``reserved_pickup``) start immediately if reserved capacity fits,
  otherwise they join a pending queue that drains first-fit in arrival
  order whenever reserved capacity frees up.
* ``START`` fires at the policy's planned start time; a job that was
  already picked up by a reserved instance ignores it.

At any (re)start the resource manager prefers a reserved instance when
the job is not spot-bound and capacity fits -- "the resource manager
follows the schedule and uses reserved instances when available"
(paper Section 4.1).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING

import numpy as np

from repro.carbon.forecast import Forecaster, PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.capacity import ReservedPool
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel, PurchaseOption
from repro.cluster.spot import CheckpointConfig, EvictionModel, NoEvictions
from repro.errors import SimulationError
from repro.obs.events import (
    IntervalAccount,
    JobArrival,
    JobEvict,
    JobFinish,
    JobStart,
    MetricsSnapshot,
    PolicyDecision,
    RunMeta,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.base import Decision, Policy, SchedulingContext, validate_decision
from repro.simulator.results import JobRecord, SimulationResult, UsageInterval
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, QueueSet
from repro.workload.trace import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simulator.session import EngineSession

__all__ = ["Engine"]


class _EventKind(IntEnum):
    """Tie-break order for events at the same minute."""

    FINISH = 0
    EVICT = 1
    ARRIVAL = 2
    START = 3


@dataclass(slots=True)
class _RunState:
    """Mutable execution state of one job inside the engine."""

    job: Job
    decision: Decision
    started: bool = False
    finished: bool = False
    segments: tuple[tuple[int, int], ...] | None = None
    segment_index: int = 0
    current_start: int | None = None
    current_option: PurchaseOption | None = None
    first_start: int | None = None
    usage: list[UsageInterval] = field(default_factory=list)
    evictions: int = 0
    lost_cpu_minutes: float = 0.0
    finish: int | None = None
    spot_rng: object = None  # per-job RNG, persistent across allocations
    completed_work: int = 0  # minutes preserved by checkpoints
    spot_attempts: int = 0
    checkpoint_overhead_minutes: float = 0.0  # cpu-minutes spent checkpointing
    pending_overhead: int = 0  # wall overhead of the open allocation


def _batched_hook_consistent(policy: Policy) -> bool:
    """Whether ``policy.decide_many`` can stand in for its ``decide``.

    ``decide_many`` promises bit-identical decisions to ``decide``, but
    the promise is made by the class that defines *both*.  A subclass
    overriding only ``decide`` inherits a ``decide_many`` that speaks
    for the ancestor's behaviour, not the override's -- batching it
    would silently ignore the override.  Sound iff the class providing
    ``decide_many`` sits at or below the class providing ``decide`` in
    the MRO.
    """
    cls = type(policy)
    decide_owner = next(c for c in cls.__mro__ if "decide" in c.__dict__)
    many_owner = next(c for c in cls.__mro__ if "decide_many" in c.__dict__)
    return issubclass(many_owner, decide_owner)


class Engine:
    """One-shot simulator: construct, :meth:`run`, read the result.

    For incremental (online) stepping, :meth:`open` returns an
    :class:`~repro.simulator.session.EngineSession` that advances the
    event loop one arrival at a time; the batch :meth:`run` is itself
    expressed as open + replay + drain, so the two paths cannot drift.
    """

    def __init__(
        self,
        workload: WorkloadTrace,
        carbon: CarbonIntensityTrace,
        policy: Policy,
        queues: QueueSet,
        reserved_cpus: int = 0,
        pricing: PricingModel = DEFAULT_PRICING,
        energy: EnergyModel = DEFAULT_ENERGY,
        eviction_model: EvictionModel | None = None,
        forecaster: Forecaster | None = None,
        granularity: int = 5,
        validate: bool = True,
        spot_seed: int = 0,
        checkpointing: CheckpointConfig | None = None,
        retry_spot: bool = False,
        max_spot_retries: int = 10,
        instance_overhead_minutes: int = 0,
        length_estimator=None,
        price_forecaster: Forecaster | None = None,
        memoize_decisions: bool | None = None,
        tracer: Tracer | None = None,
        fault_injector=None,
        fast_path: bool = True,
    ):
        self.workload = workload
        self.carbon = carbon
        self.policy = policy
        self.queues = queues
        self.pool = ReservedPool(reserved_cpus)
        self.pricing = pricing
        self.energy = energy
        self.eviction_model = eviction_model if eviction_model is not None else NoEvictions()
        forecaster = forecaster if forecaster is not None else PerfectForecaster(carbon)
        if forecaster.trace is not carbon:
            raise SimulationError("forecaster must be built over the simulation's carbon trace")
        if granularity < 1:
            raise SimulationError(f"granularity must be >= 1 minute, got {granularity}")
        # Optional chaos hook (see repro.faults): an object with an armed
        # ``next_time`` minute and a ``fire(engine, now)`` method.  None
        # keeps the event loop on its zero-overhead path.
        self._fault_injector = fault_injector
        # Observability: NULL_TRACER by default, so every emission site
        # below is a single attribute check when tracing is off.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        self.ctx = SchedulingContext(
            forecaster=forecaster,
            queues=queues,
            granularity=granularity,
            estimator=length_estimator,
            price_forecaster=price_forecaster,
            tracer=self.tracer,
        )
        self.validate = validate
        self.spot_seed = spot_seed
        if retry_spot and checkpointing is None:
            raise SimulationError(
                "retry_spot without checkpointing cannot guarantee progress; "
                "configure a CheckpointConfig"
            )
        self.checkpointing = checkpointing
        self.retry_spot = retry_spot
        self.max_spot_retries = max_spot_retries
        if instance_overhead_minutes < 0:
            raise SimulationError("instance overhead must be non-negative")
        self.instance_overhead_minutes = instance_overhead_minutes
        # Decision memoization: replicated jobs with identical
        # (arrival, queue, cpus, length) re-use the first decision instead
        # of re-running the candidate-window argmin.  Sound only for
        # stateless policies (see Policy.stateless) and never with an
        # online length estimator, whose estimates drift within a run.
        if memoize_decisions is None:
            memoize_decisions = getattr(policy, "stateless", False)
        self.memoize_decisions = bool(memoize_decisions) and length_estimator is None
        self._decision_memo: dict[tuple[int, str, int, int], Decision] = {}
        # Array-native fast path: batch-precompute decisions and, for
        # contention-free workloads, skip the event loop entirely.
        # Bit-identical to the scalar path by construction (see run());
        # ``fast_path=False`` forces per-arrival decide() through the
        # session replay, which the digest-parity suite compares against.
        self.fast_path = bool(fast_path)
        self._precomputed = False
        self._precomputed_fresh: set[tuple[int, str, int, int]] = set()
        self._batched_decisions = 0

        self._heap: list[tuple[int, int, int, _RunState | Job]] = []
        self._seq = itertools.count()
        self._pending: list[_RunState] = []  # reserved-pickup jobs, arrival order
        self._runs: list[_RunState] = []
        self._opened = False
        # Cheap always-on counters, snapshot into SimulationResult.metrics.
        self._policy_calls = 0
        self._memo_hits = 0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time: int, kind: _EventKind, payload) -> None:
        if time < 0:
            raise SimulationError(f"event scheduled at negative time {time}")
        heapq.heappush(self._heap, (time, int(kind), next(self._seq), payload))

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def open(self) -> "EngineSession":
        """Open an incremental session over this engine's event loop.

        Emits the run's ``RunMeta`` header and hands the loop to an
        :class:`~repro.simulator.session.EngineSession`: feed arrivals
        with ``submit``/``replay``, let time pass with ``advance_to``,
        and finish with ``drain``.  An engine runs once -- opening twice
        (or after :meth:`run`) is an error.
        """
        if self._opened:
            raise SimulationError("engine already opened; engines run once")
        self._opened = True
        if self._tracing:
            self.tracer.emit(
                RunMeta(
                    policy=self.policy.name,
                    workload=self.workload.name,
                    region=self.carbon.name,
                    reserved_cpus=self.pool.capacity,
                    horizon=self.workload.horizon,
                )
            )
        from repro.simulator.session import EngineSession

        return EngineSession(self)

    def run(self) -> SimulationResult:
        """Execute the whole workload and return the accounting result.

        The batch path is the online session replaying the trace: open,
        feed every arrival in canonical order, drain.  The array-native
        fast path slots in front -- decisions are batch-precomputed when
        provably sound, and a contention-free workload skips the event
        loop entirely (:meth:`_run_linear`) -- with unchanged digests.
        """
        session = self.open()
        if self.fast_path:
            self._precompute_decisions()
            if self._can_run_linear():
                self._run_linear()
                return session.drain()
        session.replay(self.workload.jobs)
        return session.drain()

    def _finish_run(self) -> SimulationResult:
        """Close out a drained event loop: audit completion, build the result."""
        unfinished = [run.job.job_id for run in self._runs if not run.finished]
        if unfinished:
            shown = ", ".join(str(job_id) for job_id in unfinished[:5])
            more = ", ..." if len(unfinished) > 5 else ""
            raise SimulationError(f"jobs never finished: [{shown}{more}]")
        return self._build_result()

    def _precompute_decisions(self) -> None:
        """Batch the run's scheduling decisions up front when provably sound.

        Requirements, all checked here: decisions must be memoizable
        (stateless policy, no online length estimator), tracing must be
        off (batched scoring emits no per-job CandidateWindow /
        PolicyDecision events), and no fault injector may mutate
        scheduling inputs between arrivals.  The policy may still opt out
        by returning ``None`` from ``decide_many``; either way the run
        falls back to per-arrival ``decide`` calls with an unchanged
        digest.  Decisions are validated here exactly as the lazy path
        validates them on first compute, and ``_policy_calls`` /
        ``_memo_hits`` metrics stay identical via ``_precomputed_fresh``
        (the first arrival-time lookup of a precomputed key is the
        batched stand-in for the lazy compute, not a memo hit).

        A subclass that overrides ``decide`` while inheriting an
        ancestor's ``decide_many`` would silently batch the *ancestor's*
        decisions; such policies are detected by MRO position and fall
        back to the scalar path.
        """
        if not self.memoize_decisions or self._tracing or self._fault_injector is not None:
            return
        if not _batched_hook_consistent(self.policy):
            return
        unique: dict[tuple[int, str, int, int], Job] = {}
        for job in self.workload:
            key = (job.arrival, job.queue, job.cpus, job.length)
            if key not in unique:
                unique[key] = job
        batch = list(unique.values())
        decisions = self.policy.decide_many(batch, self.ctx)
        if decisions is None:
            return
        if self.validate:
            self._validate_batched(batch, decisions)
        memo = self._decision_memo
        for job, decision in zip(batch, decisions, strict=True):
            memo[(job.arrival, job.queue, job.cpus, job.length)] = decision
        self._policy_calls += len(batch)
        self._batched_decisions = len(batch)
        self._precomputed = True
        self._precomputed_fresh = set(memo)

    def _validate_batched(self, jobs: list[Job], decisions: list[Decision]) -> None:
        """Vectorized :func:`validate_decision` over a precomputed batch.

        Plain start-time decisions -- the entire batched-policy surface
        today -- reduce to two array bound checks.  Segment plans, length
        mismatches, and any batch that fails the vectorized checks fall
        back to the scalar validator, which raises the exact per-job
        error in batch order.
        """
        if len(jobs) != len(decisions) or any(
            decision.segments is not None for decision in decisions
        ):
            for job, decision in zip(jobs, decisions, strict=True):
                validate_decision(job, decision, self.ctx)
            return
        count = len(jobs)
        starts = np.fromiter(
            (decision.start_time for decision in decisions), np.int64, count=count
        )
        arrivals = np.fromiter((job.arrival for job in jobs), np.int64, count=count)
        wait_by_queue = {
            queue.name: queue.max_wait for queue in self.ctx.queues
        }
        waits = np.fromiter(
            (
                wait_by_queue[job.queue]
                if job.queue
                else self.ctx.queue_of(job).max_wait
                for job in jobs
            ),
            np.int64,
            count=count,
        )
        within_bounds = bool(
            (starts >= arrivals).all()
            and (starts <= arrivals + waits + MINUTES_PER_HOUR).all()
        )
        if not within_bounds:
            for job, decision in zip(jobs, decisions):
                validate_decision(job, decision, self.ctx)

    def _can_run_linear(self) -> bool:
        """Whether every job's execution is independent of every other's.

        With a zero-size reserved pool, no spot placements, no
        reserved-pickup queueing, and no suspend-resume plans, jobs never
        interact: each runs on-demand from its decided start for exactly
        its length, so the event loop adds ordering the outcome does not
        depend on.  Requires a successful decision precompute (which
        itself guarantees no tracer, no fault injector, and no online
        estimator) so the full decision set is inspectable up front.
        """
        if not self._precomputed or self.pool.capacity != 0:
            return False
        return all(
            decision.segments is None
            and not decision.use_spot
            and not decision.reserved_pickup
            for decision in self._decision_memo.values()
        )

    def _run_linear(self) -> None:
        """Materialize the contention-free schedule without an event loop.

        Replays exactly what the event loop would do for independent
        jobs -- arrival, on-demand start at ``decision.start_time``, one
        usage interval, finish ``length`` minutes later -- directly into
        run states, in workload (= arrival processing) order.  The
        memo-hit tally reproduces the per-arrival ``_decide`` stream
        arithmetically: the first lookup of each precomputed key is the
        stand-in for its lazy compute, every later lookup is a hit.
        """
        memo = self._decision_memo
        runs = self._runs
        interval = UsageInterval._from_validated  # end - start == length > 0
        on_demand = PurchaseOption.ON_DEMAND
        for job in self.workload.jobs:
            decision = memo[(job.arrival, job.queue, job.cpus, job.length)]
            start = decision.start_time
            finish = start + job.length
            runs.append(
                _RunState(
                    job=job,
                    decision=decision,
                    started=True,
                    finished=True,
                    first_start=start,
                    finish=finish,
                    usage=[interval(start, finish, job.cpus, on_demand)],
                )
            )
        self._memo_hits += len(runs) - self._batched_decisions
        self._precomputed_fresh.clear()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, now: int, job: Job) -> None:
        if self._tracing:
            self.tracer.emit(
                JobArrival(
                    time=now,
                    job_id=job.job_id,
                    queue=job.queue,
                    cpus=job.cpus,
                    length=job.length,
                )
            )
        decision = self._decide(job)
        run = _RunState(job=job, decision=decision, segments=decision.segments)
        self._runs.append(run)

        if decision.segments is not None:
            self._begin_segment(run, decision.segments[0][0])
            return

        if decision.reserved_pickup and self.pool.can_fit(job.cpus):
            self._start_run(run, now, PurchaseOption.RESERVED)
            return
        if decision.reserved_pickup:
            self._pending.append(run)
        self._push(decision.start_time, _EventKind.START, run)

    def _decide(self, job: Job) -> Decision:
        """The policy's decision for ``job``, memoized when sound.

        The key includes ``job.length``: segment policies (Wait Awhile,
        Ecovisor) consume the exact length, and queue routing falls back
        to it for unqueued jobs, so two jobs share a decision only when
        every decide() input matches.  Decisions are frozen, so sharing
        one across runs is safe.
        """
        if not self.memoize_decisions:
            decision = self.policy.decide(job, self.ctx)
            self._policy_calls += 1
            if self.validate:
                validate_decision(job, decision, self.ctx)
            if self._tracing:
                self._trace_decision(job, decision, memoized=False)
            return decision
        key = (job.arrival, job.queue, job.cpus, job.length)
        cached = self._decision_memo.get(key)
        memoized = cached is not None
        if cached is None:
            cached = self.policy.decide(job, self.ctx)
            self._policy_calls += 1
            if self.validate:
                validate_decision(job, cached, self.ctx)
            self._decision_memo[key] = cached
        elif self._precomputed_fresh:
            # A batch-precomputed decision's first arrival-time lookup is
            # the stand-in for the lazy compute (already tallied as a
            # policy call), not a memo hit; later lookups are hits.
            if key in self._precomputed_fresh:
                self._precomputed_fresh.discard(key)
            else:
                self._memo_hits += 1
        else:
            self._memo_hits += 1
        if self._tracing:
            self._trace_decision(job, cached, memoized=memoized)
        return cached

    def _ci_at(self, minute: int) -> float:
        """True hourly carbon intensity (g/kWh) at a simulation minute."""
        hourly = self.carbon.hourly
        index = min(minute // MINUTES_PER_HOUR, len(hourly) - 1)
        return float(hourly[index])

    def _trace_decision(self, job: Job, decision: Decision, memoized: bool) -> None:
        """Emit a PolicyDecision event with its carbon/price inputs."""
        price_usd_per_mwh: float | None = None
        if self.ctx.price_forecaster is not None:
            price_hourly = self.ctx.price_forecaster.trace.hourly
            price_index = min(
                decision.start_time // MINUTES_PER_HOUR, len(price_hourly) - 1
            )
            price_usd_per_mwh = float(price_hourly[price_index])
        # Compute the arrival CI once and pass it through: when arrival
        # and planned start fall in the same trace hour (the common case
        # for immediate starts) the start CI is the same value, so the
        # second trace lookup is skipped entirely.
        hourly = self.carbon.hourly
        last_hour = len(hourly) - 1
        arrival_hour = min(job.arrival // MINUTES_PER_HOUR, last_hour)
        arrival_ci_g_per_kwh = float(hourly[arrival_hour])
        start_hour = min(decision.start_time // MINUTES_PER_HOUR, last_hour)
        start_ci_g_per_kwh = (
            arrival_ci_g_per_kwh
            if start_hour == arrival_hour
            else float(hourly[start_hour])
        )
        self.tracer.emit(
            PolicyDecision(
                time=job.arrival,
                job_id=job.job_id,
                policy=self.policy.name,
                start_time=decision.start_time,
                use_spot=decision.use_spot,
                reserved_pickup=decision.reserved_pickup,
                num_segments=len(decision.segments) if decision.segments else 0,
                memoized=memoized,
                arrival_ci_g_per_kwh=arrival_ci_g_per_kwh,
                start_ci_g_per_kwh=start_ci_g_per_kwh,
                start_price_usd_per_mwh=price_usd_per_mwh,
            )
        )

    def _on_start(self, now: int, payload) -> None:
        if isinstance(payload, _SegmentStart):
            self._start_segment(payload.run, now)
            return
        run = payload
        if run.started:
            return  # already picked up by a freed reserved instance
        if run.decision.use_spot:
            option = PurchaseOption.SPOT
        elif self.pool.can_fit(run.job.cpus):
            option = PurchaseOption.RESERVED
        else:
            option = PurchaseOption.ON_DEMAND
        self._start_run(run, now, option)

    def _on_finish(self, now: int, run: _RunState) -> None:
        self._close_interval(run, now)
        if run.pending_overhead:
            run.checkpoint_overhead_minutes += run.pending_overhead * run.job.cpus
            run.pending_overhead = 0
        if run.segments is not None:
            run.segment_index += 1
            if run.segment_index < len(run.segments):
                self._begin_segment(run, run.segments[run.segment_index][0])
            else:
                self._finalize(run, now)
        else:
            self._finalize(run, now)
        self._drain_pending(now)

    def _on_evict(self, now: int, run: _RunState) -> None:
        if run.finished or run.current_option is not PurchaseOption.SPOT:
            raise SimulationError(f"spurious eviction for job {run.job.job_id}")
        if run.current_start is None:
            raise SimulationError(f"evicted job {run.job.job_id} has no open interval")
        elapsed = now - run.current_start
        # Without checkpointing all progress is lost (paper 4.2.4); with
        # it, work up to the last completed checkpoint survives.
        preserved = 0
        if self.checkpointing is not None and run.segments is None:
            work_at_stake = run.job.length - run.completed_work
            preserved = self.checkpointing.preserved_work(elapsed, work_at_stake)
        run.completed_work += preserved
        run.lost_cpu_minutes += (elapsed - preserved) * run.job.cpus
        run.pending_overhead = 0  # unfinished checkpoints counted as lost
        run.evictions += 1
        if self._tracing:
            self.tracer.emit(
                JobEvict(
                    time=now,
                    job_id=run.job.job_id,
                    lost_cpu_minutes=float((elapsed - preserved) * run.job.cpus),
                    preserved_minutes=preserved,
                    evictions=run.evictions,
                )
            )
        self._close_interval(run, now)
        # Any remaining suspend-resume plan is abandoned: the redo runs
        # contiguously on the fallback option (reserved if one is free,
        # else on-demand; back onto spot when retries are enabled).
        run.segments = None
        if self.retry_spot and run.spot_attempts < self.max_spot_retries:
            option = PurchaseOption.SPOT
        elif self.pool.can_fit(run.job.cpus):
            option = PurchaseOption.RESERVED
        else:
            option = PurchaseOption.ON_DEMAND
        self._allocate_remaining(run, now, option)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def _begin_segment(self, run: _RunState, start: int) -> None:
        self._push(start, _EventKind.START, _SegmentStart(run))

    def _start_run(self, run: _RunState, now: int, option: PurchaseOption) -> None:
        run.started = True
        if run.first_start is None:
            run.first_start = now
        self._allocate_remaining(run, now, option)

    def _allocate_remaining(self, run: _RunState, now: int, option: PurchaseOption) -> None:
        """Allocate for the job's outstanding work, including the wall
        time checkpointing adds on spot."""
        work = run.job.length - run.completed_work
        if option is PurchaseOption.SPOT and self.checkpointing is not None:
            wall = self.checkpointing.wall_time(work)
        else:
            wall = work
        run.pending_overhead = wall - work
        self._allocate(run, now, option, wall)

    def _allocate(self, run: _RunState, now: int, option: PurchaseOption, duration: int) -> None:
        if option is PurchaseOption.RESERVED:
            self.pool.allocate(run.job.cpus)
        if option is PurchaseOption.SPOT:
            run.spot_attempts += 1
        run.current_start = now
        run.current_option = option
        if self._tracing:
            self.tracer.emit(
                JobStart(
                    time=now,
                    job_id=run.job.job_id,
                    option=option.name.lower(),
                    duration=duration,
                    attempt=run.spot_attempts,
                )
            )
        finish = now + duration
        if option is PurchaseOption.SPOT:
            if run.spot_rng is None:
                run.spot_rng = self.eviction_model.rng_for_job(self.spot_seed, run.job.job_id)
            offset = self.eviction_model.sample_eviction(now, run.spot_rng)
            if not math.isinf(offset):
                evict_at = now + max(1, int(round(offset)))
                if evict_at < finish:
                    self._push(evict_at, _EventKind.EVICT, run)
                    return
        self._push(finish, _EventKind.FINISH, run)

    def _start_segment(self, run: _RunState, now: int) -> None:
        if run.finished or run.segments is None:
            return  # plan abandoned after a spot eviction; stale event
        start, end = run.segments[run.segment_index]
        if now != start:
            raise SimulationError("segment start drifted")
        if run.first_start is None:
            run.first_start = now
        run.started = True
        if run.decision.use_spot:
            option = PurchaseOption.SPOT
        elif self.pool.can_fit(run.job.cpus):
            option = PurchaseOption.RESERVED
        else:
            option = PurchaseOption.ON_DEMAND
        self._allocate(run, now, option, end - start)

    def _close_interval(self, run: _RunState, now: int) -> None:
        if run.current_start is None or run.current_option is None:
            raise SimulationError(f"job {run.job.job_id} has no open interval")
        if now > run.current_start:
            run.usage.append(
                UsageInterval(
                    start=run.current_start,
                    end=now,
                    cpus=run.job.cpus,
                    option=run.current_option,
                )
            )
        if run.current_option is PurchaseOption.RESERVED:
            self.pool.release(run.job.cpus)
        run.current_start = None
        run.current_option = None

    def _finalize(self, run: _RunState, now: int) -> None:
        run.finished = True
        run.finish = now
        if self._tracing:
            self.tracer.emit(
                JobFinish(
                    time=now,
                    job_id=run.job.job_id,
                    waiting_minutes=now - run.job.arrival - run.job.length,
                    evictions=run.evictions,
                )
            )
        if self.ctx.estimator is not None and run.job.queue:
            # The accounting database learns lengths as jobs complete.
            self.ctx.estimator.observe(run.job.queue, run.job.length)

    def _drain_pending(self, now: int) -> None:
        """First-fit start of pending work-conserving jobs on freed capacity."""
        if not self._pending or self.pool.free == 0:
            return
        still_pending = []
        for run in self._pending:
            if run.started or run.finished:
                continue  # started at its planned time; drop from the queue
            if self.pool.can_fit(run.job.cpus):
                self._start_run(run, now, PurchaseOption.RESERVED)
            else:
                still_pending.append(run)
        self._pending = still_pending

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _interval_values(
        self,
    ) -> tuple[list[float], list[float], list[float], list[float]]:
        """Per-interval accounting values across *all* runs, batched.

        One :meth:`HourlySeries.integrate_many` call (and one numpy
        expression each for energy, metered cost, and boot-overhead
        carbon) replaces the per-interval Python calls the old accounting
        loop made.  Values are elementwise-identical to the scalar
        formulas, so the per-job assembly in :meth:`_records` reproduces
        the old sums bit for bit.
        """
        count = sum(len(run.usage) for run in self._runs)
        starts = np.empty(count, dtype=np.int64)
        durations = np.empty(count, dtype=np.int64)
        cpu_counts = np.empty(count, dtype=np.int64)
        rates_usd_per_hour = np.empty(count, dtype=np.float64)
        rate_for = {
            option: (
                0.0
                if option is PurchaseOption.RESERVED
                else self.pricing.hourly_rate(option)
            )
            for option in PurchaseOption
        }
        cursor = 0
        for run in self._runs:
            for interval in run.usage:
                starts[cursor] = interval.start
                durations[cursor] = interval.end - interval.start
                cpu_counts[cursor] = interval.cpus
                rates_usd_per_hour[cursor] = rate_for[interval.option]
                cursor += 1
        kw_values = self.energy.active_kw_many(cpu_counts)
        carbon_values_g = self.carbon.integrate_many(starts, durations) * kw_values
        energy_values_kwh = kw_values * durations / MINUTES_PER_HOUR
        cost_values_usd = rates_usd_per_hour * (durations * cpu_counts) / MINUTES_PER_HOUR
        boot_ci = self.carbon.hourly[starts // MINUTES_PER_HOUR]
        boot_carbon_values_g = (
            boot_ci * kw_values * self.instance_overhead_minutes / MINUTES_PER_HOUR
        )
        return (
            carbon_values_g.tolist(),
            energy_values_kwh.tolist(),
            cost_values_usd.tolist(),
            boot_carbon_values_g.tolist(),
        )

    def _accumulate(
        self,
        run: _RunState,
        offset: int,
        carbon_values_g: list[float],
        energy_values_kwh: list[float],
        cost_values_usd: list[float],
        boot_carbon_values_g: list[float],
    ) -> tuple[float, float, float, float]:
        """Sequential per-interval accumulation for multi-interval runs.

        Left-to-right float summation is part of the digest contract, so
        runs with several usage intervals (evictions, suspend-resume
        plans) keep the exact accumulation order of the original scalar
        loop; single-interval runs bypass this in :meth:`_records`.
        """
        job = run.job
        carbon_g = 0.0
        energy_kwh = 0.0
        usage_cost = 0.0
        provisioning = 0.0
        for position, interval in enumerate(run.usage):
            index = offset + position
            carbon_g += carbon_values_g[index]
            energy_kwh += energy_values_kwh[index]
            usage_cost += cost_values_usd[index]
            if (
                self.instance_overhead_minutes
                and interval.option is not PurchaseOption.RESERVED
            ):
                # Each elastic allocation boots a fresh instance: the boot
                # minutes are billed and draw power at the pre-start CI
                # (paper prototype: "entire instance time, including
                # initiation and termination").
                overhead = self.instance_overhead_minutes
                provisioning += overhead * job.cpus
                usage_cost += self.pricing.usage_cost(
                    interval.option, overhead * job.cpus
                )
                energy_kwh += self.energy.energy_kwh(job.cpus, overhead)
                carbon_g += boot_carbon_values_g[index]
        return carbon_g, energy_kwh, usage_cost, provisioning

    def _records(
        self, values: tuple[list[float], list[float], list[float], list[float]]
    ) -> list[JobRecord]:
        """Assemble every job's record from the batched interval values.

        Run-on-arrival baselines are computed for all runs in one
        ``integrate_many * active_kw_many`` expression (elementwise the
        same float ops as the scalar ``interval_carbon(a, e) *
        active_kw(c)``, so bit-identical).  Runs with exactly one usage
        interval -- the overwhelming bulk of any workload -- read their
        accounting straight out of the batched arrays (``0.0 + v == v``
        exactly, so skipping the accumulator changes nothing); the rest
        go through :meth:`_accumulate`.
        """
        carbon_values_g, energy_values_kwh, cost_values_usd, _ = values
        runs = self._runs
        num_runs = len(runs)
        arrivals = np.fromiter((run.job.arrival for run in runs), np.int64, count=num_runs)
        lengths = np.fromiter((run.job.length for run in runs), np.int64, count=num_runs)
        cpu_counts = np.fromiter((run.job.cpus for run in runs), np.int64, count=num_runs)
        ends = np.minimum(arrivals + lengths, self.carbon.horizon_minutes)
        baselines = (
            self.carbon.integrate_many(arrivals, ends - arrivals)
            * self.energy.active_kw_many(cpu_counts)
        ).tolist()
        # The record invariants (started at/after arrival, finished no
        # earlier than start + length) are checked vectorized across all
        # runs; when they hold -- always, short of an engine bug -- the
        # per-record assembly skips ``JobRecord.__init__``.  When one
        # fails, the validating constructor raises the exact per-job
        # error the scalar path always raised.
        first_starts = np.fromiter(
            (
                run.first_start if run.first_start is not None else run.job.arrival
                for run in runs
            ),
            np.int64,
            count=num_runs,
        )
        finishes = np.fromiter(
            (
                run.finish
                if run.finish is not None
                else run.job.arrival + run.job.length
                for run in runs
            ),
            np.int64,
            count=num_runs,
        )
        invariants_hold = not bool(
            (first_starts < arrivals).any() or (finishes < first_starts + lengths).any()
        )
        # Waiting minutes (finish - arrival - length) for the metrics
        # histogram, computed here where the arrays already exist; the
        # values are exact small integers, so int64 -> float64 is exact.
        self._waiting_minutes = (finishes - arrivals - lengths).astype(np.float64).tolist()
        overhead = self.instance_overhead_minutes
        fast_record = JobRecord._from_validated
        records = []
        offset = 0
        for position, run in enumerate(runs):
            job = run.job
            count = len(run.usage)
            if count == 1 and (
                not overhead or run.usage[0].option is PurchaseOption.RESERVED
            ):
                carbon_g = carbon_values_g[offset]
                energy_kwh = energy_values_kwh[offset]
                usage_cost = cost_values_usd[offset]
                provisioning = 0.0
            else:
                carbon_g, energy_kwh, usage_cost, provisioning = self._accumulate(
                    run, offset, *values
                )
            fields = {
                "job_id": job.job_id,
                "queue": job.queue,
                "arrival": job.arrival,
                "length": job.length,
                "cpus": job.cpus,
                "first_start": (
                    run.first_start if run.first_start is not None else job.arrival
                ),
                "finish": (
                    run.finish if run.finish is not None else job.arrival + job.length
                ),
                "carbon_g": carbon_g,
                "energy_kwh": energy_kwh,
                "usage_cost": usage_cost,
                "baseline_carbon_g": baselines[position],
                "usage": tuple(run.usage),
                "evictions": run.evictions,
                "lost_cpu_minutes": run.lost_cpu_minutes,
                "checkpoint_overhead_minutes": run.checkpoint_overhead_minutes,
                "provisioning_cpu_minutes": provisioning,
            }
            records.append(
                fast_record(fields) if invariants_hold else JobRecord(**fields)
            )
            offset += count
        return records

    def _audit_finite(self, values: tuple[list[float], ...]) -> None:
        """Reject non-finite accounting before it reaches a result.

        Corrupted inputs that slip past construction-time validation (a
        fault-injected trace, a pathological energy model) must surface
        as a typed error, never as a NaN total a sweep would happily
        aggregate.
        """
        labels = ("carbon", "energy", "cost", "boot carbon")
        for label, series in zip(labels, values):
            if not np.isfinite(np.sum(series)):
                raise SimulationError(
                    f"non-finite {label} accounting: simulation inputs are "
                    "corrupted (check traces and model parameters)"
                )

    def _build_result(self) -> SimulationResult:
        values = self._interval_values()
        self._audit_finite(values)
        records = self._records(values)
        if self._tracing:
            self._trace_interval_accounts(values)
        metrics = self._metrics_snapshot(records)
        if self._tracing:
            self.tracer.emit(MetricsSnapshot(scope="engine", metrics=metrics))
        return SimulationResult(
            policy_name=self.policy.name,
            workload_name=self.workload.name,
            region=self.carbon.name,
            reserved_cpus=self.pool.capacity,
            horizon=self.workload.horizon,
            pricing=self.pricing,
            records=records,
            metrics=metrics,
        )

    def _trace_interval_accounts(self, values: tuple[list[float], ...]) -> None:
        """Emit one IntervalAccount per usage interval, in record order."""
        carbon_values_g, energy_values_kwh, cost_values_usd, _ = values
        index = 0
        for run in self._runs:
            for interval in run.usage:
                self.tracer.emit(
                    IntervalAccount(
                        job_id=run.job.job_id,
                        start=interval.start,
                        end=interval.end,
                        cpus=interval.cpus,
                        option=interval.option.name.lower(),
                        carbon_g=carbon_values_g[index],
                        energy_kwh=energy_values_kwh[index],
                        cost_usd=cost_values_usd[index],
                    )
                )
                index += 1

    def _metrics_snapshot(self, records: list[JobRecord]) -> dict:
        """The engine's metrics registry snapshot for this run.

        Built once per run from state the engine tracks anyway, so
        collection adds no per-event cost (``docs/observability.md``
        catalogues the names).
        """
        registry = MetricsRegistry()
        registry.counter("engine.jobs", float(len(records)))
        registry.counter(f"policy.decisions.{self.policy.name}", float(len(self._runs)))
        registry.counter("engine.policy_calls", float(self._policy_calls))
        registry.counter("engine.decision_memo_hits", float(self._memo_hits))
        registry.counter(
            "engine.evictions", float(sum(run.evictions for run in self._runs))
        )
        registry.counter(
            "engine.spot_attempts", float(sum(run.spot_attempts for run in self._runs))
        )
        registry.counter(
            "engine.usage_intervals", float(sum(len(run.usage) for run in self._runs))
        )
        registry.counter("engine.batched_decisions", float(self._batched_decisions))
        registry.gauge("engine.reserved_cpus", float(self.pool.capacity))
        registry.gauge("engine.memoize_decisions", float(self.memoize_decisions))
        waiting = getattr(self, "_waiting_minutes", None)
        if waiting is None:
            waiting = [float(record.waiting_time) for record in records]
        registry.histogram_many("engine.job_waiting_minutes", waiting)
        return registry.snapshot()


class _SegmentStart:
    """Adapter so segment starts share the START event slot."""

    __slots__ = ("run",)

    def __init__(self, run: _RunState):
        self.run = run
