"""Simulation outputs: per-job records and cluster-wide accounting.

The accounting follows the paper (Section 4.1): on-demand and spot usage
is metered per use; reserved capacity is paid upfront for the whole
horizon regardless of utilization; energy and carbon are attributed by
actual usage for every purchase option.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.pricing import PricingModel, PurchaseOption
from repro.errors import SimulationError
from repro.units import MINUTES_PER_HOUR, grams_to_kg

__all__ = ["UsageInterval", "JobRecord", "SimulationResult", "demand_profile"]

#: Scalar ``JobRecord`` fields, in declaration order, used by the
#: columnar pickle format (``usage`` is flattened separately).
_RECORD_SCALARS = (
    "job_id",
    "queue",
    "arrival",
    "length",
    "cpus",
    "first_start",
    "finish",
    "carbon_g",
    "energy_kwh",
    "usage_cost",
    "baseline_carbon_g",
    "evictions",
    "lost_cpu_minutes",
    "checkpoint_overhead_minutes",
    "provisioning_cpu_minutes",
)


@dataclass(frozen=True)
class UsageInterval:
    """One contiguous stretch of execution on one purchase option."""

    start: int
    end: int
    cpus: int
    option: PurchaseOption

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SimulationError(f"empty usage interval [{self.start}, {self.end})")

    @classmethod
    def _from_validated(
        cls, start: int, end: int, cpus: int, option: PurchaseOption
    ) -> "UsageInterval":
        """Engine-internal fast constructor.

        Skips dataclass ``__init__``/``__post_init__``; callers must
        already hold the non-empty-interval invariant (e.g. ``end ==
        start + job.length`` with the job's validated positive length).
        """
        interval = cls.__new__(cls)
        object.__setattr__(
            interval,
            "__dict__",
            {"start": start, "end": end, "cpus": cpus, "option": option},
        )
        return interval

    @property
    def cpu_minutes(self) -> float:
        """CPU-minutes metered by this interval (duration times width)."""
        return float((self.end - self.start) * self.cpus)


@dataclass(frozen=True)
class JobRecord:
    """Everything accounted for one completed job.

    ``waiting`` generalizes "start minus arrival" to suspend-resume and
    evicted executions: it is the completion time minus the job's pure
    length, i.e. all time the user lost to delays, pauses, and redone
    work.
    """

    job_id: int
    queue: str
    arrival: int
    length: int
    cpus: int
    first_start: int
    finish: int
    carbon_g: float
    energy_kwh: float
    usage_cost: float
    baseline_carbon_g: float
    usage: tuple[UsageInterval, ...]
    evictions: int = 0
    lost_cpu_minutes: float = 0.0
    checkpoint_overhead_minutes: float = 0.0
    provisioning_cpu_minutes: float = 0.0

    def __post_init__(self) -> None:
        if self.first_start < self.arrival:
            raise SimulationError(f"job {self.job_id} started before arrival")
        if self.finish < self.first_start + self.length:
            raise SimulationError(f"job {self.job_id} finished implausibly early")

    @classmethod
    def _from_validated(cls, fields: dict) -> "JobRecord":
        """Engine-internal fast constructor from a complete field dict.

        Skips dataclass ``__init__``/``__post_init__``; the engine checks
        the record invariants vectorized across all runs before assembly
        (and falls back to the validating constructor to raise the exact
        per-job error when one fails).
        """
        record = cls.__new__(cls)
        object.__setattr__(record, "__dict__", fields)
        return record

    @property
    def completion_time(self) -> int:
        """Minutes from submission to completion."""
        return self.finish - self.arrival

    @property
    def waiting_time(self) -> int:
        """Completion time in excess of the job's pure execution length."""
        return self.completion_time - self.length

    @property
    def carbon_saving_g(self) -> float:
        """Carbon saved relative to running on arrival (may be negative)."""
        return self.baseline_carbon_g - self.carbon_g

    @property
    def options_used(self) -> tuple[PurchaseOption, ...]:
        """Distinct purchase options, in first-use order."""
        seen: list[PurchaseOption] = []
        for interval in self.usage:
            if interval.option not in seen:
                seen.append(interval.option)
        return tuple(seen)


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run.

    ``metrics`` is the engine's observability snapshot (see
    :mod:`repro.obs.metrics`): counters/gauges/histograms describing how
    the run executed (decisions, memo hits, evictions, waiting
    distribution).  It is *diagnostic* state -- excluded from equality
    comparisons and from :meth:`digest`, which cover only the simulated
    outcome.
    """

    policy_name: str
    workload_name: str
    region: str
    reserved_cpus: int
    horizon: int
    pricing: PricingModel
    records: tuple[JobRecord, ...] = field(default_factory=tuple)
    metrics: dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Pickling (columnar)
    # ------------------------------------------------------------------
    # A result is mostly its records, and default dataclass pickling
    # writes one ``__dict__`` per record and per usage interval -- the
    # dominant cost of shipping results out of sweep worker processes
    # and through the on-disk cache.  Transposing the records into
    # per-field columns (with usage intervals flattened alongside) cuts
    # both the byte size and the round-trip time roughly in half while
    # round-tripping to an equal object, digest included.
    def __getstate__(self) -> dict:
        base = dict(self.__dict__)
        base["records"] = None
        columns = tuple(
            [getattr(record, name) for record in self.records]
            for name in _RECORD_SCALARS
        )
        counts = [len(record.usage) for record in self.records]
        intervals = [interval for record in self.records for interval in record.usage]
        usage_columns = (
            [interval.start for interval in intervals],
            [interval.end for interval in intervals],
            [interval.cpus for interval in intervals],
            [interval.option.value for interval in intervals],
        )
        return {"base": base, "columns": columns, "counts": counts,
                "usage_columns": usage_columns,
                "records_are_tuple": isinstance(self.records, tuple)}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state["base"])
        options = {option.value: option for option in PurchaseOption}
        new_interval = UsageInterval.__new__
        new_record = JobRecord.__new__
        set_attr = object.__setattr__
        intervals = []
        for start, end, cpus, option_value in zip(*state["usage_columns"]):
            interval = new_interval(UsageInterval)
            set_attr(
                interval,
                "__dict__",
                {
                    "start": start,
                    "end": end,
                    "cpus": cpus,
                    "option": options[option_value],
                },
            )
            intervals.append(interval)
        records = []
        position = 0
        for row in zip(*state["columns"], state["counts"]):
            count = row[-1]
            fields = dict(zip(_RECORD_SCALARS, row[:-1]))
            fields["usage"] = tuple(intervals[position : position + count])
            position += count
            record = new_record(JobRecord)
            set_attr(record, "__dict__", fields)
            records.append(record)
        self.__dict__["records"] = (
            tuple(records) if state["records_are_tuple"] else records
        )

    # ------------------------------------------------------------------
    # Carbon and energy
    # ------------------------------------------------------------------
    @property
    def total_carbon_g(self) -> float:
        """Emissions of all jobs, in grams of CO2-equivalent."""
        return float(sum(record.carbon_g for record in self.records))

    @property
    def total_carbon_kg(self) -> float:
        """Emissions of all jobs, in kilograms of CO2-equivalent."""
        return grams_to_kg(self.total_carbon_g)

    @property
    def baseline_carbon_g(self) -> float:
        """Footprint had every job run on arrival (the NoWait schedule)."""
        return float(sum(record.baseline_carbon_g for record in self.records))

    @property
    def total_energy_kwh(self) -> float:
        """Energy drawn by all jobs, in kilowatt-hours."""
        return float(sum(record.energy_kwh for record in self.records))

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    @property
    def reserved_upfront_cost(self) -> float:
        """Upfront payment for the reserved pool over the whole horizon."""
        return self.pricing.reserved_upfront(self.reserved_cpus, self.horizon)

    @property
    def metered_cost(self) -> float:
        """Pay-as-you-go cost of on-demand and spot usage."""
        return float(sum(record.usage_cost for record in self.records))

    @property
    def carbon_tax_cost(self) -> float:
        """Cost of emissions under the pricing model's carbon price."""
        return self.pricing.carbon_price_per_kg * self.total_carbon_kg

    @property
    def total_cost(self) -> float:
        """Full bill in USD: reserved upfront + metered usage + carbon tax."""
        return self.reserved_upfront_cost + self.metered_cost + self.carbon_tax_cost

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------
    @property
    def mean_waiting_minutes(self) -> float:
        """Mean per-job waiting time (delay beyond pure length), minutes.

        0 for a zero-job result (never a NaN or a numpy warning).
        """
        if not self.records:
            return 0.0
        return float(np.mean([record.waiting_time for record in self.records]))

    @property
    def mean_waiting_hours(self) -> float:
        """Mean per-job waiting time, in hours."""
        return self.mean_waiting_minutes / MINUTES_PER_HOUR

    @property
    def total_waiting_hours(self) -> float:
        """Summed waiting time across all jobs, in hours."""
        return float(sum(r.waiting_time for r in self.records)) / MINUTES_PER_HOUR

    @property
    def mean_completion_hours(self) -> float:
        """Mean submission-to-completion time per job, in hours (0 if no jobs)."""
        if not self.records:
            return 0.0
        return (
            float(np.mean([record.completion_time for record in self.records]))
            / MINUTES_PER_HOUR
        )

    def waiting_percentiles(self, percentiles=(50, 90, 95, 99)) -> dict[int, float]:
        """Waiting-time percentiles in hours (tail latency of the queue)."""
        if not self.records:
            return {int(p): 0.0 for p in percentiles}
        waits = np.array([record.waiting_time for record in self.records], dtype=float)
        return {
            int(p): float(np.percentile(waits, p)) / MINUTES_PER_HOUR
            for p in percentiles
        }

    def by_queue(self) -> dict[str, dict[str, float]]:
        """Per-queue breakdown: job count, carbon, mean/95p waiting."""
        groups: dict[str, list[JobRecord]] = {}
        for record in self.records:
            groups.setdefault(record.queue, []).append(record)
        breakdown = {}
        for queue, records in sorted(groups.items()):
            waits = np.array([r.waiting_time for r in records], dtype=float)
            breakdown[queue] = {
                "jobs": float(len(records)),
                "carbon_kg": grams_to_kg(sum(r.carbon_g for r in records)),
                "mean_wait_h": float(waits.mean()) / MINUTES_PER_HOUR,
                "p95_wait_h": float(np.percentile(waits, 95)) / MINUTES_PER_HOUR,
                "cpu_hours": float(
                    sum(r.length * r.cpus for r in records) / MINUTES_PER_HOUR
                ),
            }
        return breakdown

    # ------------------------------------------------------------------
    # Utilization and spot
    # ------------------------------------------------------------------
    def cpu_minutes_by_option(self) -> dict[PurchaseOption, float]:
        """CPU-minutes of realized usage per purchase option (all keys present)."""
        totals = {option: 0.0 for option in PurchaseOption}
        for record in self.records:
            for interval in record.usage:
                totals[interval.option] += interval.cpu_minutes
        return totals

    @property
    def reserved_utilization(self) -> float:
        """Busy fraction of the pre-paid reserved pool over the horizon.

        Usage past the nominal horizon (jobs still draining) is clipped so
        utilization stays in [0, 1].
        """
        if self.reserved_cpus == 0 or self.horizon == 0:
            return 0.0
        busy = 0.0
        for record in self.records:
            for interval in record.usage:
                if interval.option is not PurchaseOption.RESERVED:
                    continue
                end = min(interval.end, self.horizon)
                if end > interval.start:
                    busy += (end - interval.start) * interval.cpus
        return busy / (self.reserved_cpus * self.horizon)

    @property
    def total_evictions(self) -> int:
        """Total spot revocations suffered across all jobs."""
        return sum(record.evictions for record in self.records)

    @property
    def lost_cpu_hours(self) -> float:
        """CPU-hours of progress redone because of evictions."""
        return (
            float(sum(record.lost_cpu_minutes for record in self.records))
            / MINUTES_PER_HOUR
        )

    @property
    def provisioning_cpu_hours(self) -> float:
        """CPU-hours spent booting elastic instances (0 unless enabled)."""
        return (
            float(sum(r.provisioning_cpu_minutes for r in self.records))
            / MINUTES_PER_HOUR
        )

    @property
    def checkpoint_overhead_cpu_hours(self) -> float:
        """CPU-hours spent writing checkpoints (0 unless enabled)."""
        return (
            float(sum(r.checkpoint_overhead_minutes for r in self.records))
            / MINUTES_PER_HOUR
        )

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def carbon_savings_vs(self, baseline: "SimulationResult") -> float:
        """Fractional carbon saving relative to another run (1 = all)."""
        base = baseline.total_carbon_g
        if base <= 0:
            raise SimulationError("baseline carbon must be positive")
        return 1.0 - self.total_carbon_g / base

    def cost_increase_vs(self, baseline: "SimulationResult") -> float:
        """Fractional cost increase relative to another run."""
        base = baseline.total_cost
        if base <= 0:
            raise SimulationError("baseline cost must be positive")
        return self.total_cost / base - 1.0

    def digest(self) -> str:
        """Hex digest of the full result, for determinism regression tests.

        Two runs of the same scenario with the same seeds must produce
        bit-identical digests (the runtime complement of lint rule
        SIM001): the hash covers every per-job record field, every usage
        interval, and the run's identifying configuration.  Float fields
        are hashed via ``repr`` (exact shortest-roundtrip form), so any
        drift -- reordered accumulation, a different RNG draw -- changes
        the digest.
        """
        hasher = hashlib.sha256()
        hasher.update(
            f"{self.policy_name}|{self.workload_name}|{self.region}|"
            f"{self.reserved_cpus}|{self.horizon}".encode()
        )
        for record in self.records:
            hasher.update(
                f"{record.job_id}|{record.queue}|{record.arrival}|"
                f"{record.length}|{record.cpus}|{record.first_start}|"
                f"{record.finish}|{record.carbon_g!r}|{record.energy_kwh!r}|"
                f"{record.usage_cost!r}|{record.baseline_carbon_g!r}|"
                f"{record.evictions}|{record.lost_cpu_minutes!r}|"
                f"{record.checkpoint_overhead_minutes!r}|"
                f"{record.provisioning_cpu_minutes!r}".encode()
            )
            for interval in record.usage:
                hasher.update(
                    f"{interval.start}|{interval.end}|{interval.cpus}|"
                    f"{interval.option.value}".encode()
                )
        return hasher.hexdigest()

    def summary(self) -> dict[str, float | str]:
        """Flat summary used by reports and benchmarks."""
        return {
            "policy": self.policy_name,
            "workload": self.workload_name,
            "region": self.region,
            "reserved_cpus": self.reserved_cpus,
            "carbon_kg": self.total_carbon_kg,
            "cost_usd": self.total_cost,
            "metered_usd": self.metered_cost,
            "reserved_usd": self.reserved_upfront_cost,
            "mean_wait_h": self.mean_waiting_hours,
            "mean_completion_h": self.mean_completion_hours,
            "reserved_utilization": self.reserved_utilization,
            "evictions": float(self.total_evictions),
            "lost_cpu_h": self.lost_cpu_hours,
        }


def demand_profile(
    records: Iterable[JobRecord],
    horizon: int,
    option: PurchaseOption | None = None,
) -> np.ndarray:
    """Per-minute CPU demand realized by a set of job records.

    ``option`` restricts the profile to one purchase option; ``None``
    aggregates all.  Usage past the horizon is clipped.
    """
    delta = np.zeros(horizon + 1, dtype=np.float64)
    for record in records:
        for interval in record.usage:
            if option is not None and interval.option is not option:
                continue
            start = min(interval.start, horizon)
            end = min(interval.end, horizon)
            if end <= start:
                continue
            delta[start] += interval.cpus
            delta[end] -= interval.cpus
    return np.cumsum(delta[:-1])
