"""Incremental stepping of one engine run: the online scheduling API.

An :class:`EngineSession` exposes the engine's event loop one arrival at
a time instead of replaying a whole trace.  It is the substrate of the
always-on scheduler service (:mod:`repro.service`) and the proof
obligation behind it: a session fed a workload's jobs in trace order
produces a :meth:`~repro.simulator.results.SimulationResult.digest`
bit-identical to the batch :meth:`Engine.run` -- the batch path *is*
``open()`` + :meth:`replay` + :meth:`drain` (see ``Engine.run``).

Why the ordering is exact
-------------------------

The batch engine pops events in ``(time, kind, seq)`` order where
arrivals carry kind ``ARRIVAL`` and dynamic events (finish, evict,
start) never do.  An arrival therefore never ties with a dynamic event
on ``(time, kind)``, so interleaving a *stream* of time-ordered arrivals
against the dynamic-event heap -- pop every heap event whose
``(time, kind)`` sorts before ``(arrival, ARRIVAL)``, then handle the
arrival -- reproduces the batch pop order exactly, without knowing the
number of arrivals up front.  Sequence numbers only break ties *within*
one stream, and both streams preserve their internal order.

Clock semantics
---------------

``submit(job)`` advances the session clock (:attr:`now`) to the job's
arrival minute; ``advance_to(t)`` asserts that no arrival before ``t``
is coming, letting finishes and evictions up to ``t`` fire.  Both leave
``START`` events *at* the boundary minute pending, because an arrival at
that same minute must be handled first (kind order: finish < evict <
arrival < start).  ``drain()`` runs the loop dry and builds the result.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.simulator.engine import _EventKind
from repro.simulator.results import SimulationResult
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simulator.engine import Engine, _RunState

__all__ = ["EngineSession"]

#: Arrival kind as a plain int, compared against heap keys in the loops.
_ARRIVAL = int(_EventKind.ARRIVAL)


class EngineSession:
    """One engine run, advanced arrival-by-arrival.

    Created by :meth:`Engine.open`; never constructed directly.  The
    session owns the engine's event loop from open to drain: callers
    feed time-ordered arrivals with :meth:`submit` (or batches with
    :meth:`replay`), optionally let simulated time pass with
    :meth:`advance_to`, and finish with :meth:`drain`, which returns the
    same :class:`SimulationResult` a batch run would.
    """

    __slots__ = ("_engine", "_handlers", "_watermark", "_submitted", "_result")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._handlers = (
            engine._on_finish,
            engine._on_evict,
            engine._on_arrival,
            engine._on_start,
        )
        self._watermark = 0
        self._submitted = 0
        self._result: SimulationResult | None = None

    # ------------------------------------------------------------------
    # Read-only state
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """The session clock: no arrival before this minute may be submitted."""
        return self._watermark

    @property
    def jobs_submitted(self) -> int:
        """Arrivals fed into the engine so far."""
        return self._submitted

    @property
    def drained(self) -> bool:
        """Whether :meth:`drain` has run (the session is finished)."""
        return self._result is not None

    @property
    def pending_events(self) -> int:
        """Dynamic events (finishes, evictions, starts) not yet processed."""
        return len(self._engine._heap)

    @property
    def runs(self) -> "Sequence[_RunState]":
        """Engine-internal run states, one per submitted job (read-only)."""
        return self._engine._runs

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._result is not None:
            raise SimulationError("session already drained; open a new engine")

    def _advance_before(self, minute: int) -> None:
        """Process every dynamic event ordered before an arrival at ``minute``."""
        engine = self._engine
        heap = engine._heap
        injector = engine._fault_injector
        handlers = self._handlers
        while heap and (heap[0][0], heap[0][1]) < (minute, _ARRIVAL):
            time, kind, _, payload = heapq.heappop(heap)
            if injector is not None and 0 <= injector.next_time <= time:
                injector.fire(engine, time)
            handlers[kind](time, payload)

    def submit(self, job: Job) -> "_RunState":
        """Feed one arrival; returns the job's engine-internal run state.

        The arrival must be at or after :attr:`now` (submissions are
        time-ordered; ties are processed in submission order, matching
        the trace's canonical (arrival, job_id) sort when replaying).
        The returned ``_RunState`` is live engine state -- callers may
        *read* it (``started`` / ``finished`` / ``finish`` / ``usage``)
        to observe the job's progress, never mutate it.
        """
        self._require_open()
        if job.arrival < self._watermark:
            raise SimulationError(
                f"job {job.job_id} arrives at minute {job.arrival}, before the "
                f"session clock {self._watermark}; submissions must be time-ordered"
            )
        engine = self._engine
        self._advance_before(job.arrival)
        injector = engine._fault_injector
        if injector is not None and 0 <= injector.next_time <= job.arrival:
            injector.fire(engine, job.arrival)
        self._watermark = job.arrival
        run_index = len(engine._runs)
        engine._on_arrival(job.arrival, job)
        self._submitted += 1
        return engine._runs[run_index]

    def replay(self, jobs: Sequence[Job]) -> None:
        """Submit a time-ordered batch of arrivals through the merged loop.

        Equivalent to ``for job in jobs: self.submit(job)`` but with the
        per-submission overhead hoisted out of the loop -- this is the
        batch ``Engine.run`` hot path.  Same-minute cohorts drain
        back-to-back through the fast branch without re-checking the
        heap shape between them.
        """
        self._require_open()
        engine = self._engine
        heap = engine._heap
        injector = engine._fault_injector
        handlers = self._handlers
        on_arrival = engine._on_arrival
        watermark = self._watermark
        num_jobs = len(jobs)
        index = 0
        while True:
            if index < num_jobs:
                job = jobs[index]
                arrival = job.arrival
                # Kinds never tie (dynamic events are never ARRIVAL), so
                # the 2-tuple comparison fully decides the merge order.
                if not heap or (arrival, _ARRIVAL) < (heap[0][0], heap[0][1]):
                    if arrival < watermark:
                        raise SimulationError(
                            f"job {job.job_id} arrives at minute {arrival}, "
                            f"before the session clock {watermark}; "
                            "submissions must be time-ordered"
                        )
                    if injector is not None and 0 <= injector.next_time <= arrival:
                        injector.fire(engine, arrival)
                    watermark = arrival
                    index += 1
                    on_arrival(arrival, job)
                    continue
            if not heap or index >= num_jobs:
                break
            time, kind, _, payload = heapq.heappop(heap)
            if injector is not None and 0 <= injector.next_time <= time:
                injector.fire(engine, time)
            handlers[kind](time, payload)
        self._watermark = watermark
        self._submitted += num_jobs

    def advance_to(self, minute: int) -> None:
        """Let simulated time pass: assert no arrival before ``minute``.

        Processes every finish/eviction/start ordered before a
        hypothetical arrival at ``minute`` and moves :attr:`now` there.
        Advancing backwards is an error; advancing to :attr:`now` is a
        no-op.
        """
        self._require_open()
        if minute < self._watermark:
            raise SimulationError(
                f"cannot advance to minute {minute}: session clock already at "
                f"{self._watermark}"
            )
        self._advance_before(minute)
        self._watermark = minute

    def drain(self) -> SimulationResult:
        """Run the event loop dry and build the result (idempotent).

        After drain the session is closed: further submissions raise,
        and repeated calls return the same result object.
        """
        if self._result is not None:
            return self._result
        engine = self._engine
        heap = engine._heap
        injector = engine._fault_injector
        handlers = self._handlers
        watermark = self._watermark
        while heap:
            time, kind, _, payload = heapq.heappop(heap)
            if injector is not None and 0 <= injector.next_time <= time:
                injector.fire(engine, time)
            handlers[kind](time, payload)
            if time > watermark:
                watermark = time
        self._watermark = watermark
        self._result = engine._finish_run()
        return self._result

    @property
    def result(self) -> SimulationResult:
        """The drained result; raises if :meth:`drain` has not run yet."""
        if self._result is None:
            raise SimulationError("session not drained yet")
        return self._result
