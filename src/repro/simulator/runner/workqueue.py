"""File-based work-queue backend: independent workers claiming specs.

The ``workqueue`` :class:`~repro.simulator.runner.backends.SweepBackend`
runs attempts in long-lived worker *processes* that coordinate through
a spool directory instead of an executor protocol:

* the parent submits an attempt by atomically writing a pickled
  ``(token, spec)`` file into ``todo/``;
* each worker claims work by ``os.rename``-ing a todo file into
  ``claimed/<token>.<pid>.pkl`` -- rename is atomic on POSIX, so
  exactly one worker wins a spec and the claim file doubles as the
  crash ledger (a dead pid's claims name exactly the specs it was
  running);
* outcomes come back as atomically-written ``done/<token>.pkl`` files
  which the parent drains on :meth:`WorkQueueBackend.poll`.

When the promoted disk :class:`~repro.simulator.runner.cache.ResultCache`
is active, workers use it as a *cross-worker store*: before executing a
spec they take a per-key lock file (``<key>.lock`` created with
``O_CREAT | O_EXCL``) so concurrent sweeps sharing one
``$REPRO_CACHE_DIR`` never execute the same spec twice -- the loser
waits and reads the winner's atomically-published entry.  Lock holders
that die are detected by pid liveness and the lock is stolen, so a
killed worker never wedges the queue.

Recovery maps onto the same accounting as the ``pool`` backend: a dead
worker's claimed spec surfaces as a
:class:`~repro.simulator.runner.backends.WorkerCrash` outcome and the
worker is replaced (one ``pool_respawned`` event per replacement);
:meth:`WorkQueueBackend.cancel` terminates the exact worker holding an
expired claim, which the dispatch loop charges as a timeout.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path

from repro.obs.events import PoolRespawned
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.runner.backends import (
    AttemptOutcome,
    BackendContext,
    SweepBackend,
    WorkerCrash,
    _execute_timed,
    register_backend,
)
from repro.simulator.runner.cache import ResultCache
from repro.simulator.runner.spec import SimulationSpec

__all__ = ["WorkQueueBackend"]

#: Seconds an idle worker sleeps between todo-directory scans.
_WORKER_IDLE_SECONDS = 0.01
#: Seconds a worker waiting on another worker's cache lock sleeps
#: between liveness/result checks.
_LOCK_WAIT_SECONDS = 0.02
#: A lock file whose holder pid cannot be read is considered abandoned
#: after this many seconds (clock-skew-safe fallback to pid liveness).
_LOCK_STALE_SECONDS = 30.0
#: Seconds the parent sleeps between poll scans of the done directory.
_POLL_IDLE_SECONDS = 0.005


def _atomic_write(directory: Path, name: str, payload: bytes) -> None:
    """Publish ``payload`` at ``directory/name`` via tempfile + rename.

    Readers either see the complete file or no file -- never a torn
    write -- which is what makes the spool directories and the shared
    cache safe under concurrent workers and SIGKILL.
    """
    handle, staging_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(staging_path, directory / name)
    except OSError:
        if os.path.exists(staging_path):
            os.unlink(staging_path)
        raise


def _read_pickle(path: Path):
    """Load a pickle, returning ``None`` on any corruption or race.

    Spool files are published atomically, so corruption here means an
    unrelated writer or a stale entry -- both are treated as absent, in
    the same spirit as the cache's corruption-tolerant reads.
    """
    try:
        with open(path, "rb") as stream:
            return pickle.load(stream)
    except (
        OSError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        ValueError,
        IndexError,
    ):
        return None


def _pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` exists (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _try_lock(lock_path: Path, pid: int) -> bool:
    """Try to create the per-key execution lock; False if held."""
    try:
        handle = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(handle, "w") as stream:
        stream.write(str(pid))
    return True


def _steal_if_dead(lock_path: Path) -> None:
    """Remove a lock whose holder is gone (dead pid or stale file)."""
    try:
        raw = lock_path.read_text()
    except OSError:
        return  # released (or being rewritten) meanwhile
    try:
        holder = int(raw)
    except ValueError:
        holder = None
    if holder is not None and _pid_alive(holder):
        return
    if holder is None:
        # Unreadable holder: only reclaim clearly-abandoned locks.
        try:
            # Wall-clock read is deliberate: file mtimes are epoch
            # timestamps, so staleness needs time.time(), and lock
            # lifetimes never influence simulation results.
            age = time.time() - lock_path.stat().st_mtime  # simlint: disable=SIM001
        except OSError:
            return
        if age < _LOCK_STALE_SECONDS:
            return
    try:
        lock_path.unlink()
    except OSError:
        pass  # someone else stole it first


def _run_shared(
    spec: SimulationSpec, cache: ResultCache | None
):
    """Execute one spec through the shared-cache coordination protocol.

    Without a cache this is a plain timed execution.  With one, the
    per-key lock guarantees that across every worker of every sweep
    sharing the disk directory, each distinct spec executes at most
    once; everyone else blocks briefly and reads the published result.
    Returns ``(result, wall_seconds)``.
    """
    if cache is None or cache.disk_dir is None:
        return _execute_timed(spec)
    key = cache.key_for(spec)
    found = cache.get(key)
    if found is not None:
        return found, 0.0
    cache.disk_dir.mkdir(parents=True, exist_ok=True)
    lock_path = cache.disk_dir / f"{key}.lock"
    while not _try_lock(lock_path, os.getpid()):
        found = cache.get(key)
        if found is not None:
            return found, 0.0
        _steal_if_dead(lock_path)
        time.sleep(_LOCK_WAIT_SECONDS)
    try:
        found = cache.get(key)  # published while we raced for the lock
        if found is not None:
            return found, 0.0
        result, wall_seconds = _execute_timed(spec)
        cache.put(key, result)
        return result, wall_seconds
    finally:
        try:
            lock_path.unlink()
        except OSError:
            pass  # stolen by a waiter that saw this pid die


def _worker_main(root: str, cache_dir: str | None) -> None:
    """Worker-process loop: claim, execute, publish, repeat.

    Runs until the ``stop`` flag file appears.  Every step communicates
    through atomic renames/replaces only, so the parent can SIGKILL the
    worker at any instant without corrupting the spool.
    """
    spool = Path(root)
    todo = spool / "todo"
    claimed = spool / "claimed"
    done = spool / "done"
    stop_flag = spool / "stop"
    pid = os.getpid()
    cache = ResultCache(disk_dir=cache_dir) if cache_dir else None
    while not stop_flag.exists():
        claim_path = None
        for entry in sorted(todo.glob("*.pkl")):
            candidate = claimed / f"{entry.stem}.{pid}.pkl"
            try:
                os.rename(entry, candidate)
            except OSError:
                continue  # another worker won the claim
            claim_path = candidate
            break
        if claim_path is None:
            time.sleep(_WORKER_IDLE_SECONDS)
            continue
        item = _read_pickle(claim_path)
        if item is None:
            claim_path.unlink(missing_ok=True)
            continue
        token, spec = item
        try:
            result, wall_seconds = _run_shared(spec, cache)
        except Exception as error:  # noqa: BLE001 -- reported, never silent
            try:
                payload = pickle.dumps((token, None, error, 0.0))
            except Exception:  # noqa: BLE001 -- unpicklable exception
                payload = pickle.dumps(
                    (token, None, RuntimeError(f"{type(error).__name__}: {error}"), 0.0)
                )
            _atomic_write(done, f"{token}.pkl", payload)
        else:
            _atomic_write(
                done,
                f"{token}.pkl",
                pickle.dumps((token, result, None, wall_seconds)),
            )
        # Publish-then-release: the outcome exists before the claim
        # disappears, so a crash between the two reports at most once.
        claim_path.unlink(missing_ok=True)


@register_backend
class WorkQueueBackend(SweepBackend):
    """Multi-process file-based work queue (see module docstring)."""

    name = "workqueue"
    supports_timeout = True

    def __init__(self) -> None:
        super().__init__()
        self._root: Path | None = None
        self._workers: dict[int, multiprocessing.Process] = {}
        self._inflight: set[int] = set()
        self._worker_count = 1
        self._cache_dir: str | None = None
        self._tracer: Tracer = NULL_TRACER

    def open(self, context: BackendContext) -> None:
        """Create the spool directory and start the worker processes."""
        self._worker_count = context.workers
        self._cache_dir = context.cache_dir
        self._tracer = context.tracer
        self._root = Path(tempfile.mkdtemp(prefix="repro-workqueue-"))
        for name in ("todo", "claimed", "done"):
            (self._root / name).mkdir()
        for _ in range(self._worker_count):
            self._spawn_worker()

    def capacity(self) -> int | None:
        """Free worker slots: submissions are windowed like the pool."""
        return max(0, self._worker_count - len(self._inflight))

    def submit(self, token: int, spec: SimulationSpec) -> None:
        """Publish one attempt into ``todo/`` for any worker to claim."""
        assert self._root is not None
        _atomic_write(
            self._root / "todo", f"{token}.pkl", pickle.dumps((token, spec))
        )
        self._inflight.add(token)

    def poll(self, timeout: float | None) -> list[AttemptOutcome]:
        """Drain published outcomes; reap dead workers along the way."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            outcomes = self._drain_done()
            outcomes.extend(self._reap_dead_workers())
            if outcomes:
                return outcomes
            if not self._inflight:
                return []
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(_POLL_IDLE_SECONDS)

    def cancel(self, tokens: set[int]) -> set[int]:
        """Abandon expired attempts by terminating their exact workers.

        Unlike the pool, claims map each in-flight token to one worker
        pid, so only the hung worker is killed and replaced -- other
        attempts keep running undisturbed.
        """
        assert self._root is not None
        confirmed: set[int] = set()
        for token in tokens:
            if (self._root / "done" / f"{token}.pkl").exists():
                continue  # finished meanwhile: real outcome next poll
            todo_path = self._root / "todo" / f"{token}.pkl"
            try:
                os.rename(todo_path, self._root / f"cancelled-{token}.pkl")
            except OSError:
                pass  # already claimed (the common case for an expiry)
            else:
                self._inflight.discard(token)
                confirmed.add(token)
                continue
            claim = self._claim_for(token)
            if claim is None:
                continue  # between publish and release: outcome imminent
            _claim_token, pid, claim_path = claim
            self._terminate_worker(pid)
            claim_path.unlink(missing_ok=True)
            self._inflight.discard(token)
            confirmed.add(token)
            self.respawns += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    PoolRespawned(reason="timeout", respawns=self.respawns)
                )
            self._spawn_worker()
        return confirmed

    def shutdown(self) -> None:
        """Stop the workers and remove the spool directory."""
        if self._root is None:
            return
        (self._root / "stop").touch()
        for process in self._workers.values():
            process.terminate()
        for process in self._workers.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        self._workers.clear()
        self._inflight.clear()
        shutil.rmtree(self._root, ignore_errors=True)
        self._root = None

    # -- internals -----------------------------------------------------
    def _spawn_worker(self) -> None:
        """Start one worker process on the spool."""
        assert self._root is not None
        process = multiprocessing.Process(
            target=_worker_main,
            args=(str(self._root), self._cache_dir),
            daemon=True,
        )
        process.start()
        assert process.pid is not None
        self._workers[process.pid] = process

    def _terminate_worker(self, pid: int) -> None:
        """Terminate and discard one worker by pid (kill as fallback)."""
        process = self._workers.pop(pid, None)
        if process is None:
            return
        process.terminate()
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def _claim_for(self, token: int) -> tuple[int, int, Path] | None:
        """The ``(token, pid, path)`` of a token's claim file, if any."""
        assert self._root is not None
        for claim_path in (self._root / "claimed").glob(f"{token}.*.pkl"):
            claim_token, pid = _parse_claim_name(claim_path)
            if claim_token == token and pid is not None:
                return token, pid, claim_path
        return None

    def _drain_done(self) -> list[AttemptOutcome]:
        """Collect every published outcome, unlinking as we go."""
        assert self._root is not None
        outcomes: list[AttemptOutcome] = []
        for path in sorted((self._root / "done").glob("*.pkl")):
            payload = _read_pickle(path)
            path.unlink(missing_ok=True)
            if payload is None:
                continue  # corrupt/foreign file: drop it
            token, result, error, wall_seconds = payload
            if token not in self._inflight:
                continue  # stale outcome for an already-settled token
            self._inflight.discard(token)
            if error is not None:
                outcomes.append(AttemptOutcome(token=token, error=error))
            else:
                outcomes.append(
                    AttemptOutcome(token=token, result=result, wall_seconds=wall_seconds)
                )
        return outcomes

    def _reap_dead_workers(self) -> list[AttemptOutcome]:
        """Replace dead workers; charge their claimed specs as crashes.

        A claim left by a dead pid names exactly the spec it was running
        -- no ambiguity, so no solo isolation is needed: the spec is
        charged a :class:`WorkerCrash` directly (retryable as usual).
        """
        assert self._root is not None
        dead = [pid for pid, process in self._workers.items() if not process.is_alive()]
        outcomes: list[AttemptOutcome] = []
        for pid in dead:
            process = self._workers.pop(pid)
            process.join(timeout=1.0)
            for claim_path in (self._root / "claimed").glob(f"*.{pid}.pkl"):
                token, _pid = _parse_claim_name(claim_path)
                claim_path.unlink(missing_ok=True)
                if token is None or token not in self._inflight:
                    continue
                if (self._root / "done" / f"{token}.pkl").exists():
                    continue  # died after publishing: real outcome pending
                self._inflight.discard(token)
                outcomes.append(
                    AttemptOutcome(
                        token=token, error=WorkerCrash("workqueue worker died")
                    )
                )
            self.respawns += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    PoolRespawned(reason="broken", respawns=self.respawns)
                )
            self._spawn_worker()
        return outcomes


def _parse_claim_name(claim_path: Path) -> tuple[int | None, int | None]:
    """Split ``claimed/<token>.<pid>.pkl`` into its integer parts."""
    parts = claim_path.name.split(".")
    if len(parts) != 3:
        return None, None
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        return None, None
