"""Journaled, resumable sweep campaigns.

A :class:`Campaign` persists a sweep to a directory so an interrupted
run -- crash, SIGKILL, preempted host -- resumes with zero re-executions
of completed work:

* ``campaign.json`` -- manifest (name, spec counts);
* ``specs.pkl`` -- the full spec list, pickled once at creation (the
  pickle memo keeps specs sharing a workload payload small);
* ``journal.jsonl`` -- append-only completion journal.  Every line is a
  self-contained JSON record keyed by the spec *digest*; completions
  are appended (and flushed) the moment a result lands, via
  ``run_many``'s streaming ``on_result`` hook, so the journal is
  crash-consistent at line granularity.  Corrupt lines (a torn final
  line after SIGKILL) are skipped on read;
* ``results/<digest>.pkl`` -- one atomically-written pickle per
  completed distinct digest, published *before* its journal line so a
  journaled completion always has a readable result.  Digest-keyed, so
  entries survive across processes and code-version salt changes never
  orphan them silently (an unreadable or missing file simply demotes
  the digest back to pending).

Resume = load the spec list, replay the journal, and hand only the
still-incomplete distinct digests to :func:`run_many` -- on any
registered backend.  The PR 4 recovery semantics (retries, timeouts,
partial results, :class:`~repro.errors.SweepError`) apply unchanged
because the campaign layer sits entirely above the backend seam.  A
``campaign.lock`` file (``flock``) makes concurrent runs of the same
directory a :class:`~repro.errors.CampaignError` instead of a journal
race.  ``docs/sweeps.md`` documents the journal format and the CLI
(``python -m repro.simulator.runner resume <dir>``).
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CampaignError
from repro.obs.events import CampaignCompleted, CampaignCreated, CampaignResumed
from repro.obs.tracer import Tracer, tracer_from_env
from repro.simulator.results import SimulationResult
from repro.simulator.runner.cache import ResultCache
from repro.simulator.runner.execute import RunStats, SpecFailure, run_many
from repro.simulator.runner.spec import SimulationSpec

__all__ = ["Campaign", "CampaignReport"]

_MANIFEST_NAME = "campaign.json"
_SPECS_NAME = "specs.pkl"
_JOURNAL_NAME = "journal.jsonl"
_RESULTS_DIR = "results"
_LOCK_NAME = "campaign.lock"
_MANIFEST_VERSION = 1


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Publish ``payload`` at ``path`` via tempfile + atomic rename."""
    handle, staging_path = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(staging_path, path)
    except OSError:
        if os.path.exists(staging_path):
            os.unlink(staging_path)
        raise


@dataclass
class CampaignReport:
    """The outcome of one :meth:`Campaign.run` invocation.

    ``results`` aligns with the campaign's submitted spec list (``None``
    in slots whose digest is still incomplete); ``failures`` reports
    this run's exhausted specs re-indexed to campaign slots (aliases
    included); ``stats`` is the underlying :class:`RunStats` of the
    ``run_many`` call (executions this run only -- journal-served
    completions appear in neither ``executed`` nor ``cache_hits``).
    ``complete`` is true when every distinct digest has a result.
    """

    results: list[SimulationResult | None]
    stats: RunStats
    failures: list[SpecFailure] = field(default_factory=list)
    complete: bool = False

    def results_digest(self) -> str:
        """Order-sensitive digest of the per-spec result digests.

        The parity oracle for resume testing: an interrupted-then-
        resumed campaign must produce the same value as an uninterrupted
        run.  Incomplete slots contribute a ``"missing"`` sentinel.
        """
        hasher = hashlib.sha256()
        for result in self.results:
            token = result.digest() if result is not None else "missing"
            hasher.update(token.encode())
            hasher.update(b"\n")
        return hasher.hexdigest()


class Campaign:
    """A sweep persisted to a directory with a completion journal."""

    def __init__(self, directory: Path, name: str, specs: list[SimulationSpec]):
        self.directory = directory
        self.name = name
        self.specs = specs
        self._digests = [spec.digest() for spec in specs]
        # Distinct digests in first-occurrence order: the campaign's
        # actual unit of work (aliases ride along, as in run_many).
        self._distinct: list[str] = []
        self._first_index: dict[str, int] = {}
        for index, digest in enumerate(self._digests):
            if digest not in self._first_index:
                self._first_index[digest] = index
                self._distinct.append(digest)

    # -- construction --------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        specs,
        name: str = "campaign",
        tracer: Tracer | None = None,
    ) -> "Campaign":
        """Initialize a campaign directory from a spec list.

        The directory must not already hold a campaign.  Specs are
        pickled once; everything else starts empty.
        """
        directory = Path(directory)
        spec_list = list(specs)
        if not spec_list:
            raise CampaignError("a campaign needs at least one spec")
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / _MANIFEST_NAME).exists():
            raise CampaignError(f"{directory} already holds a campaign")
        campaign = cls(directory, name, spec_list)
        (directory / _RESULTS_DIR).mkdir(exist_ok=True)
        _atomic_write_bytes(
            directory / _SPECS_NAME,
            pickle.dumps(spec_list, protocol=pickle.HIGHEST_PROTOCOL),
        )
        manifest = {
            "version": _MANIFEST_VERSION,
            "name": name,
            "total": len(spec_list),
            "distinct": len(campaign._distinct),
        }
        _atomic_write_bytes(
            directory / _MANIFEST_NAME,
            json.dumps(manifest, indent=2).encode() + b"\n",
        )
        (directory / _JOURNAL_NAME).touch()
        if tracer is None:
            tracer = tracer_from_env()
        if tracer.enabled:
            tracer.emit(
                CampaignCreated(
                    name=name,
                    total=len(spec_list),
                    distinct=len(campaign._distinct),
                )
            )
        return campaign

    @classmethod
    def load(cls, directory: str | Path) -> "Campaign":
        """Open an existing campaign directory."""
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise CampaignError(f"{directory} holds no campaign manifest") from None
        except (OSError, ValueError) as error:
            raise CampaignError(f"unreadable campaign manifest: {error}") from error
        if manifest.get("version") != _MANIFEST_VERSION:
            raise CampaignError(
                f"unsupported campaign manifest version {manifest.get('version')!r}"
            )
        try:
            with open(directory / _SPECS_NAME, "rb") as stream:
                spec_list = pickle.load(stream)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
            raise CampaignError(f"unreadable campaign spec list: {error}") from error
        campaign = cls(directory, str(manifest.get("name", "campaign")), spec_list)
        if len(spec_list) != manifest.get("total"):
            raise CampaignError(
                "campaign spec list disagrees with its manifest "
                f"({len(spec_list)} specs vs total={manifest.get('total')})"
            )
        return campaign

    # -- journal -------------------------------------------------------
    def journaled_completions(self) -> set[str]:
        """Digests the journal marks complete (corruption-tolerant).

        A torn or garbage line (e.g. the final line after a SIGKILL
        mid-append) is skipped; only well-formed ``completed`` records
        count.
        """
        completed: set[str] = set()
        try:
            raw = (self.directory / _JOURNAL_NAME).read_text()
        except OSError:
            return completed
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("event") == "completed":
                digest = record.get("digest")
                if isinstance(digest, str):
                    completed.add(digest)
        return completed

    def _result_path(self, digest: str) -> Path:
        return self.directory / _RESULTS_DIR / f"{digest}.pkl"

    def _load_result(self, digest: str) -> SimulationResult | None:
        """Read one published result; any corruption demotes to pending."""
        try:
            with open(self._result_path(digest), "rb") as stream:
                found = pickle.load(stream)
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            ValueError,
            IndexError,
        ):
            return None
        from repro.simulator.runner.cache import _cacheable_types

        return found if isinstance(found, _cacheable_types()) else None

    def completed_results(self) -> dict[str, SimulationResult]:
        """Journaled completions whose result files load cleanly."""
        loaded: dict[str, SimulationResult] = {}
        for digest in self.journaled_completions():
            if digest not in self._first_index:
                continue  # journal entry for a spec no longer in the list
            result = self._load_result(digest)
            if result is not None:
                loaded[digest] = result
        return loaded

    def status(self) -> dict:
        """A summary of campaign progress (for the CLI and tests)."""
        completed = {
            digest
            for digest in self.journaled_completions()
            if digest in self._first_index
        }
        return {
            "name": self.name,
            "directory": str(self.directory),
            "total": len(self.specs),
            "distinct": len(self._distinct),
            "completed": len(completed),
            "remaining": len(self._distinct) - len(completed),
        }

    # -- execution -----------------------------------------------------
    def run(
        self,
        jobs: int | None = None,
        backend: str | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        stats: RunStats | None = None,
        tracer: Tracer | None = None,
        retries: int | None = None,
        timeout: float | None = None,
        backoff: float = 0.05,
        on_error: str = "raise",
        limit: int | None = None,
    ) -> CampaignReport:
        """Run (or resume) the campaign's incomplete distinct specs.

        Replays the journal, submits one spec per still-incomplete
        distinct digest to :func:`run_many` (all recovery knobs pass
        through), and journals each completion as it streams in.
        ``limit`` caps this run at the first N incomplete digests --
        useful for deliberately partial runs in tests.  ``on_error``
        follows the ``run_many`` contract: ``"raise"`` raises
        :class:`~repro.errors.SweepError` (with campaign-aligned partial
        results) when specs fail, ``"partial"`` reports them on the
        returned :class:`CampaignReport`.
        """
        stats = stats if stats is not None else RunStats()
        if tracer is None:
            tracer = tracer_from_env()
        lock_stream = open(self.directory / _LOCK_NAME, "w")
        try:
            try:
                fcntl.flock(lock_stream.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                raise CampaignError(
                    f"campaign {self.directory} is locked by another runner"
                ) from None
            return self._run_locked(
                jobs=jobs,
                backend=backend,
                cache=cache,
                use_cache=use_cache,
                stats=stats,
                tracer=tracer,
                retries=retries,
                timeout=timeout,
                backoff=backoff,
                on_error=on_error,
                limit=limit,
            )
        finally:
            lock_stream.close()  # releases the flock

    def _run_locked(
        self,
        jobs,
        backend,
        cache,
        use_cache,
        stats: RunStats,
        tracer: Tracer,
        retries,
        timeout,
        backoff,
        on_error,
        limit,
    ) -> CampaignReport:
        """The body of :meth:`run`, with the campaign lock held."""
        by_digest = self.completed_results()
        incomplete = [d for d in self._distinct if d not in by_digest]
        if tracer.enabled:
            tracer.emit(
                CampaignResumed(
                    name=self.name,
                    completed=len(by_digest),
                    remaining=len(incomplete),
                )
            )
        target = incomplete if limit is None else incomplete[: max(0, limit)]
        pending = [self.specs[self._first_index[d]] for d in target]

        journal_stream = open(self.directory / _JOURNAL_NAME, "a")
        try:

            def _journal_completion(
                _index: int, spec: SimulationSpec, result: SimulationResult
            ) -> None:
                """Publish the result file, then append its journal line."""
                digest = spec.digest()
                _atomic_write_bytes(
                    self._result_path(digest),
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
                )
                journal_stream.write(
                    json.dumps({"event": "completed", "digest": digest}) + "\n"
                )
                journal_stream.flush()

            run_results = run_many(
                pending,
                jobs=jobs,
                cache=cache,
                use_cache=use_cache,
                stats=stats,
                tracer=tracer,
                retries=retries,
                timeout=timeout,
                backoff=backoff,
                on_error="partial",
                backend=backend,
                on_result=_journal_completion,
            )
            for failure in stats.failures:
                journal_stream.write(
                    json.dumps(
                        {
                            "event": "failed",
                            "digest": failure.digest,
                            "error_type": failure.error_type,
                            "attempts": failure.attempts,
                        }
                    )
                    + "\n"
                )
            journal_stream.flush()
        finally:
            journal_stream.close()

        for run_index, result in enumerate(run_results):
            if result is not None:
                by_digest[target[run_index]] = result
        results = [by_digest.get(digest) for digest in self._digests]
        failures = self._campaign_failures(stats.failures, target)
        remaining = sum(1 for digest in self._distinct if digest not in by_digest)
        if tracer.enabled:
            tracer.emit(
                CampaignCompleted(
                    name=self.name,
                    executed=stats.executed,
                    failed=len(failures),
                    remaining=remaining,
                )
            )
        report = CampaignReport(
            results=results,
            stats=stats,
            failures=failures,
            complete=remaining == 0,
        )
        if failures and on_error == "raise":
            from repro.errors import SweepError

            first = failures[0]
            raise SweepError(
                f"{len(failures)} campaign slots failed after recovery; "
                f"first: spec {first.index} [{first.error_type}] {first.message}",
                results=results,
                failures=failures,
            )
        return report

    def _campaign_failures(
        self, run_failures: list[SpecFailure], target: list[str]
    ) -> list[SpecFailure]:
        """Re-index a run's failures to campaign slots (aliases too)."""
        failures: list[SpecFailure] = []
        for failure in run_failures:
            digest = failure.digest
            for index, spec_digest in enumerate(self._digests):
                if spec_digest == digest:
                    failures.append(
                        SpecFailure(
                            index=index,
                            digest=digest,
                            error_type=failure.error_type,
                            message=failure.message,
                            attempts=failure.attempts,
                        )
                    )
        seen: set[int] = set()
        deduped = []
        for failure in sorted(failures, key=lambda f: f.index):
            if failure.index not in seen:
                seen.add(failure.index)
                deduped.append(failure)
        return deduped
