"""Parallel, cached batch execution of simulations.

The runner turns the experiment layer's ``run_simulation`` loops into
declarative sweeps: build :class:`SimulationSpec` values (frozen,
hashable, picklable descriptions of single runs), submit the whole grid
to :func:`run_many`, and let the runner deduplicate, consult the
content-addressed :class:`ResultCache`, and fan the rest out over
worker processes.  See ``docs/performance.md`` for the architecture and
cache-keying details.
"""

from __future__ import annotations

from repro.simulator.runner.cache import (
    ResultCache,
    code_version_salt,
    default_cache,
    reset_default_cache,
)
from repro.simulator.runner.execute import (
    RunStats,
    SpecFailure,
    WorkerCrash,
    execution_count,
    resolve_jobs,
    resolve_retries,
    resolve_timeout,
    run_many,
)
from repro.simulator.runner.spec import FrozenSeries, FrozenWorkload, SimulationSpec

__all__ = [
    "SimulationSpec",
    "FrozenWorkload",
    "FrozenSeries",
    "run_many",
    "RunStats",
    "SpecFailure",
    "WorkerCrash",
    "resolve_jobs",
    "resolve_retries",
    "resolve_timeout",
    "execution_count",
    "ResultCache",
    "code_version_salt",
    "default_cache",
    "reset_default_cache",
]
