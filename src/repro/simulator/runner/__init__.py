"""Parallel, cached batch execution of simulations.

The runner turns the experiment layer's ``run_simulation`` loops into
declarative sweeps: build :class:`SimulationSpec` values (frozen,
hashable, picklable descriptions of single runs), submit the whole grid
to :func:`run_many`, and let the runner deduplicate, consult the
content-addressed :class:`ResultCache`, and dispatch the rest to a
pluggable :class:`SweepBackend` (``serial``, ``pool``, ``workqueue``).
:class:`Campaign` persists a sweep to a journaled directory so it can
be resumed after any interruption
(``python -m repro.simulator.runner resume <dir>``).  See
``docs/performance.md`` for the architecture and cache-keying details
and ``docs/sweeps.md`` for backends and campaigns.
"""

from __future__ import annotations

from repro.simulator.runner.backends import (
    AttemptOutcome,
    BackendContext,
    PoolBackend,
    SerialBackend,
    SweepBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.simulator.runner.cache import (
    ResultCache,
    code_version_salt,
    default_cache,
    reset_default_cache,
)
from repro.simulator.runner.campaign import Campaign, CampaignReport
from repro.simulator.runner.execute import (
    RunStats,
    SpecFailure,
    WorkerCrash,
    execution_count,
    resolve_backend_name,
    resolve_jobs,
    resolve_retries,
    resolve_timeout,
    run_many,
)
from repro.simulator.runner.spec import FrozenSeries, FrozenWorkload, SimulationSpec
from repro.simulator.runner.workqueue import WorkQueueBackend

__all__ = [
    "SimulationSpec",
    "FrozenWorkload",
    "FrozenSeries",
    "run_many",
    "RunStats",
    "SpecFailure",
    "WorkerCrash",
    "resolve_jobs",
    "resolve_retries",
    "resolve_timeout",
    "resolve_backend_name",
    "execution_count",
    "ResultCache",
    "code_version_salt",
    "default_cache",
    "reset_default_cache",
    "SweepBackend",
    "SerialBackend",
    "PoolBackend",
    "WorkQueueBackend",
    "AttemptOutcome",
    "BackendContext",
    "register_backend",
    "create_backend",
    "available_backends",
    "Campaign",
    "CampaignReport",
]
