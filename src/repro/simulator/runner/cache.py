"""Content-addressed caching of simulation results.

Results are keyed by ``sha256(code_version_salt + spec.digest())``: the
spec digest covers every simulation input, and the code-version salt --
a fingerprint of the ``repro`` sources that can affect simulation
outputs -- invalidates all entries whenever the simulator, policies, or
models change.

The salt is *analysis-derived*: simcheck's digest-safety certification
(:func:`repro.lint.analysis.certify.certified_files`) computes the set
of files reachable from the digest entry points (``Engine.run``,
``run_reference``, policy ``decide`` implementations,
``SimulationSpec.digest``, ``repro.faults.apply``) as the union of the
interprocedural call-graph closure and the module import closure -- a
sound file-granularity over-approximation.  Each certified file is
hashed in AST-normalized form (docstrings, comments, and formatting
stripped), so a comment-only edit to the engine no longer evicts a
warmed sweep cache while any semantic edit still does.  The
experiment/analysis/lint layers fall outside the certified set: editing
a figure script -- or the analyzer itself -- must not evict the
simulations it re-plots.  If certification fails for any reason the
salt falls back to byte-hashing the packages in ``_SALTED_PACKAGES``,
which can only over-evict, never serve stale results.

The in-memory layer is always on; the on-disk layer is opt-in via
``$REPRO_CACHE_DIR`` (explicit directory) or ``$REPRO_DISK_CACHE=1``
(default ``~/.cache/repro``).  ``$REPRO_NO_CACHE=1`` disables caching in
:func:`repro.simulator.runner.run_many` entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.simulator.results import SimulationResult

__all__ = [
    "code_version_salt",
    "ResultCache",
    "default_cache",
    "reset_default_cache",
]

#: Packages (relative to the ``repro`` root) whose sources determine
#: simulation outputs -- the *fallback* salt scope, used only when the
#: certified salt cannot be computed.  Top-level modules (units,
#: errors, ...) are always included.  ``faults`` belongs here because
#: fault plans fold into ``SimulationSpec.digest()`` and fault
#: application changes the simulated outcome; ``obs`` because engine
#: metrics are folded into cached :class:`SimulationResult` payloads.
_SALTED_PACKAGES = (
    "carbon",
    "cluster",
    "faults",
    "obs",
    "policies",
    "simulator",
    "workload",
)

#: Subtrees never certified into the salt.  ``repro.lint`` is excluded
#: explicitly because this module imports the analyzer to *compute* the
#: salt; without the exclusion that import would pull the whole lint
#: layer into its own certified set and every analyzer edit would evict
#: every cached sweep.
_SALT_EXCLUDED_SUBTREES = ("repro.lint",)


def _is_salt_excluded(module: str) -> bool:
    return any(
        module == subtree or module.startswith(subtree + ".")
        for subtree in _SALT_EXCLUDED_SUBTREES
    )


def _certified_salt(root: Path) -> str:
    """AST-normalized fingerprint of the certified reachable file set.

    ``root`` is the installed ``repro`` package directory.  Raises on
    any certification problem (unparseable tree, no entry points) --
    the caller falls back to :func:`_fallback_salt`.
    """
    from repro.lint.analysis.certify import certified_files
    from repro.lint.analysis.fingerprint import fingerprint_files
    from repro.lint.analysis.project import ProjectContext

    project = ProjectContext.from_root(root, package="repro")
    pruned = ProjectContext.from_contexts(
        (
            context
            for name, context in project.modules.items()
            if not _is_salt_excluded(name)
        ),
        root_package="repro",
    )
    return fingerprint_files(root, certified_files(pruned))


def _fallback_salt(root: Path) -> str:
    """Byte-level SHA-256 over the ``_SALTED_PACKAGES`` sources.

    Coarser than the certified salt on both axes -- whole packages
    instead of the reachable set, raw bytes instead of normalized ASTs
    -- so it can only evict more, never serve stale results.
    """
    files = sorted(root.glob("*.py"))
    for package in _SALTED_PACKAGES:
        files.extend(sorted((root / package).rglob("*.py")))
    hasher = hashlib.sha256()
    for path in files:
        hasher.update(path.relative_to(root).as_posix().encode())
        hasher.update(path.read_bytes())
    return hasher.hexdigest()


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """Fingerprint of the simulation-affecting ``repro`` source files.

    The certified salt (see module docstring) when the analysis
    succeeds, the package byte-hash otherwise.  Cached per process:
    source files do not change under a running simulation, and the
    one-time analysis costs well under a second.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    try:
        return _certified_salt(root)
    except Exception:
        return _fallback_salt(root)


class ResultCache:
    """Two-layer (memory + optional disk) cache of simulation results.

    Parameters
    ----------
    disk_dir:
        Directory for pickled results, or ``None`` for memory-only.
        Created lazily on the first write.
    """

    def __init__(self, disk_dir: str | Path | None = None):
        self._memory: dict[str, SimulationResult] = {}
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir is not None else None
        self.hits = 0
        self.misses = 0
        # Per-layer observability counters (hits = memory_hits + disk_hits);
        # run_many folds their deltas into RunStats.metrics as cache.*.
        self.memory_hits = 0
        self.disk_hits = 0
        self.writes = 0

    @classmethod
    def from_env(cls, environ=None) -> "ResultCache":
        """Build a cache from ``$REPRO_CACHE_DIR`` / ``$REPRO_DISK_CACHE``."""
        env = os.environ if environ is None else environ
        cache_dir = env.get("REPRO_CACHE_DIR", "")
        if cache_dir:
            return cls(disk_dir=cache_dir)
        if env.get("REPRO_DISK_CACHE", "") == "1":
            return cls(disk_dir=Path.home() / ".cache" / "repro")
        return cls()

    def key_for(self, spec) -> str:
        """The cache key of a spec: its digest salted by the code version."""
        return hashlib.sha256(
            f"{code_version_salt()}:{spec.digest()}".encode()
        ).hexdigest()

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` (counted as a miss)."""
        found = self._memory.get(key)
        if found is not None:
            self.hits += 1
            self.memory_hits += 1
            return found
        if self.disk_dir is not None:
            found = self._read_disk(key)
            if found is not None:
                self._memory[key] = found
                self.hits += 1
                self.disk_hits += 1
                return found
        self.misses += 1
        return None

    def layer_counters(self) -> dict[str, int]:
        """Current per-layer counters (for metrics deltas in ``run_many``)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result under ``key`` in every configured layer."""
        self._memory[key] = result
        self.writes += 1
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            handle, staging_path = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as stream:
                    pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(staging_path, self.disk_dir / f"{key}.pkl")
            except OSError:
                if os.path.exists(staging_path):
                    os.unlink(staging_path)
                raise

    def clear(self) -> None:
        """Drop the memory layer and reset counters (disk is untouched)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.writes = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _read_disk(self, key: str) -> SimulationResult | None:
        path = self.disk_dir / f"{key}.pkl"
        try:
            with open(path, "rb") as stream:
                found = pickle.load(stream)
        except FileNotFoundError:
            return None
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            AttributeError,
            ImportError,
            ValueError,
            IndexError,
        ):
            # A truncated or stale entry is a miss, not an error.  Bad
            # pickle bytes surface as more than UnpicklingError: an
            # unsupported-protocol byte raises ValueError, a truncated
            # memo reference IndexError.
            return None
        return found if isinstance(found, _cacheable_types()) else None


@lru_cache(maxsize=1)
def _cacheable_types() -> tuple[type, ...]:
    """Result types a disk entry may legitimately deserialize into.

    Imported lazily: the federation and scaling packages import the
    runner (for ``FrozenSeries``/``FrozenWorkload``), so a module-level
    import here would cycle.
    """
    from repro.federation.simulation import FederatedResult
    from repro.scaling.spec import ScalingResult

    return (SimulationResult, FederatedResult, ScalingResult)


_DEFAULT_CACHE: ResultCache | None = None


def default_cache() -> ResultCache:
    """The process-wide cache, built from the environment on first use."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ResultCache.from_env()
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests; env changes)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None
