"""Content-addressed caching of simulation results.

Results are keyed by ``sha256(code_version_salt + spec.digest())``: the
spec digest covers every simulation input, and the code-version salt --
a hash of the ``repro`` sources that can affect simulation outputs --
invalidates all entries whenever the simulator, policies, or models
change.  The experiment/analysis/lint layers are deliberately excluded
from the salt: editing a figure script must not evict the simulations it
re-plots.

The in-memory layer is always on; the on-disk layer is opt-in via
``$REPRO_CACHE_DIR`` (explicit directory) or ``$REPRO_DISK_CACHE=1``
(default ``~/.cache/repro``).  ``$REPRO_NO_CACHE=1`` disables caching in
:func:`repro.simulator.runner.run_many` entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.simulator.results import SimulationResult

__all__ = [
    "code_version_salt",
    "ResultCache",
    "default_cache",
    "reset_default_cache",
]

#: Packages (relative to the ``repro`` root) whose sources determine
#: simulation outputs.  Top-level modules (units, errors, ...) are
#: always included.  ``faults`` belongs here because fault plans fold
#: into ``SimulationSpec.digest()`` and fault application changes the
#: simulated outcome; ``obs`` because engine metrics are folded into
#: cached :class:`SimulationResult` payloads.
_SALTED_PACKAGES = (
    "carbon",
    "cluster",
    "faults",
    "obs",
    "policies",
    "simulator",
    "workload",
)


@lru_cache(maxsize=1)
def code_version_salt() -> str:
    """SHA-256 over the simulation-affecting ``repro`` source files.

    Cached per process: source files do not change under a running
    simulation, and hashing them once costs a few milliseconds.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    files = sorted(root.glob("*.py"))
    for package in _SALTED_PACKAGES:
        files.extend(sorted((root / package).rglob("*.py")))
    hasher = hashlib.sha256()
    for path in files:
        hasher.update(path.relative_to(root).as_posix().encode())
        hasher.update(path.read_bytes())
    return hasher.hexdigest()


class ResultCache:
    """Two-layer (memory + optional disk) cache of simulation results.

    Parameters
    ----------
    disk_dir:
        Directory for pickled results, or ``None`` for memory-only.
        Created lazily on the first write.
    """

    def __init__(self, disk_dir: str | Path | None = None):
        self._memory: dict[str, SimulationResult] = {}
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir is not None else None
        self.hits = 0
        self.misses = 0
        # Per-layer observability counters (hits = memory_hits + disk_hits);
        # run_many folds their deltas into RunStats.metrics as cache.*.
        self.memory_hits = 0
        self.disk_hits = 0
        self.writes = 0

    @classmethod
    def from_env(cls, environ=None) -> "ResultCache":
        """Build a cache from ``$REPRO_CACHE_DIR`` / ``$REPRO_DISK_CACHE``."""
        env = os.environ if environ is None else environ
        cache_dir = env.get("REPRO_CACHE_DIR", "")
        if cache_dir:
            return cls(disk_dir=cache_dir)
        if env.get("REPRO_DISK_CACHE", "") == "1":
            return cls(disk_dir=Path.home() / ".cache" / "repro")
        return cls()

    def key_for(self, spec) -> str:
        """The cache key of a spec: its digest salted by the code version."""
        return hashlib.sha256(
            f"{code_version_salt()}:{spec.digest()}".encode()
        ).hexdigest()

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` (counted as a miss)."""
        found = self._memory.get(key)
        if found is not None:
            self.hits += 1
            self.memory_hits += 1
            return found
        if self.disk_dir is not None:
            found = self._read_disk(key)
            if found is not None:
                self._memory[key] = found
                self.hits += 1
                self.disk_hits += 1
                return found
        self.misses += 1
        return None

    def layer_counters(self) -> dict[str, int]:
        """Current per-layer counters (for metrics deltas in ``run_many``)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
        }

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result under ``key`` in every configured layer."""
        self._memory[key] = result
        self.writes += 1
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            handle, staging_path = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(handle, "wb") as stream:
                    pickle.dump(result, stream, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(staging_path, self.disk_dir / f"{key}.pkl")
            except OSError:
                if os.path.exists(staging_path):
                    os.unlink(staging_path)
                raise

    def clear(self) -> None:
        """Drop the memory layer and reset counters (disk is untouched)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.writes = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _read_disk(self, key: str) -> SimulationResult | None:
        path = self.disk_dir / f"{key}.pkl"
        try:
            with open(path, "rb") as stream:
                found = pickle.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            # A truncated or stale entry is a miss, not an error.
            return None
        return found if isinstance(found, SimulationResult) else None


_DEFAULT_CACHE: ResultCache | None = None


def default_cache() -> ResultCache:
    """The process-wide cache, built from the environment on first use."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = ResultCache.from_env()
    return _DEFAULT_CACHE


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests; env changes)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = None
