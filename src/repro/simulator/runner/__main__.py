"""Command-line interface to campaign resume and status.

``python -m repro.simulator.runner resume <dir>`` continues an
interrupted campaign (created with
:meth:`repro.simulator.runner.Campaign.create`) from its journal:
completed distinct specs are never re-executed, and the exit status is
0 only when the campaign finishes completely.  ``status <dir>`` prints
progress without running anything.  See ``docs/sweeps.md``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.simulator.runner.backends import available_backends
from repro.simulator.runner.campaign import Campaign
from repro.simulator.runner.execute import RunStats

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.simulator.runner`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulator.runner",
        description="Resume or inspect a journaled sweep campaign.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    resume = commands.add_parser(
        "resume", help="run a campaign's incomplete specs to completion"
    )
    resume.add_argument("directory", help="campaign directory")
    resume.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: $REPRO_JOBS)"
    )
    resume.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="execution backend (default: $REPRO_BACKEND or the jobs/timeout heuristic)",
    )
    resume.add_argument(
        "--retries", type=int, default=None,
        help="retry budget per failing spec (default: $REPRO_RETRIES)",
    )
    resume.add_argument(
        "--timeout", type=float, default=None,
        help="per-execution timeout in seconds (default: $REPRO_TIMEOUT)",
    )
    resume.add_argument(
        "--backoff", type=float, default=0.05, help="base retry backoff in seconds"
    )
    resume.add_argument(
        "--limit", type=int, default=None,
        help="run at most N incomplete distinct specs (deliberately partial run)",
    )
    resume.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )

    status = commands.add_parser("status", help="print campaign progress")
    status.add_argument("directory", help="campaign directory")
    status.add_argument(
        "--json", action="store_true", dest="as_json", help="machine-readable output"
    )
    return parser


def _cmd_resume(args: argparse.Namespace) -> int:
    """Run the incomplete remainder of a campaign; 0 only on completion."""
    campaign = Campaign.load(args.directory)
    stats = RunStats()
    report = campaign.run(
        jobs=args.jobs,
        backend=args.backend,
        use_cache=not args.no_cache,
        stats=stats,
        retries=args.retries,
        timeout=args.timeout,
        backoff=args.backoff,
        on_error="partial",
        limit=args.limit,
    )
    done = sum(1 for result in report.results if result is not None)
    print(
        f"campaign {campaign.name}: {done}/{len(report.results)} specs complete "
        f"(executed {stats.executed} this run via {stats.backend}, "
        f"{stats.cache_hits} cache hits, {len(report.failures)} failures)"
    )
    for failure in report.failures[:10]:
        print(
            f"  failed spec {failure.index} [{failure.error_type}] "
            f"{failure.message} after {failure.attempts} attempts"
        )
    return 0 if report.complete else 1


def _cmd_status(args: argparse.Namespace) -> int:
    """Print journal-derived campaign progress."""
    campaign = Campaign.load(args.directory)
    summary = campaign.status()
    if args.as_json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"campaign {summary['name']}: {summary['completed']}/"
            f"{summary['distinct']} distinct specs complete "
            f"({summary['total']} total, {summary['remaining']} remaining)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatch; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if args.command == "resume":
        return _cmd_resume(args)
    return _cmd_status(args)


if __name__ == "__main__":
    sys.exit(main())
