"""Pluggable execution substrates for the sweep runner.

A :class:`SweepBackend` is the seam between *what* a sweep runs
(picklable :class:`~repro.simulator.runner.spec.SimulationSpec` values)
and *where* attempts execute.  The backend contract is deliberately
small -- ``open`` / ``submit`` / ``poll`` / ``cancel`` / ``shutdown`` --
so the recovery semantics layered on top (retries with backoff, timeout
charging, failure reports, partial results) live once, in the
backend-agnostic dispatch loop of
:mod:`repro.simulator.runner.execute`, and every registered backend
inherits them.

Three backends register here or on import of their module:

* ``serial`` -- in-process execution, one attempt per poll.  No process
  isolation: a spec that hangs or kills the process takes the caller
  with it, so it cannot enforce per-execution timeouts.
* ``pool`` -- the fault-tolerant ``ProcessPoolExecutor`` loop.  Crash
  recovery respawns broken pools; an ambiguous crash re-runs the
  in-flight suspects one at a time ("solo isolation", surfaced to the
  dispatch loop as exclusive requeues) so only the spec that actually
  crashes is charged.
* ``workqueue`` (:mod:`repro.simulator.runner.workqueue`) -- a
  file-based work queue where independent worker processes claim specs
  via atomic renames and share the promoted disk result cache.

New backends register with :func:`register_backend`; the conformance
suite (``tests/simulator/test_backends.py``) certifies every registered
name against the same digest/accounting/recovery assertions -- see
``docs/sweeps.md``.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.obs.events import PoolRespawned
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.results import SimulationResult
from repro.simulator.runner.spec import SimulationSpec

__all__ = [
    "AttemptOutcome",
    "BackendContext",
    "SweepBackend",
    "SerialBackend",
    "PoolBackend",
    "WorkerCrash",
    "BACKENDS",
    "register_backend",
    "create_backend",
    "available_backends",
    "resolve_backend_name",
    "execution_count",
]


#: In-process count of simulations actually executed (cache hits and
#: work done in worker processes do not increment it here).
_EXECUTIONS = 0


def execution_count() -> int:
    """How many simulations this process has executed via the runner.

    A warm-cache ``run_many`` leaves this unchanged -- the invariant the
    cache-hit tests assert.
    """
    return _EXECUTIONS


def _execute(spec: SimulationSpec) -> SimulationResult:
    """Run one spec in-process, counting the execution."""
    global _EXECUTIONS
    _EXECUTIONS += 1
    return spec.run()


def _execute_timed(spec: SimulationSpec) -> tuple[SimulationResult, float]:
    """Run one spec, returning the result and its wall seconds."""
    started = time.perf_counter()
    result = _execute(spec)
    return result, time.perf_counter() - started


def _execute_indexed(
    item: tuple[int, SimulationSpec]
) -> tuple[int, SimulationResult, float]:
    """Pool-worker entry point (module-level so it pickles)."""
    token, spec = item
    result, wall_seconds = _execute_timed(spec)
    return token, result, wall_seconds


class WorkerCrash(RuntimeError):
    """A worker process died while running a spec.

    Raised synthetically by a backend on behalf of the dead worker;
    retryable like any non-:class:`~repro.errors.ReproError` failure.
    """


@dataclass(frozen=True)
class AttemptOutcome:
    """What happened to one submitted execution attempt.

    Exactly one of three shapes: a completion (``result`` set), a
    charged failure (``error`` set), or an uncharged requeue
    (``requeue`` true -- the attempt was an innocent casualty of backend
    recovery, e.g. it shared a pool with a crashing spec, and must be
    resubmitted without burning a retry).  ``exclusive`` on a requeue
    asks the dispatch loop to re-run the attempt with nothing else in
    flight, so a repeat crash unambiguously names its culprit.
    """

    token: int
    result: SimulationResult | None = None
    error: BaseException | None = None
    wall_seconds: float = 0.0
    requeue: bool = False
    exclusive: bool = False


@dataclass
class BackendContext:
    """Everything a backend may need at :meth:`SweepBackend.open` time.

    ``workers`` is the parallelism the sweep resolved (already capped at
    the number of distinct specs); ``cache_dir`` is the promoted disk
    result-cache directory shared across worker processes, or ``None``
    when the sweep runs without a disk cache.
    """

    workers: int
    tracer: Tracer = NULL_TRACER
    cache_dir: str | None = None


class SweepBackend:
    """Abstract execution substrate for sweep attempts.

    Lifecycle: one ``open`` -> any number of ``submit`` / ``poll`` /
    ``cancel`` rounds -> one ``shutdown`` (always called, even on
    error).  Submissions are identified by an integer ``token`` chosen
    by the dispatch loop; a token is in flight from ``submit`` until an
    :class:`AttemptOutcome` for it is returned from ``poll`` or it is
    confirmed cancelled by ``cancel``.  Backends never retry and never
    interpret errors -- they report one outcome per attempt and leave
    charging to the dispatch loop.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Whether :meth:`cancel` can abandon a running attempt -- required
    #: to enforce per-execution timeouts.
    supports_timeout = False

    def __init__(self) -> None:
        #: Pool/worker teardowns performed for recovery (stats fodder).
        self.respawns = 0

    def open(self, context: BackendContext) -> None:
        """Acquire execution resources (processes, directories)."""
        raise NotImplementedError

    def capacity(self) -> int | None:
        """How many additional submissions to accept now (None: any)."""
        raise NotImplementedError

    def submit(self, token: int, spec: SimulationSpec) -> None:
        """Start one execution attempt of ``spec`` under ``token``."""
        raise NotImplementedError

    def poll(self, timeout: float | None) -> list[AttemptOutcome]:
        """Outcomes that landed, blocking up to ``timeout`` seconds.

        ``None`` blocks until at least one outcome is available (the
        dispatch loop only passes ``None`` while work is in flight).
        May return an empty list on timeout expiry.
        """
        raise NotImplementedError

    def cancel(self, tokens: set[int]) -> set[int]:
        """Best-effort abandonment of in-flight attempts.

        Returns the subset actually cancelled (the dispatch loop
        charges those a timeout).  A token whose attempt already
        finished is *not* cancelled -- its real outcome arrives from the
        next ``poll``.  Innocent attempts a backend had to abandon as
        collateral are requeued via ``poll`` outcomes, uncharged.
        """
        return set()

    def shutdown(self) -> None:
        """Release all resources; in-flight attempts may be abandoned."""
        raise NotImplementedError


#: Registry of backend name -> class (see :func:`register_backend`).
BACKENDS: dict[str, type[SweepBackend]] = {}


def register_backend(backend_class: type[SweepBackend]) -> type[SweepBackend]:
    """Class decorator registering a backend under its ``name``.

    Registered names are accepted by ``run_many(backend=...)``,
    ``$REPRO_BACKEND``, and the campaign CLI -- and are picked up by the
    backend-conformance test suite, which certifies every registered
    backend against the shared contract.
    """
    BACKENDS[backend_class.name] = backend_class
    return backend_class


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(BACKENDS))


def create_backend(name: str) -> SweepBackend:
    """Instantiate a registered backend by name."""
    try:
        backend_class = BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ConfigError(f"unknown sweep backend {name!r} (known: {known})") from None
    return backend_class()


@register_backend
class SerialBackend(SweepBackend):
    """In-process execution: one attempt per poll, in submission order.

    No process isolation and no timeout support; what it offers is
    determinism (the :func:`execution_count` hook observes every
    execution) and zero fork overhead.  Backoff waits never block it:
    the dispatch loop keeps feeding other pending specs while a retry
    waits out its gate.
    """

    name = "serial"
    supports_timeout = False

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[tuple[int, SimulationSpec]] = deque()

    def open(self, context: BackendContext) -> None:
        """Nothing to acquire; the context is kept for symmetry."""
        self._context = context

    def capacity(self) -> int | None:
        """Unbounded: submissions just queue in order."""
        return None

    def submit(self, token: int, spec: SimulationSpec) -> None:
        """Append the attempt to the in-process FIFO."""
        self._queue.append((token, spec))

    def poll(self, timeout: float | None) -> list[AttemptOutcome]:
        """Execute the oldest queued attempt synchronously."""
        if not self._queue:
            if timeout:
                time.sleep(timeout)
            return []
        token, spec = self._queue.popleft()
        try:
            result, wall_seconds = _execute_timed(spec)
        except Exception as error:  # noqa: BLE001 -- charged, never silent
            return [AttemptOutcome(token=token, error=error)]
        return [AttemptOutcome(token=token, result=result, wall_seconds=wall_seconds)]

    def shutdown(self) -> None:
        """Drop anything still queued."""
        self._queue.clear()


@register_backend
class PoolBackend(SweepBackend):
    """The fault-tolerant ``ProcessPoolExecutor`` substrate.

    Keeps at most ``workers`` futures in flight (so every submitted
    future has a worker and submit time approximates start time, which
    the per-execution deadline is measured from), recovers from broken
    pools by respawning, and names crash culprits via solo isolation:
    when a pool break leaves more than one suspect, each is requeued
    *exclusive* so the dispatch loop re-runs them one at a time and only
    the spec that crashes alone is charged.
    """

    name = "pool"
    supports_timeout = True

    def __init__(self) -> None:
        super().__init__()
        self._executor: ProcessPoolExecutor | None = None
        self._inflight: dict[Future, int] = {}
        self._buffered: list[AttemptOutcome] = []
        self._workers = 1
        self._tracer: Tracer = NULL_TRACER

    def open(self, context: BackendContext) -> None:
        """Spawn the worker pool."""
        self._workers = context.workers
        self._tracer = context.tracer
        self._executor = ProcessPoolExecutor(max_workers=self._workers)

    def capacity(self) -> int | None:
        """Free worker slots (submissions are windowed to the pool)."""
        return max(0, self._workers - len(self._inflight))

    def submit(self, token: int, spec: SimulationSpec) -> None:
        """Submit one attempt; a pool found broken here is respawned.

        A break surfacing at submit time (a worker died after all its
        futures resolved) loses nothing in flight, so the attempt is
        requeued uncharged rather than treated as a crash suspect.
        """
        assert self._executor is not None
        try:
            future = self._executor.submit(_execute_indexed, (token, spec))
        except BrokenExecutor:
            self._respawn(reason="broken")
            self._buffered.append(AttemptOutcome(token=token, requeue=True))
            return
        self._inflight[future] = token

    def poll(self, timeout: float | None) -> list[AttemptOutcome]:
        """Harvest finished futures; recover from a broken pool."""
        outcomes = self._buffered
        self._buffered = []
        if not self._inflight:
            return outcomes
        done, _ = wait(set(self._inflight), timeout=timeout, return_when=FIRST_COMPLETED)
        suspects: list[int] = []
        broken = False
        for future in done:
            token = self._inflight.pop(future)
            try:
                _token, result, wall_seconds = future.result()
            except BrokenExecutor:
                broken = True
                suspects.append(token)
            except Exception as error:  # noqa: BLE001 -- charged, never silent
                outcomes.append(AttemptOutcome(token=token, error=error))
            else:
                outcomes.append(
                    AttemptOutcome(token=token, result=result, wall_seconds=wall_seconds)
                )
        if not broken:
            return outcomes
        # Everything still in flight rode the same dead pool: requeue it
        # alongside the futures that already surfaced the break.
        suspects.extend(self._inflight.values())
        self._inflight.clear()
        self._respawn(reason="broken")
        if len(suspects) == 1:
            # Alone in the pool: the crash is unambiguously its doing.
            outcomes.append(
                AttemptOutcome(token=suspects[0], error=WorkerCrash("worker process died"))
            )
        else:
            outcomes.extend(
                AttemptOutcome(token=token, requeue=True, exclusive=True)
                for token in suspects
            )
        return outcomes

    def cancel(self, tokens: set[int]) -> set[int]:
        """Abandon the pool holding the expired attempts.

        A hung worker cannot be cancelled individually, so the whole
        pool is torn down.  Attempts whose futures already finished are
        spared (their real outcomes are buffered); innocent in-flight
        attempts are requeued uncharged.
        """
        expired: set[int] = set()
        for future, token in list(self._inflight.items()):
            if token in tokens and not future.done():
                expired.add(token)
                del self._inflight[future]
        if not expired:
            return set()
        for future, token in self._inflight.items():
            if future.done():
                try:
                    _token, result, wall_seconds = future.result()
                except BrokenExecutor:
                    self._buffered.append(AttemptOutcome(token=token, requeue=True))
                except Exception as error:  # noqa: BLE001 -- charged, never silent
                    self._buffered.append(AttemptOutcome(token=token, error=error))
                else:
                    self._buffered.append(
                        AttemptOutcome(
                            token=token, result=result, wall_seconds=wall_seconds
                        )
                    )
            else:
                self._buffered.append(AttemptOutcome(token=token, requeue=True))
        self._inflight.clear()
        self._respawn(reason="timeout")
        return expired

    def shutdown(self) -> None:
        """Tear the pool down without joining workers that may hang."""
        if self._executor is not None:
            _abandon_pool(self._executor)
            self._executor = None
        self._inflight.clear()

    def _respawn(self, reason: str) -> None:
        """Abandon the current pool and stand up a fresh one."""
        assert self._executor is not None
        _abandon_pool(self._executor)
        self.respawns += 1
        if self._tracer.enabled:
            self._tracer.emit(PoolRespawned(reason=reason, respawns=self.respawns))
        self._executor = ProcessPoolExecutor(max_workers=self._workers)


def _abandon_pool(executor: ProcessPoolExecutor) -> None:
    """Tear down a pool without joining workers that may never exit.

    ``shutdown(wait=False)`` alone would leave a hung worker alive (and
    interpreter exit would join it); terminating the worker processes is
    the only way to reclaim them.  ``_processes`` is executor-internal,
    so absence is tolerated.
    """
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already dead / closed
            pass


def resolve_backend_name(
    backend: str | None = None,
    jobs: int = 1,
    timeout: float | None = None,
    environ=None,
) -> str:
    """The backend a sweep should use.

    Resolution order: the explicit argument, else ``$REPRO_BACKEND``,
    else the historical heuristic -- ``serial`` for ``jobs == 1`` with
    no timeout (deterministic in-process execution), ``pool`` otherwise
    (only a separate process can be abandoned mid-execution, and even a
    single-spec batch gets crash isolation under ``jobs > 1``).
    """
    if backend is None:
        env = os.environ if environ is None else environ
        backend = env.get("REPRO_BACKEND", "") or None
    if backend is None:
        backend = "serial" if (jobs == 1 and timeout is None) else "pool"
    if backend not in BACKENDS:
        known = ", ".join(available_backends())
        raise ConfigError(f"unknown sweep backend {backend!r} (known: {known})")
    return backend
