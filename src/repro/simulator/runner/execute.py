"""Batch execution of simulation specs: serial, parallel, and cached.

:func:`run_many` is the sweep primitive every experiment builds on.  It
deduplicates identical specs within a batch, consults the result cache,
and fans the remainder out over a ``ProcessPoolExecutor`` -- workers
receive only the small picklable specs and rebuild live traces
themselves.  ``jobs=1`` runs in-process (deterministic call order, and
the :func:`execution_count` hook observes every engine execution, which
the cache-hit tests rely on).
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.events import MetricsSnapshot, SweepCompleted, SweepSubmitted
from repro.obs.metrics import MetricsRegistry, aggregate_metrics
from repro.obs.tracer import Tracer, tracer_from_env
from repro.simulator.results import SimulationResult
from repro.simulator.runner.cache import ResultCache, default_cache
from repro.simulator.runner.spec import SimulationSpec

__all__ = ["RunStats", "run_many", "resolve_jobs", "execution_count"]


#: In-process count of simulations actually executed (cache hits and
#: work done in pool workers do not increment it here).
_EXECUTIONS = 0


def execution_count() -> int:
    """How many simulations this process has executed via the runner.

    A warm-cache ``run_many`` leaves this unchanged -- the invariant the
    cache-hit tests assert.
    """
    return _EXECUTIONS


def _execute(spec: SimulationSpec) -> SimulationResult:
    """Run one spec in-process, counting the execution."""
    global _EXECUTIONS
    _EXECUTIONS += 1
    return spec.run()


def _execute_timed(spec: SimulationSpec) -> tuple[SimulationResult, float]:
    """Run one spec, returning the result and its wall seconds."""
    started = time.perf_counter()
    result = _execute(spec)
    return result, time.perf_counter() - started


def _execute_indexed(
    item: tuple[int, SimulationSpec]
) -> tuple[int, SimulationResult, float]:
    """Pool-worker entry point (module-level so it pickles)."""
    index, spec = item
    result, wall_seconds = _execute_timed(spec)
    return index, result, wall_seconds


@dataclass
class RunStats:
    """Bookkeeping of one :func:`run_many` call.

    ``total = executed + cache_hits + deduplicated``: every spec is
    either executed, served from the cache, or aliased to an identical
    spec executed in the same batch.  ``metrics`` is the batch's
    aggregated observability snapshot (see :mod:`repro.obs.metrics`):
    the runner's own counters and per-execution wall-time histogram
    merged with the engine metrics of every distinct result.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    jobs: int = 1
    metrics: dict = field(default_factory=dict)


def resolve_jobs(jobs: int | None = None, environ=None) -> int:
    """Worker count: the explicit argument, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_JOBS", "")
        jobs = int(raw) if raw else 1
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    return jobs


def run_many(
    specs: Iterable[SimulationSpec],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    stats: RunStats | None = None,
    tracer: Tracer | None = None,
) -> list[SimulationResult]:
    """Run every spec and return one result per spec, in spec order.

    Parameters
    ----------
    specs:
        The simulations to run.  Identical specs (equal digests) are
        executed once and share the result object.
    jobs:
        Worker processes; ``None`` reads ``$REPRO_JOBS`` (default 1).
        1 runs in-process.
    cache:
        Result cache to consult and fill; ``None`` uses the process-wide
        :func:`default_cache`.
    use_cache:
        ``False`` (or ``$REPRO_NO_CACHE=1``) bypasses the cache
        entirely; in-batch deduplication still applies.
    stats:
        Optional :class:`RunStats` filled in place with hit/execution
        counts and the batch's aggregated metrics snapshot.
    tracer:
        Observability sink for batch-level events (sweep submitted /
        completed, runner metrics); ``None`` consults ``$REPRO_TRACE``
        and defaults to the no-op null tracer.  Worker processes emit
        their per-run events through their own env-resolved tracers.
    """
    spec_list = list(specs)
    jobs = resolve_jobs(jobs)
    if tracer is None:
        tracer = tracer_from_env()
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        use_cache = False
    active_cache = (cache if cache is not None else default_cache()) if use_cache else None
    cache_counters_before = (
        active_cache.layer_counters() if active_cache is not None else {}
    )
    batch_started = time.perf_counter()

    results: list[SimulationResult | None] = [None] * len(spec_list)
    digests: list[str] = [spec.digest() for spec in spec_list]
    to_run: list[tuple[int, SimulationSpec]] = []
    followers: dict[str, list[int]] = {}
    hit_count = 0
    for index, spec in enumerate(spec_list):
        if active_cache is not None:
            found = active_cache.get(active_cache.key_for(spec))
            if found is not None:
                results[index] = found
                hit_count += 1
                continue
        digest = digests[index]
        if digest in followers:
            followers[digest].append(index)
        else:
            followers[digest] = []
            to_run.append((index, spec))

    deduplicated = len(spec_list) - hit_count - len(to_run)
    if tracer.enabled:
        tracer.emit(
            SweepSubmitted(
                total=len(spec_list),
                executed=len(to_run),
                cache_hits=hit_count,
                deduplicated=deduplicated,
                jobs=jobs,
            )
        )

    if not to_run or jobs == 1 or len(to_run) == 1:
        computed = [
            (index, *_execute_timed(spec)) for index, spec in to_run
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(to_run))) as pool:
            computed = list(pool.map(_execute_indexed, to_run))

    for index, result, _wall_seconds in computed:
        results[index] = result
        if active_cache is not None:
            active_cache.put(active_cache.key_for(spec_list[index]), result)
        for follower in followers[digests[index]]:
            results[follower] = result

    metrics = _batch_metrics(
        results=results,
        computed=computed,
        total=len(spec_list),
        cache_hits=hit_count,
        deduplicated=deduplicated,
        jobs=jobs,
        active_cache=active_cache,
        cache_counters_before=cache_counters_before,
    )
    if tracer.enabled:
        tracer.emit(MetricsSnapshot(scope="runner", metrics=metrics))
        tracer.emit(
            SweepCompleted(
                total=len(spec_list),
                executed=len(to_run),
                cache_hits=hit_count,
                deduplicated=deduplicated,
                jobs=jobs,
                wall_seconds=time.perf_counter() - batch_started,
            )
        )

    if stats is not None:
        stats.total = len(spec_list)
        stats.executed = len(to_run)
        stats.cache_hits = hit_count
        stats.deduplicated = deduplicated
        stats.jobs = jobs
        stats.metrics = metrics
    return results  # type: ignore[return-value]  # every slot is filled above


def _batch_metrics(
    results: list[SimulationResult | None],
    computed: list[tuple[int, SimulationResult, float]],
    total: int,
    cache_hits: int,
    deduplicated: int,
    jobs: int,
    active_cache: ResultCache | None,
    cache_counters_before: dict[str, int],
) -> dict:
    """Aggregate one batch's observability snapshot.

    Merges the runner's own counters (spec dispositions, per-execution
    wall-time histogram, cache-layer deltas) with the engine metrics of
    every *distinct* result object -- deduplicated and cache-shared
    results contribute once, so counters stay proportional to work done.
    """
    registry = MetricsRegistry()
    registry.counter("runner.specs", float(total))
    registry.counter("runner.executed", float(len(computed)))
    registry.counter("runner.cache_hits", float(cache_hits))
    registry.counter("runner.deduplicated", float(deduplicated))
    registry.gauge("runner.jobs", float(jobs))
    for _index, _result, wall_seconds in computed:
        registry.histogram("runner.worker_wall_seconds", wall_seconds)
    if active_cache is not None:
        for name, count in active_cache.layer_counters().items():
            delta = count - cache_counters_before.get(name, 0)
            if delta:
                registry.counter(f"cache.{name}", float(delta))
    distinct = {id(result): result for result in results if result is not None}
    return aggregate_metrics(
        [registry.snapshot()]
        + [result.metrics for result in distinct.values() if result.metrics]
    )
