"""Batch execution of simulation specs: serial, parallel, and cached.

:func:`run_many` is the sweep primitive every experiment builds on.  It
deduplicates identical specs within a batch, consults the result cache,
and fans the remainder out over a ``ProcessPoolExecutor`` -- workers
receive only the small picklable specs and rebuild live traces
themselves.  ``jobs=1`` runs in-process (deterministic call order, and
the :func:`execution_count` hook observes every engine execution, which
the cache-hit tests rely on).
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simulator.results import SimulationResult
from repro.simulator.runner.cache import ResultCache, default_cache
from repro.simulator.runner.spec import SimulationSpec

__all__ = ["RunStats", "run_many", "resolve_jobs", "execution_count"]


#: In-process count of simulations actually executed (cache hits and
#: work done in pool workers do not increment it here).
_EXECUTIONS = 0


def execution_count() -> int:
    """How many simulations this process has executed via the runner.

    A warm-cache ``run_many`` leaves this unchanged -- the invariant the
    cache-hit tests assert.
    """
    return _EXECUTIONS


def _execute(spec: SimulationSpec) -> SimulationResult:
    """Run one spec in-process, counting the execution."""
    global _EXECUTIONS
    _EXECUTIONS += 1
    return spec.run()


def _execute_indexed(item: tuple[int, SimulationSpec]) -> tuple[int, SimulationResult]:
    """Pool-worker entry point (module-level so it pickles)."""
    index, spec = item
    return index, _execute(spec)


@dataclass
class RunStats:
    """Bookkeeping of one :func:`run_many` call.

    ``total = executed + cache_hits + deduplicated``: every spec is
    either executed, served from the cache, or aliased to an identical
    spec executed in the same batch.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    jobs: int = 1


def resolve_jobs(jobs: int | None = None, environ=None) -> int:
    """Worker count: the explicit argument, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_JOBS", "")
        jobs = int(raw) if raw else 1
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    return jobs


def run_many(
    specs: Iterable[SimulationSpec],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    stats: RunStats | None = None,
) -> list[SimulationResult]:
    """Run every spec and return one result per spec, in spec order.

    Parameters
    ----------
    specs:
        The simulations to run.  Identical specs (equal digests) are
        executed once and share the result object.
    jobs:
        Worker processes; ``None`` reads ``$REPRO_JOBS`` (default 1).
        1 runs in-process.
    cache:
        Result cache to consult and fill; ``None`` uses the process-wide
        :func:`default_cache`.
    use_cache:
        ``False`` (or ``$REPRO_NO_CACHE=1``) bypasses the cache
        entirely; in-batch deduplication still applies.
    stats:
        Optional :class:`RunStats` filled in place with hit/execution
        counts.
    """
    spec_list = list(specs)
    jobs = resolve_jobs(jobs)
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        use_cache = False
    active_cache = (cache if cache is not None else default_cache()) if use_cache else None

    results: list[SimulationResult | None] = [None] * len(spec_list)
    digests: list[str] = [spec.digest() for spec in spec_list]
    to_run: list[tuple[int, SimulationSpec]] = []
    followers: dict[str, list[int]] = {}
    hit_count = 0
    for index, spec in enumerate(spec_list):
        if active_cache is not None:
            found = active_cache.get(active_cache.key_for(spec))
            if found is not None:
                results[index] = found
                hit_count += 1
                continue
        digest = digests[index]
        if digest in followers:
            followers[digest].append(index)
        else:
            followers[digest] = []
            to_run.append((index, spec))

    if not to_run or jobs == 1 or len(to_run) == 1:
        computed = [(index, _execute(spec)) for index, spec in to_run]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(to_run))) as pool:
            computed = list(pool.map(_execute_indexed, to_run))

    for index, result in computed:
        results[index] = result
        if active_cache is not None:
            active_cache.put(active_cache.key_for(spec_list[index]), result)
        for follower in followers[digests[index]]:
            results[follower] = result

    if stats is not None:
        stats.total = len(spec_list)
        stats.executed = len(to_run)
        stats.cache_hits = hit_count
        stats.deduplicated = len(spec_list) - hit_count - len(to_run)
        stats.jobs = jobs
    return results  # type: ignore[return-value]  # every slot is filled above
