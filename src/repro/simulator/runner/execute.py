"""Batch execution of simulation specs: serial, parallel, cached, fault-tolerant.

:func:`run_many` is the sweep primitive every experiment builds on.  It
deduplicates identical specs within a batch, consults the result cache,
and fans the remainder out over a ``ProcessPoolExecutor`` -- workers
receive only the small picklable specs and rebuild live traces
themselves.  ``jobs=1`` (with no timeout) runs in-process (deterministic
call order, and the :func:`execution_count` hook observes every engine
execution, which the cache-hit tests rely on).

The pool path degrades gracefully instead of losing a sweep to one bad
spec (``docs/robustness.md`` has the narrative):

* failed attempts are retried up to ``retries`` times with exponential
  backoff and digest-seeded jitter (:class:`~repro.errors.ReproError`
  subclasses fail fast -- they are deterministic domain errors a retry
  cannot fix);
* a per-execution ``timeout`` abandons hung workers: the pool is torn
  down, the expired spec is charged a ``TimeoutError``, and innocent
  in-flight specs are requeued uncharged;
* a worker death (``BrokenProcessPool``) respawns the pool; when the
  culprit is ambiguous the in-flight suspects are re-run one at a time
  ("solo isolation") so only the spec that actually crashes is charged;
* specs that exhaust recovery are reported as structured
  :class:`SpecFailure` entries on :class:`RunStats` -- the batch still
  returns every completed result (``on_error="partial"``) or raises a
  :class:`~repro.errors.SweepError` carrying both (``"raise"``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from collections.abc import Iterable
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro.errors import ConfigError, ReproError, SweepError
from repro.obs.events import (
    MetricsSnapshot,
    PoolRespawned,
    SpecFailed,
    SpecRetried,
    SweepCompleted,
    SweepSubmitted,
)
from repro.obs.metrics import MetricsRegistry, aggregate_metrics
from repro.obs.tracer import Tracer, tracer_from_env
from repro.simulator.results import SimulationResult
from repro.simulator.runner.cache import ResultCache, default_cache
from repro.simulator.runner.spec import SimulationSpec

__all__ = [
    "RunStats",
    "SpecFailure",
    "WorkerCrash",
    "run_many",
    "resolve_jobs",
    "resolve_retries",
    "resolve_timeout",
    "execution_count",
]


#: In-process count of simulations actually executed (cache hits and
#: work done in pool workers do not increment it here).
_EXECUTIONS = 0


def execution_count() -> int:
    """How many simulations this process has executed via the runner.

    A warm-cache ``run_many`` leaves this unchanged -- the invariant the
    cache-hit tests assert.
    """
    return _EXECUTIONS


def _execute(spec: SimulationSpec) -> SimulationResult:
    """Run one spec in-process, counting the execution."""
    global _EXECUTIONS
    _EXECUTIONS += 1
    return spec.run()


def _execute_timed(spec: SimulationSpec) -> tuple[SimulationResult, float]:
    """Run one spec, returning the result and its wall seconds."""
    started = time.perf_counter()
    result = _execute(spec)
    return result, time.perf_counter() - started


def _execute_indexed(
    item: tuple[int, SimulationSpec]
) -> tuple[int, SimulationResult, float]:
    """Pool-worker entry point (module-level so it pickles)."""
    index, spec = item
    result, wall_seconds = _execute_timed(spec)
    return index, result, wall_seconds


class WorkerCrash(RuntimeError):
    """A worker process died (broke the pool) while running a spec.

    Raised synthetically by the runner on behalf of the dead worker;
    retryable like any non-:class:`~repro.errors.ReproError` failure.
    """


@dataclass(frozen=True)
class SpecFailure:
    """Structured report of one spec that a batch could not complete.

    ``attempts`` counts executions actually charged to the spec (retries
    included, uncharged requeues after an innocent pool loss excluded);
    ``error_type`` is the final exception class name.
    """

    index: int
    digest: str
    error_type: str
    message: str
    attempts: int


@dataclass
class RunStats:
    """Bookkeeping of one :func:`run_many` call.

    ``total = executed + cache_hits + deduplicated``: every spec is
    either dispatched for execution, served from the cache, or aliased
    to an identical spec in the same batch.  Dispatched specs that
    exhaust recovery land in ``failures`` (one :class:`SpecFailure` per
    failed slot, aliases included) and are counted by ``failed``;
    ``retries``/``timeouts``/``pool_respawns`` count the recovery
    machinery's work.  ``metrics`` is the batch's aggregated
    observability snapshot (see :mod:`repro.obs.metrics`): the runner's
    own counters and per-execution wall-time histogram merged with the
    engine metrics of every distinct result.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    jobs: int = 1
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    failures: list[SpecFailure] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


def resolve_jobs(jobs: int | None = None, environ=None) -> int:
    """Worker count: the explicit argument, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_JOBS", "")
        jobs = int(raw) if raw else 1
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    return jobs


def resolve_retries(retries: int | None = None, environ=None) -> int:
    """Retry budget: the explicit argument, else ``$REPRO_RETRIES``, else 0."""
    if retries is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_RETRIES", "")
        retries = int(raw) if raw else 0
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    return retries


def resolve_timeout(timeout: float | None = None, environ=None) -> float | None:
    """Per-execution timeout (seconds): the argument, else ``$REPRO_TIMEOUT``."""
    if timeout is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_TIMEOUT", "")
        timeout = float(raw) if raw else None
    if timeout is not None and timeout <= 0:
        raise ConfigError("timeout must be positive (or None to disable)")
    return timeout


def _retry_delay(backoff: float, digest: str, attempt: int) -> float:
    """Exponential backoff with deterministic digest-seeded jitter.

    The jitter decorrelates retries across a batch without introducing
    unseeded randomness (SIM001): it is a pure function of the spec
    digest and the attempt number.
    """
    if backoff <= 0.0:
        return 0.0
    seed = hashlib.sha256(f"{digest}:{attempt}".encode()).digest()
    jitter = int.from_bytes(seed[:4], "big") / 2**32
    return backoff * (2 ** (attempt - 1)) * (1.0 + jitter)


@dataclass
class _Attempt:
    """One spec's execution state inside the fault-tolerant pool loop."""

    index: int
    spec: SimulationSpec
    digest: str
    attempts: int = 0  # executions charged so far
    ready_at: float = 0.0  # monotonic time gating resubmission (backoff)
    solo: bool = False  # crash suspect: must run with nothing else in flight


class _PoolLoop:
    """The fault-tolerant ``ProcessPoolExecutor`` dispatch loop.

    Keeps at most ``workers`` futures in flight (so every submitted
    future has a worker and submit time approximates start time, which
    the per-execution deadline is measured from), recovers from broken
    pools and expired deadlines by respawning, and charges failures to
    the right spec via solo isolation.
    """

    def __init__(
        self,
        to_run: list[tuple[int, SimulationSpec]],
        digests: list[str],
        workers: int,
        retries: int,
        timeout: float | None,
        backoff: float,
        tracer: Tracer,
    ):
        self.pending = [
            _Attempt(index=index, spec=spec, digest=digests[index])
            for index, spec in to_run
        ]
        self.workers = workers
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.tracer = tracer
        self.completed: list[tuple[int, SimulationResult, float]] = []
        self.failures: list[SpecFailure] = []
        self.retry_count = 0
        self.timeout_count = 0
        self.respawn_count = 0
        self.inflight: dict = {}  # future -> (_Attempt, deadline | None)

    def run(self) -> None:
        """Drain the work queue, however many pools it takes."""
        executor = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while self.pending or self.inflight:
                executor = self._submit_ready(executor)
                if not self.inflight:
                    self._sleep_until_ready()
                    continue
                done, _ = wait(
                    set(self.inflight),
                    timeout=self._wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                executor = self._process_done(executor, done)
                executor = self._expire_deadlines(executor)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- submission ----------------------------------------------------
    def _submittable(self, now: float) -> list[_Attempt]:
        """Attempts eligible for submission right now.

        Solo attempts (crash suspects) run strictly alone: one is
        submitted only into an empty pool, and while one is in flight
        nothing else joins it -- so a pool break unambiguously names its
        culprit.
        """
        if any(attempt.solo for attempt, _ in self.inflight.values()):
            return []
        ready_solo = [a for a in self.pending if a.solo and a.ready_at <= now]
        if ready_solo:
            return ready_solo[:1] if not self.inflight else []
        return [a for a in self.pending if not a.solo and a.ready_at <= now]

    def _submit_ready(self, executor: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Fill the in-flight window; respawn if the pool died meanwhile."""
        now = time.monotonic()
        for attempt in self._submittable(now)[: self.workers - len(self.inflight)]:
            self.pending.remove(attempt)
            try:
                future = executor.submit(_execute_indexed, (attempt.index, attempt.spec))
            except BrokenExecutor:
                # The pool broke between iterations (a worker died after
                # its futures resolved).  Nothing in flight is lost;
                # requeue and start fresh.
                self.pending.append(attempt)
                executor = self._respawn(executor, reason="broken")
                continue
            self.inflight[future] = (
                attempt,
                now + self.timeout if self.timeout is not None else None,
            )
        return executor

    def _sleep_until_ready(self) -> None:
        """Idle until the earliest backoff gate opens (nothing in flight)."""
        ready_at = min(attempt.ready_at for attempt in self.pending)
        delay = ready_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    def _wait_timeout(self) -> float | None:
        """How long :func:`wait` may block before a deadline could expire."""
        deadlines = [d for _, d in self.inflight.values() if d is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    # -- completion / failure handling ---------------------------------
    def _process_done(self, executor: ProcessPoolExecutor, done) -> ProcessPoolExecutor:
        """Harvest finished futures; handle a broken pool if one surfaced."""
        suspects: list[_Attempt] = []
        broken = False
        for future in done:
            attempt, _deadline = self.inflight.pop(future)
            try:
                index, result, wall_seconds = future.result()
            except BrokenExecutor:
                broken = True
                suspects.append(attempt)
            except Exception as error:  # noqa: BLE001 -- charged, never silent
                self._charge(attempt, error)
            else:
                self.completed.append((index, result, wall_seconds))
        if not broken:
            return executor
        # Everything still in flight rode the same dead pool: requeue it
        # alongside the futures that already surfaced the break.
        suspects.extend(attempt for attempt, _ in self.inflight.values())
        self.inflight.clear()
        executor = self._respawn(executor, reason="broken")
        if len(suspects) == 1:
            # Alone in the pool: the crash is unambiguously its doing.
            self._charge(suspects[0], WorkerCrash("worker process died"))
        else:
            for attempt in suspects:  # ambiguous: isolate, charge nobody yet
                attempt.solo = True
                self.pending.append(attempt)
        return executor

    def _expire_deadlines(self, executor: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Charge expired attempts and abandon the pool holding them.

        A hung worker cannot be cancelled individually, so the whole
        pool is torn down; in-flight specs that had time left are
        requeued without being charged an attempt.
        """
        if self.timeout is None or not self.inflight:
            return executor
        now = time.monotonic()
        expired = [
            future
            for future, (_attempt, deadline) in self.inflight.items()
            if deadline is not None and now >= deadline and not future.done()
        ]
        if not expired:
            return executor
        innocents: list[_Attempt] = []
        for future, (attempt, _deadline) in list(self.inflight.items()):
            if future in expired:
                self.timeout_count += 1
                self._charge(
                    attempt,
                    TimeoutError(f"execution exceeded {self.timeout:g}s"),
                )
            else:
                innocents.append(attempt)
        self.inflight.clear()
        self.pending.extend(innocents)
        return self._respawn(executor, reason="timeout")

    def _charge(self, attempt: _Attempt, error: BaseException) -> None:
        """Charge one failed execution: schedule a retry or record failure."""
        attempt.attempts += 1
        fail_fast = isinstance(error, ReproError)
        if fail_fast or attempt.attempts > self.retries:
            self.failures.append(
                SpecFailure(
                    index=attempt.index,
                    digest=attempt.digest,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=attempt.attempts,
                )
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    SpecFailed(
                        index=attempt.index,
                        digest_prefix=attempt.digest[:12],
                        error_type=type(error).__name__,
                        message=str(error),
                        attempts=attempt.attempts,
                    )
                )
            return
        self.retry_count += 1
        delay = _retry_delay(self.backoff, attempt.digest, attempt.attempts)
        attempt.ready_at = time.monotonic() + delay
        self.pending.append(attempt)
        if self.tracer.enabled:
            self.tracer.emit(
                SpecRetried(
                    index=attempt.index,
                    digest_prefix=attempt.digest[:12],
                    attempt=attempt.attempts,
                    error_type=type(error).__name__,
                    delay_seconds=delay,
                )
            )

    def _respawn(
        self, executor: ProcessPoolExecutor, reason: str
    ) -> ProcessPoolExecutor:
        """Abandon ``executor`` and hand back a fresh pool."""
        _abandon_pool(executor)
        self.respawn_count += 1
        if self.tracer.enabled:
            self.tracer.emit(PoolRespawned(reason=reason, respawns=self.respawn_count))
        return ProcessPoolExecutor(max_workers=self.workers)


def _abandon_pool(executor: ProcessPoolExecutor) -> None:
    """Tear down a pool without joining workers that may never exit.

    ``shutdown(wait=False)`` alone would leave a hung worker alive (and
    interpreter exit would join it); terminating the worker processes is
    the only way to reclaim them.  ``_processes`` is executor-internal,
    so absence is tolerated.
    """
    executor.shutdown(wait=False, cancel_futures=True)
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already dead / closed
            pass


def _run_serial(
    to_run: list[tuple[int, SimulationSpec]],
    digests: list[str],
    retries: int,
    backoff: float,
    tracer: Tracer,
) -> tuple[list[tuple[int, SimulationResult, float]], list[SpecFailure], int]:
    """In-process execution with the same retry contract as the pool.

    No timeout or crash protection -- a spec that hangs or kills the
    process takes the caller with it (use ``jobs > 1`` or a ``timeout``
    to get process isolation).  Returns (completed, failures, retries).
    """
    completed: list[tuple[int, SimulationResult, float]] = []
    failures: list[SpecFailure] = []
    retry_count = 0
    for index, spec in to_run:
        attempts = 0
        while True:
            try:
                result, wall_seconds = _execute_timed(spec)
            except Exception as error:  # noqa: BLE001 -- charged, never silent
                attempts += 1
                if isinstance(error, ReproError) or attempts > retries:
                    failures.append(
                        SpecFailure(
                            index=index,
                            digest=digests[index],
                            error_type=type(error).__name__,
                            message=str(error),
                            attempts=attempts,
                        )
                    )
                    if tracer.enabled:
                        tracer.emit(
                            SpecFailed(
                                index=index,
                                digest_prefix=digests[index][:12],
                                error_type=type(error).__name__,
                                message=str(error),
                                attempts=attempts,
                            )
                        )
                    break
                retry_count += 1
                delay = _retry_delay(backoff, digests[index], attempts)
                if tracer.enabled:
                    tracer.emit(
                        SpecRetried(
                            index=index,
                            digest_prefix=digests[index][:12],
                            attempt=attempts,
                            error_type=type(error).__name__,
                            delay_seconds=delay,
                        )
                    )
                if delay > 0:
                    time.sleep(delay)
            else:
                completed.append((index, result, wall_seconds))
                break
    return completed, failures, retry_count


def run_many(
    specs: Iterable[SimulationSpec],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    stats: RunStats | None = None,
    tracer: Tracer | None = None,
    retries: int | None = None,
    timeout: float | None = None,
    backoff: float = 0.05,
    on_error: str = "raise",
) -> list[SimulationResult]:
    """Run every spec and return one result per spec, in spec order.

    Parameters
    ----------
    specs:
        The simulations to run.  Identical specs (equal digests) are
        executed once and share the result object.
    jobs:
        Worker processes; ``None`` reads ``$REPRO_JOBS`` (default 1).
        1 runs in-process unless a ``timeout`` forces the pool (only a
        separate process can be abandoned).
    cache:
        Result cache to consult and fill; ``None`` uses the process-wide
        :func:`default_cache`.  Only completed results are cached.
    use_cache:
        ``False`` (or ``$REPRO_NO_CACHE=1``) bypasses the cache
        entirely; in-batch deduplication still applies.
    stats:
        Optional :class:`RunStats` filled in place with hit/execution/
        failure counts and the batch's aggregated metrics snapshot.
        Filled even when the call raises :class:`SweepError`.
    tracer:
        Observability sink for batch-level events (sweep submitted /
        completed, retries, failures, pool respawns, runner metrics);
        ``None`` consults ``$REPRO_TRACE`` and defaults to the no-op
        null tracer.  Worker processes emit their per-run events through
        their own env-resolved tracers.
    retries:
        Extra executions granted to a failing spec; ``None`` reads
        ``$REPRO_RETRIES`` (default 0).  :class:`~repro.errors.ReproError`
        subclasses fail fast regardless -- they are deterministic.
    timeout:
        Per-execution wall-clock budget in seconds; ``None`` reads
        ``$REPRO_TIMEOUT`` (default: no timeout).  Expiry abandons the
        worker pool and charges the spec one attempt.
    backoff:
        Base backoff in seconds; attempt ``n`` waits
        ``backoff * 2**(n-1)`` scaled by deterministic digest-seeded
        jitter.  0 disables the wait (tests).
    on_error:
        ``"raise"`` (default): specs still failed after recovery raise
        :class:`~repro.errors.SweepError`, carrying the partial results
        and the failure report.  ``"partial"``: return the results list
        with ``None`` in failed slots; inspect ``stats.failures``.
    """
    spec_list = list(specs)
    jobs = resolve_jobs(jobs)
    retries = resolve_retries(retries)
    timeout = resolve_timeout(timeout)
    if on_error not in ("raise", "partial"):
        raise ConfigError(f"on_error must be 'raise' or 'partial', got {on_error!r}")
    if tracer is None:
        tracer = tracer_from_env()
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        use_cache = False
    active_cache = (cache if cache is not None else default_cache()) if use_cache else None
    cache_counters_before = (
        active_cache.layer_counters() if active_cache is not None else {}
    )
    batch_started = time.perf_counter()

    results: list[SimulationResult | None] = [None] * len(spec_list)
    digests: list[str] = [spec.digest() for spec in spec_list]
    to_run: list[tuple[int, SimulationSpec]] = []
    followers: dict[str, list[int]] = {}
    hit_count = 0
    for index, spec in enumerate(spec_list):
        if active_cache is not None:
            found = active_cache.get(active_cache.key_for(spec))
            if found is not None:
                results[index] = found
                hit_count += 1
                continue
        digest = digests[index]
        if digest in followers:
            followers[digest].append(index)
        else:
            followers[digest] = []
            to_run.append((index, spec))

    deduplicated = len(spec_list) - hit_count - len(to_run)
    if tracer.enabled:
        tracer.emit(
            SweepSubmitted(
                total=len(spec_list),
                executed=len(to_run),
                cache_hits=hit_count,
                deduplicated=deduplicated,
                jobs=jobs,
            )
        )

    # The pool is mandatory whenever a timeout is set -- only a separate
    # process can be abandoned mid-execution -- and whenever jobs > 1,
    # even for one spec, so a crashing spec cannot take the caller down.
    if not to_run or (jobs == 1 and timeout is None):
        computed, failures, retry_count = _run_serial(
            to_run, digests, retries=retries, backoff=backoff, tracer=tracer
        )
        timeout_count = respawn_count = 0
    else:
        loop = _PoolLoop(
            to_run,
            digests,
            workers=min(jobs, len(to_run)),
            retries=retries,
            timeout=timeout,
            backoff=backoff,
            tracer=tracer,
        )
        loop.run()
        computed, failures = loop.completed, loop.failures
        retry_count = loop.retry_count
        timeout_count = loop.timeout_count
        respawn_count = loop.respawn_count

    for index, result, _wall_seconds in computed:
        results[index] = result
        if active_cache is not None:
            active_cache.put(active_cache.key_for(spec_list[index]), result)
        for follower in followers[digests[index]]:
            results[follower] = result

    # Aliases of a failed spec fail with it: report one entry per slot.
    for failure in list(failures):
        for follower in followers.get(failure.digest, ()):
            failures.append(dataclasses.replace(failure, index=follower))
    failures.sort(key=lambda failure: failure.index)

    metrics = _batch_metrics(
        results=results,
        computed=computed,
        total=len(spec_list),
        cache_hits=hit_count,
        deduplicated=deduplicated,
        jobs=jobs,
        active_cache=active_cache,
        cache_counters_before=cache_counters_before,
        failed=len(failures),
        retries=retry_count,
        timeouts=timeout_count,
        pool_respawns=respawn_count,
    )
    if tracer.enabled:
        tracer.emit(MetricsSnapshot(scope="runner", metrics=metrics))
        tracer.emit(
            SweepCompleted(
                total=len(spec_list),
                executed=len(to_run),
                cache_hits=hit_count,
                deduplicated=deduplicated,
                jobs=jobs,
                wall_seconds=time.perf_counter() - batch_started,
            )
        )

    if stats is not None:
        stats.total = len(spec_list)
        stats.executed = len(to_run)
        stats.cache_hits = hit_count
        stats.deduplicated = deduplicated
        stats.jobs = jobs
        stats.failed = len(failures)
        stats.retries = retry_count
        stats.timeouts = timeout_count
        stats.pool_respawns = respawn_count
        stats.failures = list(failures)
        stats.metrics = metrics
    if failures and on_error == "raise":
        first = failures[0]
        raise SweepError(
            f"{len(failures)} of {len(spec_list)} specs failed after recovery; "
            f"first: spec {first.index} [{first.error_type}] {first.message}",
            results=results,
            failures=failures,
        )
    return results  # type: ignore[return-value]  # None only in 'partial' failed slots


def _batch_metrics(
    results: list[SimulationResult | None],
    computed: list[tuple[int, SimulationResult, float]],
    total: int,
    cache_hits: int,
    deduplicated: int,
    jobs: int,
    active_cache: ResultCache | None,
    cache_counters_before: dict[str, int],
    failed: int = 0,
    retries: int = 0,
    timeouts: int = 0,
    pool_respawns: int = 0,
) -> dict:
    """Aggregate one batch's observability snapshot.

    Merges the runner's own counters (spec dispositions, recovery work,
    per-execution wall-time histogram, cache-layer deltas) with the
    engine metrics of every *distinct* result object -- deduplicated and
    cache-shared results contribute once, so counters stay proportional
    to work done.  Recovery counters appear only when nonzero, keeping
    clean-batch snapshots identical to the pre-robustness layout.
    """
    registry = MetricsRegistry()
    registry.counter("runner.specs", float(total))
    registry.counter("runner.executed", float(len(computed)))
    registry.counter("runner.cache_hits", float(cache_hits))
    registry.counter("runner.deduplicated", float(deduplicated))
    registry.gauge("runner.jobs", float(jobs))
    for name, value in (
        ("runner.failed", failed),
        ("runner.retries", retries),
        ("runner.timeouts", timeouts),
        ("runner.pool_respawns", pool_respawns),
    ):
        if value:
            registry.counter(name, float(value))
    for _index, _result, wall_seconds in computed:
        registry.histogram("runner.worker_wall_seconds", wall_seconds)
    if active_cache is not None:
        for name, count in active_cache.layer_counters().items():
            delta = count - cache_counters_before.get(name, 0)
            if delta:
                registry.counter(f"cache.{name}", float(delta))
    distinct = {id(result): result for result in results if result is not None}
    return aggregate_metrics(
        [registry.snapshot()]
        + [result.metrics for result in distinct.values() if result.metrics]
    )
