"""Batch execution of simulation specs: backends, caching, recovery.

:func:`run_many` is the sweep primitive every experiment builds on.  It
deduplicates identical specs within a batch, consults the result cache,
and dispatches the remainder to a pluggable
:class:`~repro.simulator.runner.backends.SweepBackend` -- ``serial``
(in-process), ``pool`` (fault-tolerant ``ProcessPoolExecutor``), or
``workqueue`` (file-based multi-process queue sharing the disk cache) --
selected by argument, ``$REPRO_BACKEND``, or the historical heuristic
(``serial`` for ``jobs=1`` with no timeout, ``pool`` otherwise).

The recovery semantics are *backend-agnostic* -- they live in the
dispatch loop here, so every backend inherits them and the conformance
suite (``tests/simulator/test_backends.py``) certifies each one against
the same contract (``docs/robustness.md`` and ``docs/sweeps.md`` have
the narrative):

* failed attempts are retried up to ``retries`` times with exponential
  backoff and digest-seeded jitter (:class:`~repro.errors.ReproError`
  subclasses fail fast -- they are deterministic domain errors a retry
  cannot fix).  Backoff gates never stall the loop: a waiting retry
  only bounds the backend poll timeout, and the loop sleeps outright
  only when nothing at all is in flight;
* a per-execution ``timeout`` cancels hung attempts through the
  backend: the expired spec is charged a ``TimeoutError``, and innocent
  in-flight specs a backend had to abandon as collateral are requeued
  uncharged;
* a worker death surfaces as a
  :class:`~repro.simulator.runner.backends.WorkerCrash`; when a backend
  cannot name the culprit it requeues the suspects as *exclusive*
  attempts and the loop re-runs them one at a time ("solo isolation")
  so only the spec that actually crashes is charged;
* specs that exhaust recovery are reported as structured
  :class:`SpecFailure` entries on :class:`RunStats` -- the batch still
  returns every completed result (``on_error="partial"``) or raises a
  :class:`~repro.errors.SweepError` carrying both (``"raise"``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigError, ReproError, SweepError
from repro.obs.events import (
    BackendClosed,
    BackendOpened,
    MetricsSnapshot,
    SpecFailed,
    SpecRetried,
    SweepCompleted,
    SweepSubmitted,
)
from repro.obs.metrics import MetricsRegistry, aggregate_metrics
from repro.obs.tracer import Tracer, tracer_from_env
from repro.simulator.results import SimulationResult
from repro.simulator.runner.backends import (
    AttemptOutcome,
    BackendContext,
    SweepBackend,
    WorkerCrash,
    create_backend,
    execution_count,
    resolve_backend_name,
)
from repro.simulator.runner.cache import ResultCache, default_cache
from repro.simulator.runner.spec import SimulationSpec

__all__ = [
    "RunStats",
    "SpecFailure",
    "WorkerCrash",
    "run_many",
    "resolve_jobs",
    "resolve_retries",
    "resolve_timeout",
    "resolve_backend_name",
    "execution_count",
]

#: Callback fired once per distinct spec digest whose result became
#: available (cache hit at planning time, or execution completing).
OnResult = Callable[[int, SimulationSpec, SimulationResult], None]


def _load_builtin_backends() -> None:
    """Import the backend modules that register themselves on import.

    Lazy (called from :func:`run_many`) so a direct import of this
    module never recurses through the package ``__init__``.
    """
    import repro.simulator.runner.workqueue  # noqa: F401


@dataclass(frozen=True)
class SpecFailure:
    """Structured report of one spec that a batch could not complete.

    ``attempts`` counts executions actually charged to the spec (retries
    included, uncharged requeues after an innocent pool loss excluded);
    ``error_type`` is the final exception class name.
    """

    index: int
    digest: str
    error_type: str
    message: str
    attempts: int


@dataclass
class RunStats:
    """Bookkeeping of one :func:`run_many` call.

    ``total = executed + cache_hits + deduplicated``: every spec is
    either dispatched for execution, served from the cache, or aliased
    to an identical spec in the same batch.  Dispatched specs that
    exhaust recovery land in ``failures`` (one :class:`SpecFailure` per
    failed slot, aliases included) and are counted by ``failed``;
    ``retries``/``timeouts``/``pool_respawns`` count the recovery
    machinery's work (``pool_respawns`` counts worker replacements on
    every backend, not just the pool).  ``backend`` names the execution
    substrate the batch dispatched to.  ``metrics`` is the batch's
    aggregated observability snapshot (see :mod:`repro.obs.metrics`):
    the runner's own counters and per-execution wall-time histogram
    merged with the engine metrics of every distinct result.
    """

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    jobs: int = 1
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    backend: str = "serial"
    failures: list[SpecFailure] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


def resolve_jobs(jobs: int | None = None, environ=None) -> int:
    """Worker count: the explicit argument, else ``$REPRO_JOBS``, else 1."""
    if jobs is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_JOBS", "")
        jobs = int(raw) if raw else 1
    if jobs < 1:
        raise ConfigError("jobs must be >= 1")
    return jobs


def resolve_retries(retries: int | None = None, environ=None) -> int:
    """Retry budget: the explicit argument, else ``$REPRO_RETRIES``, else 0."""
    if retries is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_RETRIES", "")
        retries = int(raw) if raw else 0
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    return retries


def resolve_timeout(timeout: float | None = None, environ=None) -> float | None:
    """Per-execution timeout (seconds): the argument, else ``$REPRO_TIMEOUT``."""
    if timeout is None:
        env = os.environ if environ is None else environ
        raw = env.get("REPRO_TIMEOUT", "")
        timeout = float(raw) if raw else None
    if timeout is not None and timeout <= 0:
        raise ConfigError("timeout must be positive (or None to disable)")
    return timeout


def _retry_delay(backoff: float, digest: str, attempt: int) -> float:
    """Exponential backoff with deterministic digest-seeded jitter.

    The jitter decorrelates retries across a batch without introducing
    unseeded randomness (SIM001): it is a pure function of the spec
    digest and the attempt number.
    """
    if backoff <= 0.0:
        return 0.0
    seed = hashlib.sha256(f"{digest}:{attempt}".encode()).digest()
    jitter = int.from_bytes(seed[:4], "big") / 2**32
    return backoff * (2 ** (attempt - 1)) * (1.0 + jitter)


@dataclass
class _Attempt:
    """One spec's execution state inside the dispatch loop."""

    index: int
    spec: SimulationSpec
    digest: str
    attempts: int = 0  # executions charged so far
    ready_at: float = 0.0  # monotonic time gating resubmission (backoff)
    exclusive: bool = False  # crash suspect: runs with nothing else in flight


class _Dispatcher:
    """The backend-agnostic fault-tolerant dispatch loop.

    Owns every recovery decision -- retry scheduling, timeout charging,
    exclusive (solo) isolation of crash suspects, failure reporting --
    while the :class:`SweepBackend` only executes attempts and reports
    :class:`AttemptOutcome` values.  Backoff waits never block the loop:
    a gated retry merely bounds the backend poll timeout, so unrelated
    in-flight completions keep landing while the gate is closed, and the
    loop sleeps outright only when nothing at all is in flight.
    """

    def __init__(
        self,
        to_run: list[tuple[int, SimulationSpec]],
        digests: list[str],
        backend: SweepBackend,
        retries: int,
        timeout: float | None,
        backoff: float,
        tracer: Tracer,
        on_complete: Callable[[int, SimulationResult], None] | None = None,
    ):
        self.pending = [
            _Attempt(index=index, spec=spec, digest=digests[index])
            for index, spec in to_run
        ]
        self.backend = backend
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.tracer = tracer
        self.on_complete = on_complete
        self.completed: list[tuple[int, SimulationResult, float]] = []
        self.failures: list[SpecFailure] = []
        self.retry_count = 0
        self.timeout_count = 0
        self.inflight: dict[int, tuple[_Attempt, float | None]] = {}
        self._next_token = 0

    def run(self) -> None:
        """Drain the work queue through the backend."""
        while self.pending or self.inflight:
            self._submit_ready()
            if not self.inflight:
                self._sleep_until_ready()
                continue
            for outcome in self.backend.poll(self._poll_timeout()):
                self._apply(outcome)
            self._expire_deadlines()

    # -- submission ----------------------------------------------------
    def _submittable(self, now: float) -> list[_Attempt]:
        """Attempts eligible for submission right now.

        Exclusive attempts (crash suspects) run strictly alone: one is
        submitted only when nothing is in flight, and while one is in
        flight nothing else joins it -- so a repeat crash unambiguously
        names its culprit.
        """
        if any(attempt.exclusive for attempt, _ in self.inflight.values()):
            return []
        ready_exclusive = [
            a for a in self.pending if a.exclusive and a.ready_at <= now
        ]
        if ready_exclusive:
            return ready_exclusive[:1] if not self.inflight else []
        return [a for a in self.pending if not a.exclusive and a.ready_at <= now]

    def _submit_ready(self) -> None:
        """Hand ready attempts to the backend, up to its capacity."""
        now = time.monotonic()
        eligible = self._submittable(now)
        capacity = self.backend.capacity()
        if capacity is not None:
            eligible = eligible[: max(0, capacity)]
        for attempt in eligible:
            self.pending.remove(attempt)
            token = self._next_token
            self._next_token += 1
            deadline = now + self.timeout if self.timeout is not None else None
            self.inflight[token] = (attempt, deadline)
            self.backend.submit(token, attempt.spec)

    def _sleep_until_ready(self) -> None:
        """Idle until the earliest backoff gate opens (nothing in flight)."""
        ready_at = min(attempt.ready_at for attempt in self.pending)
        delay = ready_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)

    def _poll_timeout(self) -> float | None:
        """How long the backend may block before the loop must act.

        Bounded by the earliest in-flight deadline (a timeout could
        expire) *and* the earliest pending backoff gate (a retry could
        become submittable) -- the latter is what keeps backoff waits
        off the dispatch path.
        """
        bounds = [
            deadline for _, deadline in self.inflight.values() if deadline is not None
        ]
        now = time.monotonic()
        bounds.extend(
            attempt.ready_at for attempt in self.pending if attempt.ready_at > now
        )
        if not bounds:
            return None
        return max(0.0, min(bounds) - now)

    # -- completion / failure handling ---------------------------------
    def _apply(self, outcome: AttemptOutcome) -> None:
        """Fold one backend outcome into the loop state."""
        entry = self.inflight.pop(outcome.token, None)
        if entry is None:
            return  # stale token: already charged (e.g. as a timeout)
        attempt, _deadline = entry
        if outcome.requeue:
            attempt.exclusive = attempt.exclusive or outcome.exclusive
            self.pending.append(attempt)
        elif outcome.error is not None:
            self._charge(attempt, outcome.error)
        else:
            assert outcome.result is not None
            self.completed.append((attempt.index, outcome.result, outcome.wall_seconds))
            if self.on_complete is not None:
                self.on_complete(attempt.index, outcome.result)

    def _expire_deadlines(self) -> None:
        """Cancel expired attempts through the backend and charge them.

        Only attempts the backend *confirms* cancelled are charged a
        ``TimeoutError`` -- one that finished in the race window
        delivers its real outcome on the next poll instead.
        """
        if self.timeout is None or not self.inflight:
            return
        now = time.monotonic()
        expired = {
            token
            for token, (_attempt, deadline) in self.inflight.items()
            if deadline is not None and now >= deadline
        }
        if not expired:
            return
        for token in self.backend.cancel(expired):
            attempt, _deadline = self.inflight.pop(token)
            self.timeout_count += 1
            self._charge(
                attempt, TimeoutError(f"execution exceeded {self.timeout:g}s")
            )

    def _charge(self, attempt: _Attempt, error: BaseException) -> None:
        """Charge one failed execution: schedule a retry or record failure."""
        attempt.attempts += 1
        fail_fast = isinstance(error, ReproError)
        if fail_fast or attempt.attempts > self.retries:
            self.failures.append(
                SpecFailure(
                    index=attempt.index,
                    digest=attempt.digest,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=attempt.attempts,
                )
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    SpecFailed(
                        index=attempt.index,
                        digest_prefix=attempt.digest[:12],
                        error_type=type(error).__name__,
                        message=str(error),
                        attempts=attempt.attempts,
                    )
                )
            return
        self.retry_count += 1
        delay = _retry_delay(self.backoff, attempt.digest, attempt.attempts)
        attempt.ready_at = time.monotonic() + delay
        self.pending.append(attempt)
        if self.tracer.enabled:
            self.tracer.emit(
                SpecRetried(
                    index=attempt.index,
                    digest_prefix=attempt.digest[:12],
                    attempt=attempt.attempts,
                    error_type=type(error).__name__,
                    delay_seconds=delay,
                )
            )


def run_many(
    specs: Iterable[SimulationSpec],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    stats: RunStats | None = None,
    tracer: Tracer | None = None,
    retries: int | None = None,
    timeout: float | None = None,
    backoff: float = 0.05,
    on_error: str = "raise",
    backend: str | None = None,
    on_result: OnResult | None = None,
) -> list[SimulationResult]:
    """Run every spec and return one result per spec, in spec order.

    Parameters
    ----------
    specs:
        The simulations to run.  Identical specs (equal digests) are
        executed once and share the result object.
    jobs:
        Worker processes; ``None`` reads ``$REPRO_JOBS`` (default 1).
        1 runs in-process unless a ``timeout`` forces a process-backed
        backend (only a separate process can be abandoned).
    cache:
        Result cache to consult and fill; ``None`` uses the process-wide
        :func:`default_cache`.  Only completed results are cached.
    use_cache:
        ``False`` (or ``$REPRO_NO_CACHE=1``) bypasses the cache
        entirely; in-batch deduplication still applies.
    stats:
        Optional :class:`RunStats` filled in place with hit/execution/
        failure counts and the batch's aggregated metrics snapshot.
        Filled even when the call raises :class:`SweepError`.
    tracer:
        Observability sink for batch-level events (sweep submitted /
        completed, backend opened / closed, retries, failures, worker
        respawns, runner metrics); ``None`` consults ``$REPRO_TRACE``
        and defaults to the no-op null tracer.  Worker processes emit
        their per-run events through their own env-resolved tracers.
    retries:
        Extra executions granted to a failing spec; ``None`` reads
        ``$REPRO_RETRIES`` (default 0).  :class:`~repro.errors.ReproError`
        subclasses fail fast regardless -- they are deterministic.
    timeout:
        Per-execution wall-clock budget in seconds; ``None`` reads
        ``$REPRO_TIMEOUT`` (default: no timeout).  Expiry cancels the
        attempt through the backend and charges the spec one attempt.
    backoff:
        Base backoff in seconds; attempt ``n`` waits
        ``backoff * 2**(n-1)`` scaled by deterministic digest-seeded
        jitter.  0 disables the wait (tests).
    on_error:
        ``"raise"`` (default): specs still failed after recovery raise
        :class:`~repro.errors.SweepError`, carrying the partial results
        and the failure report.  ``"partial"``: return the results list
        with ``None`` in failed slots; inspect ``stats.failures``.
    backend:
        Execution substrate name (``"serial"``, ``"pool"``,
        ``"workqueue"``, or any registered backend); ``None`` reads
        ``$REPRO_BACKEND`` and falls back to the jobs/timeout heuristic.
        See ``docs/sweeps.md`` for the backend matrix.
    on_result:
        Streaming completion hook, called once per *distinct* spec
        digest as soon as its result is available -- for cache hits
        during planning and for executions as they land, before the
        batch finishes.  Campaign journaling builds on this.  Aliased
        (deduplicated) slots do not trigger extra calls.
    """
    _load_builtin_backends()
    spec_list = list(specs)
    jobs = resolve_jobs(jobs)
    retries = resolve_retries(retries)
    timeout = resolve_timeout(timeout)
    backend_name = resolve_backend_name(backend, jobs=jobs, timeout=timeout)
    if timeout is not None and not _backend_class(backend_name).supports_timeout:
        raise ConfigError(
            f"backend {backend_name!r} cannot enforce per-execution timeouts"
        )
    if on_error not in ("raise", "partial"):
        raise ConfigError(f"on_error must be 'raise' or 'partial', got {on_error!r}")
    if tracer is None:
        tracer = tracer_from_env()
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        use_cache = False
    active_cache = (cache if cache is not None else default_cache()) if use_cache else None
    cache_counters_before = (
        active_cache.layer_counters() if active_cache is not None else {}
    )
    batch_started = time.perf_counter()

    results: list[SimulationResult | None] = [None] * len(spec_list)
    digests: list[str] = [spec.digest() for spec in spec_list]
    notified: set[str] = set()
    to_run: list[tuple[int, SimulationSpec]] = []
    followers: dict[str, list[int]] = {}
    hit_count = 0
    for index, spec in enumerate(spec_list):
        if active_cache is not None:
            found = active_cache.get(active_cache.key_for(spec))
            if found is not None:
                results[index] = found
                hit_count += 1
                if on_result is not None and digests[index] not in notified:
                    notified.add(digests[index])
                    on_result(index, spec, found)
                continue
        digest = digests[index]
        if digest in followers:
            followers[digest].append(index)
        else:
            followers[digest] = []
            to_run.append((index, spec))

    deduplicated = len(spec_list) - hit_count - len(to_run)
    if tracer.enabled:
        tracer.emit(
            SweepSubmitted(
                total=len(spec_list),
                executed=len(to_run),
                cache_hits=hit_count,
                deduplicated=deduplicated,
                jobs=jobs,
            )
        )

    def _stream(index: int, result: SimulationResult) -> None:
        """Forward one dispatch completion to the caller's hook."""
        if on_result is not None and digests[index] not in notified:
            notified.add(digests[index])
            on_result(index, spec_list[index], result)

    if to_run:
        active_backend = create_backend(backend_name)
        workers = min(jobs, len(to_run))
        context = BackendContext(
            workers=workers,
            tracer=tracer,
            cache_dir=(
                str(active_cache.disk_dir)
                if active_cache is not None and active_cache.disk_dir is not None
                else None
            ),
        )
        if tracer.enabled:
            tracer.emit(BackendOpened(backend=backend_name, workers=workers))
        dispatcher = _Dispatcher(
            to_run,
            digests,
            backend=active_backend,
            retries=retries,
            timeout=timeout,
            backoff=backoff,
            tracer=tracer,
            on_complete=_stream if on_result is not None else None,
        )
        active_backend.open(context)
        try:
            dispatcher.run()
        finally:
            active_backend.shutdown()
        computed, failures = dispatcher.completed, dispatcher.failures
        retry_count = dispatcher.retry_count
        timeout_count = dispatcher.timeout_count
        respawn_count = active_backend.respawns
        if tracer.enabled:
            tracer.emit(
                BackendClosed(
                    backend=backend_name,
                    executed=len(computed),
                    respawns=respawn_count,
                )
            )
    else:
        computed, failures = [], []
        retry_count = timeout_count = respawn_count = 0

    for index, result, _wall_seconds in computed:
        results[index] = result
        if active_cache is not None:
            active_cache.put(active_cache.key_for(spec_list[index]), result)
        for follower in followers[digests[index]]:
            results[follower] = result

    # Aliases of a failed spec fail with it: report one entry per slot.
    for failure in list(failures):
        for follower in followers.get(failure.digest, ()):
            failures.append(dataclasses.replace(failure, index=follower))
    failures.sort(key=lambda failure: failure.index)

    metrics = _batch_metrics(
        results=results,
        computed=computed,
        total=len(spec_list),
        cache_hits=hit_count,
        deduplicated=deduplicated,
        jobs=jobs,
        active_cache=active_cache,
        cache_counters_before=cache_counters_before,
        failed=len(failures),
        retries=retry_count,
        timeouts=timeout_count,
        pool_respawns=respawn_count,
    )
    if tracer.enabled:
        tracer.emit(MetricsSnapshot(scope="runner", metrics=metrics))
        tracer.emit(
            SweepCompleted(
                total=len(spec_list),
                executed=len(to_run),
                cache_hits=hit_count,
                deduplicated=deduplicated,
                jobs=jobs,
                wall_seconds=time.perf_counter() - batch_started,
            )
        )

    if stats is not None:
        stats.total = len(spec_list)
        stats.executed = len(to_run)
        stats.cache_hits = hit_count
        stats.deduplicated = deduplicated
        stats.jobs = jobs
        stats.failed = len(failures)
        stats.retries = retry_count
        stats.timeouts = timeout_count
        stats.pool_respawns = respawn_count
        stats.backend = backend_name
        stats.failures = list(failures)
        stats.metrics = metrics
    if failures and on_error == "raise":
        first = failures[0]
        raise SweepError(
            f"{len(failures)} of {len(spec_list)} specs failed after recovery; "
            f"first: spec {first.index} [{first.error_type}] {first.message}",
            results=results,
            failures=failures,
        )
    return results  # type: ignore[return-value]  # None only in 'partial' failed slots


def _backend_class(name: str) -> type[SweepBackend]:
    """The registered backend class for ``name`` (resolution validated)."""
    from repro.simulator.runner.backends import BACKENDS

    return BACKENDS[name]


def _batch_metrics(
    results: list[SimulationResult | None],
    computed: list[tuple[int, SimulationResult, float]],
    total: int,
    cache_hits: int,
    deduplicated: int,
    jobs: int,
    active_cache: ResultCache | None,
    cache_counters_before: dict[str, int],
    failed: int = 0,
    retries: int = 0,
    timeouts: int = 0,
    pool_respawns: int = 0,
) -> dict:
    """Aggregate one batch's observability snapshot.

    Merges the runner's own counters (spec dispositions, recovery work,
    per-execution wall-time histogram, cache-layer deltas) with the
    engine metrics of every *distinct* result object -- deduplicated and
    cache-shared results contribute once, so counters stay proportional
    to work done.  Recovery counters appear only when nonzero, keeping
    clean-batch snapshots identical to the pre-robustness layout.
    """
    registry = MetricsRegistry()
    registry.counter("runner.specs", float(total))
    registry.counter("runner.executed", float(len(computed)))
    registry.counter("runner.cache_hits", float(cache_hits))
    registry.counter("runner.deduplicated", float(deduplicated))
    registry.gauge("runner.jobs", float(jobs))
    for name, value in (
        ("runner.failed", failed),
        ("runner.retries", retries),
        ("runner.timeouts", timeouts),
        ("runner.pool_respawns", pool_respawns),
    ):
        if value:
            registry.counter(name, float(value))
    for _index, _result, wall_seconds in computed:
        registry.histogram("runner.worker_wall_seconds", wall_seconds)
    if active_cache is not None:
        for name, count in active_cache.layer_counters().items():
            delta = count - cache_counters_before.get(name, 0)
            if delta:
                registry.counter(f"cache.{name}", float(delta))
    distinct = {id(result): result for result in results if result is not None}
    return aggregate_metrics(
        [registry.snapshot()]
        + [result.metrics for result in distinct.values() if result.metrics]
    )
