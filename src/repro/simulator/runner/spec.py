"""Declarative descriptions of simulation runs.

A :class:`SimulationSpec` captures everything that determines a
:func:`repro.simulator.simulation.run_simulation` outcome -- the workload
and carbon inputs (inlined as frozen payloads), the policy spec string,
and every knob -- as a frozen, hashable, picklable value.  Specs are the
currency of the batch runner: they cross process boundaries instead of
live traces, and their :meth:`SimulationSpec.digest` content-addresses
the result cache.

Two knobs of ``run_simulation`` are *not* spec-able because they take
arbitrary live objects: ``forecaster_factory`` (pass ``forecast_sigma``
/ ``forecast_seed`` instead) and policy *instances* (pass the registry
spec string plus ``policy_kwargs``).  Code that needs either keeps
calling ``run_simulation`` directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.carbon.trace import CarbonIntensityTrace, HourlySeries
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel
from repro.cluster.spot import (
    CheckpointConfig,
    DiurnalHazard,
    EvictionModel,
    HourlyHazard,
    NoEvictions,
)
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.workload.job import Job, QueueSet
from repro.workload.trace import WorkloadTrace

__all__ = ["FrozenWorkload", "FrozenSeries", "SimulationSpec"]


#: Weak memo so freezing the same live trace across hundreds of specs
#: serializes it only once.
_WORKLOAD_MEMO: WeakKeyDictionary = WeakKeyDictionary()
_SERIES_MEMO: WeakKeyDictionary = WeakKeyDictionary()

#: Value-keyed thaw memo: specs unpickled in a worker each carry their
#: own (equal) FrozenWorkload copy, so the per-payload ``_thawed`` cache
#: never hits there.  Keying by value lets a worker rebuild each distinct
#: workload once per sweep instead of once per spec.  Cleared wholesale
#: at a small cap -- sweeps use a handful of workloads; unbounded growth
#: would pin every trace a long-lived test session ever thawed.
_THAWED_BY_VALUE: dict["FrozenWorkload", WorkloadTrace] = {}
_THAWED_BY_VALUE_CAP = 16


@dataclass(frozen=True)
class FrozenWorkload:
    """A hashable, picklable snapshot of a :class:`WorkloadTrace`.

    ``jobs`` holds ``(job_id, arrival, length, cpus, queue)`` tuples in
    the trace's canonical (arrival, job_id) order.
    """

    jobs: tuple[tuple[int, int, int, int, str], ...]
    name: str
    horizon: int

    @classmethod
    def freeze(cls, workload: WorkloadTrace) -> "FrozenWorkload":
        """Snapshot a live trace (memoized per trace object)."""
        cached = _WORKLOAD_MEMO.get(workload)
        if cached is None:
            cached = cls(
                jobs=tuple(
                    (job.job_id, job.arrival, job.length, job.cpus, job.queue)
                    for job in workload
                ),
                name=workload.name,
                horizon=workload.horizon,
            )
            _WORKLOAD_MEMO[workload] = cached
        return cached

    def thaw(self) -> WorkloadTrace:
        """Rebuild the live trace this payload was frozen from.

        ``jobs`` is stored in the trace's canonical (arrival, job_id)
        order (see the class docstring), so the rebuild goes through the
        trusted sorted constructor; the result is cached on the payload
        (both are immutable) so repeated executions of one spec -- e.g.
        serial sweeps and retries -- rebuild at most once.
        """
        cached = self.__dict__.get("_thawed")
        if cached is None:
            cached = _THAWED_BY_VALUE.get(self)
            if cached is None:
                cached = WorkloadTrace._from_sorted(
                    tuple(
                        Job(job_id=job_id, arrival=arrival, length=length, cpus=cpus, queue=queue)
                        for job_id, arrival, length, cpus, queue in self.jobs
                    ),
                    name=self.name,
                    horizon=self.horizon,
                )
                if len(_THAWED_BY_VALUE) >= _THAWED_BY_VALUE_CAP:
                    _THAWED_BY_VALUE.clear()
                _THAWED_BY_VALUE[self] = cached
            self.__dict__["_thawed"] = cached
        return cached

    def __getstate__(self) -> dict:
        """Columnar pickle: numeric job fields ship as one int64 array.

        Default dataclass pickling writes one tuple per job -- the bulk
        of every spec crossing into a sweep worker.  Packing (job_id,
        arrival, length, cpus) into a numpy array roughly halves both
        the payload and the encode/decode time; queue labels stay a
        plain list (pickle memoizes the few distinct strings).  The
        ``_thawed`` / ``_content_digest`` caches are deliberately
        dropped: a cached live trace must never ride along.
        """
        numbers = np.asarray(
            [job[:4] for job in self.jobs], dtype=np.int64
        ).reshape(len(self.jobs), 4)
        return {
            "name": self.name,
            "horizon": self.horizon,
            "numbers": numbers,
            "queues": [job[4] for job in self.jobs],
        }

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "name", state["name"])
        object.__setattr__(self, "horizon", state["horizon"])
        jobs = tuple(
            (*row, queue)
            for row, queue in zip(state["numbers"].tolist(), state["queues"])
        )
        object.__setattr__(self, "jobs", jobs)

    def content_digest(self) -> str:
        """SHA-256 over the payload; equals the live trace's
        :meth:`WorkloadTrace.content_digest` (same serialization)."""
        cached = self.__dict__.get("_content_digest")
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(f"WorkloadTrace:{self.name}:{self.horizon}".encode())
            for job_id, arrival, length, cpus, queue in self.jobs:
                hasher.update(f"{job_id},{arrival},{length},{cpus},{queue};".encode())
            cached = hasher.hexdigest()
            self.__dict__["_content_digest"] = cached
        return cached


@dataclass(frozen=True)
class FrozenSeries:
    """A hashable, picklable snapshot of an :class:`HourlySeries`.

    ``kind`` records whether the payload thaws back into a
    :class:`CarbonIntensityTrace` or a plain :class:`HourlySeries`
    (price traces).
    """

    hourly: tuple[float, ...]
    name: str
    kind: str = "CarbonIntensityTrace"

    @classmethod
    def freeze(cls, series: HourlySeries) -> "FrozenSeries":
        """Snapshot a live series (memoized per series object)."""
        cached = _SERIES_MEMO.get(series)
        if cached is None:
            kind = (
                "CarbonIntensityTrace"
                if isinstance(series, CarbonIntensityTrace)
                else "HourlySeries"
            )
            cached = cls(hourly=tuple(series.hourly.tolist()), name=series.name, kind=kind)
            _SERIES_MEMO[series] = cached
        return cached

    def thaw(self) -> HourlySeries:
        """Rebuild the live series this payload was frozen from."""
        if self.kind == "CarbonIntensityTrace":
            return CarbonIntensityTrace(self.hourly, name=self.name)
        if self.kind == "HourlySeries":
            return HourlySeries(self.hourly, name=self.name)
        raise ConfigError(f"unknown frozen series kind {self.kind!r}")

    def content_digest(self) -> str:
        """SHA-256 over the payload; equals the live series'
        :meth:`HourlySeries.content_digest` (same serialization)."""
        cached = self.__dict__.get("_content_digest")
        if cached is None:
            cached = self.thaw().content_digest()
            self.__dict__["_content_digest"] = cached
        return cached


def _freeze_eviction(model: EvictionModel | None) -> tuple:
    """Declarative tag for an eviction model (see :class:`SimulationSpec`)."""
    if model is None or isinstance(model, NoEvictions):
        return ("none",)
    if isinstance(model, DiurnalHazard):
        return ("diurnal", model.base_rate, model.amplitude, model.peak_hour)
    if isinstance(model, HourlyHazard):
        return ("hourly", model.hourly_rate)
    raise ConfigError(
        f"eviction model {type(model).__name__} cannot be expressed in a "
        "SimulationSpec; call run_simulation directly"
    )


def _thaw_eviction(tag: tuple) -> EvictionModel | None:
    """Rebuild an eviction model from its declarative tag."""
    kind = tag[0]
    if kind == "none":
        return None
    if kind == "hourly":
        return HourlyHazard(tag[1])
    if kind == "diurnal":
        return DiurnalHazard(tag[1], tag[2], tag[3])
    raise ConfigError(f"unknown eviction tag {tag!r}")


@dataclass(frozen=True)
class SimulationSpec:
    """One ``run_simulation`` call as a frozen, digest-able value.

    Build specs with :meth:`build` (which freezes live inputs and
    eviction/checkpointing objects into declarative tags), fan batches
    out with :func:`repro.simulator.runner.run_many`, or execute one
    in-process with :meth:`run`.

    ``eviction`` is ``("none",)``, ``("hourly", rate)`` or ``("diurnal",
    base, amplitude, peak_hour)``; ``forecast`` is ``("perfect",)`` or
    ``("noisy", sigma, seed)``; ``checkpointing`` is ``(interval,
    overhead)`` or ``None``.
    """

    workload: FrozenWorkload
    carbon: FrozenSeries
    policy: str
    policy_kwargs: tuple[tuple[str, object], ...] = ()
    reserved_cpus: int = 0
    queues: QueueSet | None = None
    pricing: PricingModel = DEFAULT_PRICING
    energy: EnergyModel = DEFAULT_ENERGY
    eviction: tuple = ("none",)
    forecast: tuple = ("perfect",)
    granularity: int = 5
    validate: bool = True
    spot_seed: int = 0
    checkpointing: tuple[int, int] | None = None
    retry_spot: bool = False
    instance_overhead_minutes: int = 0
    online_estimation: bool = False
    price_series: FrozenSeries | None = None
    memoize_decisions: bool | None = None
    fault_plan: FaultPlan | None = None

    @classmethod
    def build(
        cls,
        workload: WorkloadTrace,
        carbon: CarbonIntensityTrace,
        policy: str,
        policy_kwargs: dict | None = None,
        reserved_cpus: int = 0,
        queues: QueueSet | None = None,
        pricing: PricingModel = DEFAULT_PRICING,
        energy: EnergyModel = DEFAULT_ENERGY,
        eviction_model: EvictionModel | None = None,
        forecast_sigma: float = 0.0,
        forecast_seed: int = 0,
        granularity: int = 5,
        validate: bool = True,
        spot_seed: int = 0,
        checkpointing: CheckpointConfig | None = None,
        retry_spot: bool = False,
        instance_overhead_minutes: int = 0,
        online_estimation: bool = False,
        price_trace: HourlySeries | None = None,
        memoize_decisions: bool | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> "SimulationSpec":
        """Freeze the arguments of one ``run_simulation`` call.

        Accepts the same knobs as ``run_simulation`` except that the
        policy must be a registry spec string (wrapper kwargs go in
        ``policy_kwargs``, e.g. ``{"spot_max_length": 120}``).
        """
        if not isinstance(policy, str):
            raise ConfigError(
                "SimulationSpec needs a policy spec string (e.g. "
                "'res-first:carbon-time'); pass constructor kwargs via "
                "policy_kwargs"
            )
        return cls(
            workload=FrozenWorkload.freeze(workload),
            carbon=FrozenSeries.freeze(carbon),
            policy=policy,
            policy_kwargs=tuple(sorted((policy_kwargs or {}).items())),
            reserved_cpus=reserved_cpus,
            queues=queues,
            pricing=pricing,
            energy=energy,
            eviction=_freeze_eviction(eviction_model),
            forecast=(
                ("noisy", float(forecast_sigma), int(forecast_seed))
                if forecast_sigma > 0
                else ("perfect",)
            ),
            granularity=granularity,
            validate=validate,
            spot_seed=spot_seed,
            checkpointing=(
                (checkpointing.interval, checkpointing.overhead)
                if checkpointing is not None
                else None
            ),
            retry_spot=retry_spot,
            instance_overhead_minutes=instance_overhead_minutes,
            online_estimation=online_estimation,
            price_series=(
                FrozenSeries.freeze(price_trace) if price_trace is not None else None
            ),
            memoize_decisions=memoize_decisions,
            fault_plan=fault_plan,
        )

    def to_kwargs(self) -> dict:
        """The ``run_simulation`` keyword arguments this spec describes."""
        from repro.policies.registry import make_policy

        forecast_sigma = 0.0
        forecast_seed = 0
        if self.forecast[0] == "noisy":
            forecast_sigma, forecast_seed = self.forecast[1], self.forecast[2]
        elif self.forecast[0] != "perfect":
            raise ConfigError(f"unknown forecast tag {self.forecast!r}")
        return {
            "workload": self.workload.thaw(),
            "carbon": self.carbon.thaw(),
            "policy": make_policy(self.policy, **dict(self.policy_kwargs)),
            "reserved_cpus": self.reserved_cpus,
            "queues": self.queues,
            "pricing": self.pricing,
            "energy": self.energy,
            "eviction_model": _thaw_eviction(self.eviction),
            "forecast_sigma": forecast_sigma,
            "forecast_seed": forecast_seed,
            "granularity": self.granularity,
            "validate": self.validate,
            "spot_seed": self.spot_seed,
            "checkpointing": (
                CheckpointConfig(*self.checkpointing)
                if self.checkpointing is not None
                else None
            ),
            "retry_spot": self.retry_spot,
            "instance_overhead_minutes": self.instance_overhead_minutes,
            "online_estimation": self.online_estimation,
            "price_trace": (
                self.price_series.thaw() if self.price_series is not None else None
            ),
            "memoize_decisions": self.memoize_decisions,
            "fault_plan": self.fault_plan,
        }

    def run(self):
        """Execute this spec in-process and return the SimulationResult."""
        from repro.simulator.simulation import run_simulation

        return run_simulation(**self.to_kwargs())

    def digest(self) -> str:
        """SHA-256 content address of this spec.

        Covers the full input content (workload and carbon digests, not
        just names) and every knob, so two specs share a digest iff they
        describe bit-identical simulations.  Code-version salting is the
        cache layer's job (:meth:`ResultCache.key_for`), keeping spec
        digests comparable across code changes.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            parts = [
                "SimulationSpec",
                self.workload.content_digest(),
                self.carbon.content_digest(),
                self.policy,
                repr(self.policy_kwargs),
                str(self.reserved_cpus),
                repr(self.queues),
                repr(self.pricing),
                repr(self.energy),
                repr(self.eviction),
                repr(self.forecast),
                str(self.granularity),
                str(self.validate),
                str(self.spot_seed),
                repr(self.checkpointing),
                str(self.retry_spot),
                str(self.instance_overhead_minutes),
                str(self.online_estimation),
                (
                    self.price_series.content_digest()
                    if self.price_series is not None
                    else "-"
                ),
                repr(self.memoize_decisions),
                self.fault_plan.digest() if self.fault_plan is not None else "-",
            ]
            cached = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
            self.__dict__["_digest"] = cached
        return cached
