"""GAIA-Simulator: discrete-event cluster simulation and accounting."""

from __future__ import annotations

from repro.simulator.engine import Engine
from repro.simulator.results import (
    JobRecord,
    SimulationResult,
    UsageInterval,
    demand_profile,
)
from repro.simulator.runner import (
    ResultCache,
    RunStats,
    SimulationSpec,
    run_many,
)
from repro.simulator.session import EngineSession
from repro.simulator.simulation import build_engine, prepare_carbon, run_simulation
from repro.simulator.validation import assert_valid, verify_result

__all__ = [
    "verify_result",
    "assert_valid",
    "Engine",
    "EngineSession",
    "build_engine",
    "JobRecord",
    "SimulationResult",
    "UsageInterval",
    "demand_profile",
    "prepare_carbon",
    "run_simulation",
    "SimulationSpec",
    "run_many",
    "RunStats",
    "ResultCache",
]
