"""A deliberately simple reference engine for differential testing.

:class:`ReferenceEngine` re-implements GAIA scheduling and the
carbon/cost/energy accounting with **scalar, minute-by-minute loops and
no caching**: no event heap, no prefix-sum integration, no decision
memoization, no vectorized accounting.  It shares only the *interfaces*
with the optimized engine -- policies (:mod:`repro.policies`), traces
(:mod:`repro.carbon.trace`, :mod:`repro.workload.trace`), and the
cluster models (pricing, energy, eviction, checkpointing) -- so a bug in
the optimized engine's batched kernels (:meth:`Engine._interval_values`)
or event plumbing cannot hide in a shared helper.

The two engines must agree on every integer scheduling outcome exactly
(starts, finishes, usage intervals, evictions) and on every accounted
float within a small tolerance (the reference accumulates carbon, energy
and cost one simulated minute at a time, so only float summation order
differs).  :mod:`repro.difftest` fuzzes randomized scenarios through
both and diffs the results field by field.

Deliberately unsupported (the optimized engine's extras that are not
part of the differential contract): tracing, fault injection, online
length estimation, and custom forecaster factories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.carbon.forecast import Forecaster, NoisyForecaster, PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel, PurchaseOption
from repro.cluster.spot import CheckpointConfig, EvictionModel, NoEvictions
from repro.errors import ConfigError, SimulationError
from repro.policies.base import Decision, Policy, SchedulingContext, validate_decision
from repro.policies.registry import make_policy
from repro.simulator.results import JobRecord, SimulationResult, UsageInterval
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, QueueSet, default_queue_set
from repro.workload.trace import WorkloadTrace

__all__ = ["ReferenceEngine", "run_reference"]

# The optimized engine's same-minute ordering contract, restated here
# rather than imported: FINISH frees capacity first, EVICT restarts next,
# ARRIVAL decisions follow, planned STARTs run last.
_FINISH = 0
_EVICT = 1
_ARRIVAL = 2
_START = 3


@dataclass
class _RefRun:
    """Mutable execution state of one job inside the reference engine."""

    job: Job
    decision: Decision
    started: bool = False
    finished: bool = False
    segments: tuple[tuple[int, int], ...] | None = None
    segment_index: int = 0
    current_start: int | None = None
    current_option: PurchaseOption | None = None
    first_start: int | None = None
    usage: list[UsageInterval] = field(default_factory=list)
    evictions: int = 0
    lost_cpu_minutes: float = 0.0
    finish: int | None = None
    spot_rng: object = None
    completed_work: int = 0
    spot_attempts: int = 0
    checkpoint_overhead_minutes: float = 0.0
    pending_overhead: int = 0


class ReferenceEngine:
    """Minute-by-minute scalar simulator mirroring :class:`Engine` semantics.

    Construct with prepared inputs (use :func:`run_reference` for the
    full ``run_simulation``-equivalent preparation) and call :meth:`run`.
    """

    def __init__(
        self,
        workload: WorkloadTrace,
        carbon: CarbonIntensityTrace,
        policy: Policy,
        queues: QueueSet,
        reserved_cpus: int = 0,
        pricing: PricingModel = DEFAULT_PRICING,
        energy: EnergyModel = DEFAULT_ENERGY,
        eviction_model: EvictionModel | None = None,
        forecaster: Forecaster | None = None,
        granularity: int = 5,
        validate: bool = True,
        spot_seed: int = 0,
        checkpointing: CheckpointConfig | None = None,
        retry_spot: bool = False,
        max_spot_retries: int = 10,
        instance_overhead_minutes: int = 0,
    ):
        """Wire the prepared inputs together (no preparation happens here)."""
        self.workload = workload
        self.carbon = carbon
        self.policy = policy
        self.queues = queues
        self.reserved_capacity = int(reserved_cpus)
        self.reserved_free = int(reserved_cpus)
        if reserved_cpus < 0:
            raise SimulationError("reserved capacity must be non-negative")
        self.pricing = pricing
        self.energy = energy
        self.eviction_model = (
            eviction_model if eviction_model is not None else NoEvictions()
        )
        forecaster = forecaster if forecaster is not None else PerfectForecaster(carbon)
        if forecaster.trace is not carbon:
            raise SimulationError(
                "forecaster must be built over the simulation's carbon trace"
            )
        if granularity < 1:
            raise SimulationError(f"granularity must be >= 1 minute, got {granularity}")
        self.ctx = SchedulingContext(
            forecaster=forecaster, queues=queues, granularity=granularity
        )
        self.validate = validate
        self.spot_seed = spot_seed
        if retry_spot and checkpointing is None:
            raise SimulationError(
                "retry_spot without checkpointing cannot guarantee progress; "
                "configure a CheckpointConfig"
            )
        self.checkpointing = checkpointing
        self.retry_spot = retry_spot
        self.max_spot_retries = max_spot_retries
        if instance_overhead_minutes < 0:
            raise SimulationError("instance overhead must be non-negative")
        self.instance_overhead_minutes = instance_overhead_minutes

        # The only hoisting the reference allows itself: the repeated
        # ``hourly[minute // 60]`` lookup in the per-minute accounting
        # loops is precomputed into one per-minute array (a plain
        # ``np.repeat`` copy of the hourly values, no integration, no
        # prefix sums).  ``_ci_at`` MUST stay semantically minute-by-
        # minute -- one lookup per simulated minute, value equal to the
        # hour's CI -- because the engine-vs-reference diff relies on the
        # reference accumulating scalar minute contributions in order.
        self._ci_per_minute_g_per_kwh = np.repeat(carbon.hourly, MINUTES_PER_HOUR)

        # Scheduled actions: minute -> list of (kind, seq, payload), in
        # push order.  A plain dict of plain lists -- the reference
        # intentionally has no priority queue.
        self._due: dict[int, list[tuple[int, int, object]]] = {}
        self._next_seq = 0
        self._last_minute = 0
        self._pending: list[_RefRun] = []
        self._runs: list[_RefRun] = []

    # ------------------------------------------------------------------
    # Action plumbing
    # ------------------------------------------------------------------
    def _schedule(self, minute: int, kind: int, payload) -> None:
        """Append an action for ``minute`` (push order breaks kind ties)."""
        if minute < 0:
            raise SimulationError(f"action scheduled at negative time {minute}")
        self._due.setdefault(minute, []).append((kind, self._next_seq, payload))
        self._next_seq += 1
        if minute > self._last_minute:
            self._last_minute = minute

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Walk the clock one minute at a time and return the accounting."""
        for job in self.workload:
            self._schedule(job.arrival, _ARRIVAL, job)

        minute = 0
        while minute <= self._last_minute:
            actions = self._due.get(minute)
            while actions:
                # Pick the lowest (kind, seq) still due this minute; a
                # handler may append more same-minute actions, so re-scan
                # rather than iterating a snapshot.
                best = min(range(len(actions)), key=lambda i: actions[i][:2])
                kind, _, payload = actions.pop(best)
                if kind == _ARRIVAL:
                    self._on_arrival(minute, payload)
                elif kind == _START:
                    self._on_start(minute, payload)
                elif kind == _FINISH:
                    self._on_finish(minute, payload)
                else:
                    self._on_evict(minute, payload)
                actions = self._due.get(minute)
            self._due.pop(minute, None)
            minute += 1

        unfinished = [run.job.job_id for run in self._runs if not run.finished]
        if unfinished:
            shown = ", ".join(str(job_id) for job_id in unfinished[:5])
            more = ", ..." if len(unfinished) > 5 else ""
            raise SimulationError(f"jobs never finished: [{shown}{more}]")
        return self._build_result()

    # ------------------------------------------------------------------
    # Handlers (semantics mirror the optimized engine's contract)
    # ------------------------------------------------------------------
    def _on_arrival(self, now: int, job: Job) -> None:
        decision = self.policy.decide(job, self.ctx)
        if self.validate:
            validate_decision(job, decision, self.ctx)
        run = _RefRun(job=job, decision=decision, segments=decision.segments)
        self._runs.append(run)

        if decision.segments is not None:
            self._schedule(decision.segments[0][0], _START, ("segment", run))
            return
        if decision.reserved_pickup and self.reserved_free >= job.cpus:
            self._start_run(run, now, PurchaseOption.RESERVED)
            return
        if decision.reserved_pickup:
            self._pending.append(run)
        self._schedule(decision.start_time, _START, ("plain", run))

    def _on_start(self, now: int, payload) -> None:
        tag, run = payload
        if tag == "segment":
            self._start_segment(run, now)
            return
        if run.started:
            return  # already picked up by a freed reserved instance
        if run.decision.use_spot:
            option = PurchaseOption.SPOT
        elif self.reserved_free >= run.job.cpus:
            option = PurchaseOption.RESERVED
        else:
            option = PurchaseOption.ON_DEMAND
        self._start_run(run, now, option)

    def _on_finish(self, now: int, run: _RefRun) -> None:
        self._close_interval(run, now)
        if run.pending_overhead:
            run.checkpoint_overhead_minutes += run.pending_overhead * run.job.cpus
            run.pending_overhead = 0
        if run.segments is not None:
            run.segment_index += 1
            if run.segment_index < len(run.segments):
                self._schedule(
                    run.segments[run.segment_index][0], _START, ("segment", run)
                )
            else:
                self._finalize(run, now)
        else:
            self._finalize(run, now)
        self._drain_pending(now)

    def _on_evict(self, now: int, run: _RefRun) -> None:
        if run.finished or run.current_option is not PurchaseOption.SPOT:
            raise SimulationError(f"spurious eviction for job {run.job.job_id}")
        if run.current_start is None:
            raise SimulationError(f"evicted job {run.job.job_id} has no open interval")
        elapsed = now - run.current_start
        preserved = 0
        if self.checkpointing is not None and run.segments is None:
            work_at_stake = run.job.length - run.completed_work
            preserved = self.checkpointing.preserved_work(elapsed, work_at_stake)
        run.completed_work += preserved
        run.lost_cpu_minutes += (elapsed - preserved) * run.job.cpus
        run.pending_overhead = 0
        run.evictions += 1
        self._close_interval(run, now)
        run.segments = None
        if self.retry_spot and run.spot_attempts < self.max_spot_retries:
            option = PurchaseOption.SPOT
        elif self.reserved_free >= run.job.cpus:
            option = PurchaseOption.RESERVED
        else:
            option = PurchaseOption.ON_DEMAND
        self._allocate_remaining(run, now, option)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def _start_run(self, run: _RefRun, now: int, option: PurchaseOption) -> None:
        run.started = True
        if run.first_start is None:
            run.first_start = now
        self._allocate_remaining(run, now, option)

    def _allocate_remaining(self, run: _RefRun, now: int, option: PurchaseOption) -> None:
        work = run.job.length - run.completed_work
        if option is PurchaseOption.SPOT and self.checkpointing is not None:
            wall = self.checkpointing.wall_time(work)
        else:
            wall = work
        run.pending_overhead = wall - work
        self._allocate(run, now, option, wall)

    def _allocate(self, run: _RefRun, now: int, option: PurchaseOption, duration: int) -> None:
        if option is PurchaseOption.RESERVED:
            if self.reserved_free < run.job.cpus:
                raise SimulationError("reserved pool oversubscribed")
            self.reserved_free -= run.job.cpus
        if option is PurchaseOption.SPOT:
            run.spot_attempts += 1
        run.current_start = now
        run.current_option = option
        finish = now + duration
        if option is PurchaseOption.SPOT:
            if run.spot_rng is None:
                run.spot_rng = self.eviction_model.rng_for_job(
                    self.spot_seed, run.job.job_id
                )
            offset = self.eviction_model.sample_eviction(now, run.spot_rng)
            if not math.isinf(offset):
                evict_at = now + max(1, int(round(offset)))
                if evict_at < finish:
                    self._schedule(evict_at, _EVICT, run)
                    return
        self._schedule(finish, _FINISH, run)

    def _start_segment(self, run: _RefRun, now: int) -> None:
        if run.finished or run.segments is None:
            return  # plan abandoned after a spot eviction; stale action
        start, end = run.segments[run.segment_index]
        if now != start:
            raise SimulationError("segment start drifted")
        if run.first_start is None:
            run.first_start = now
        run.started = True
        if run.decision.use_spot:
            option = PurchaseOption.SPOT
        elif self.reserved_free >= run.job.cpus:
            option = PurchaseOption.RESERVED
        else:
            option = PurchaseOption.ON_DEMAND
        self._allocate(run, now, option, end - start)

    def _close_interval(self, run: _RefRun, now: int) -> None:
        if run.current_start is None or run.current_option is None:
            raise SimulationError(f"job {run.job.job_id} has no open interval")
        if now > run.current_start:
            run.usage.append(
                UsageInterval(
                    start=run.current_start,
                    end=now,
                    cpus=run.job.cpus,
                    option=run.current_option,
                )
            )
        if run.current_option is PurchaseOption.RESERVED:
            self.reserved_free += run.job.cpus
        run.current_start = None
        run.current_option = None

    def _finalize(self, run: _RefRun, now: int) -> None:
        run.finished = True
        run.finish = now

    def _drain_pending(self, now: int) -> None:
        if not self._pending or self.reserved_free == 0:
            return
        still_pending = []
        for run in self._pending:
            if run.started or run.finished:
                continue
            if self.reserved_free >= run.job.cpus:
                self._start_run(run, now, PurchaseOption.RESERVED)
            else:
                still_pending.append(run)
        self._pending = still_pending

    # ------------------------------------------------------------------
    # Accounting: one simulated minute at a time, no prefix sums
    # ------------------------------------------------------------------
    def _ci_at(self, minute: int) -> float:
        """True carbon intensity (g/kWh) of the hour containing ``minute``.

        Reads the hoisted per-minute array -- an exact copy of
        ``hourly[minute // 60]``, so still one scalar lookup per minute.
        """
        values = self._ci_per_minute_g_per_kwh
        if minute >= values.size:
            raise SimulationError(
                f"accounting minute {minute} beyond carbon horizon "
                f"{self.carbon.horizon_minutes}"
            )
        return float(values[minute])

    def _minute_carbon_g(self, start: int, end: int, kw: float) -> float:
        """Grams of CO2eq emitted by a ``kw`` draw over ``[start, end)``."""
        total_g = 0.0
        for minute in range(start, end):
            total_g += kw * self._ci_at(minute) / MINUTES_PER_HOUR
        return total_g

    def _record_for(self, run: _RefRun) -> JobRecord:
        """Scalar accounting of one finished run into a :class:`JobRecord`."""
        job = run.job
        kw = self.energy.active_kw(job.cpus)
        carbon_g = 0.0
        energy_kwh = 0.0
        usage_cost = 0.0
        provisioning = 0.0
        for interval in run.usage:
            rate_usd_per_hour = (
                0.0
                if interval.option is PurchaseOption.RESERVED
                else self.pricing.hourly_rate(interval.option)
            )
            for minute in range(interval.start, interval.end):
                carbon_g += kw * self._ci_at(minute) / MINUTES_PER_HOUR
                energy_kwh += kw / MINUTES_PER_HOUR
                usage_cost += rate_usd_per_hour * interval.cpus / MINUTES_PER_HOUR
            if (
                self.instance_overhead_minutes
                and interval.option is not PurchaseOption.RESERVED
            ):
                overhead = self.instance_overhead_minutes
                provisioning += overhead * job.cpus
                usage_cost += self.pricing.usage_cost(interval.option, overhead * job.cpus)
                energy_kwh += self.energy.energy_kwh(job.cpus, overhead)
                carbon_g += (
                    self._ci_at(interval.start) * kw * overhead / MINUTES_PER_HOUR
                )
        baseline_end = min(job.arrival + job.length, self.carbon.horizon_minutes)
        baseline_g = self._minute_carbon_g(job.arrival, baseline_end, kw)
        return JobRecord(
            job_id=job.job_id,
            queue=job.queue,
            arrival=job.arrival,
            length=job.length,
            cpus=job.cpus,
            first_start=run.first_start if run.first_start is not None else job.arrival,
            finish=run.finish if run.finish is not None else job.arrival + job.length,
            carbon_g=carbon_g,
            energy_kwh=energy_kwh,
            usage_cost=usage_cost,
            baseline_carbon_g=baseline_g,
            usage=tuple(run.usage),
            evictions=run.evictions,
            lost_cpu_minutes=run.lost_cpu_minutes,
            checkpoint_overhead_minutes=run.checkpoint_overhead_minutes,
            provisioning_cpu_minutes=provisioning,
        )

    def _build_result(self) -> SimulationResult:
        """Assemble the :class:`SimulationResult` from per-run accounting."""
        records = [self._record_for(run) for run in self._runs]
        return SimulationResult(
            policy_name=self.policy.name,
            workload_name=self.workload.name,
            region=self.carbon.name,
            reserved_cpus=self.reserved_capacity,
            horizon=self.workload.horizon,
            pricing=self.pricing,
            records=tuple(records),
        )


def run_reference(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: Policy | str,
    reserved_cpus: int = 0,
    queues: QueueSet | None = None,
    pricing: PricingModel = DEFAULT_PRICING,
    energy: EnergyModel = DEFAULT_ENERGY,
    eviction_model: EvictionModel | None = None,
    forecast_sigma: float = 0.0,
    forecast_seed: int = 0,
    granularity: int = 5,
    validate: bool = True,
    spot_seed: int = 0,
    checkpointing: CheckpointConfig | None = None,
    retry_spot: bool = False,
    instance_overhead_minutes: int = 0,
    **unsupported,
) -> SimulationResult:
    """Reference-engine counterpart of :func:`run_simulation`.

    Performs the same preparation (queue routing and averaging, carbon
    tiling, forecaster construction) with straight-line code, then runs
    the :class:`ReferenceEngine`.  Accepts the optimized entry point's
    keyword surface so ``run_reference(**spec.to_kwargs())`` works, but
    rejects any knob the reference deliberately does not implement
    (tracing, fault plans, online estimation, forecaster factories).
    """
    # Decisions are pure, so caching can't matter; fast_path selects
    # between two bit-identical optimized code paths the reference is the
    # oracle for either way.
    ignorable = {"memoize_decisions", "fast_path"}
    rejected = {
        "forecaster_factory",
        "online_estimation",
        "price_trace",
        "tracer",
        "fault_plan",
    }
    for name, value in unsupported.items():
        if name in ignorable:
            continue
        if name not in rejected:
            raise ConfigError(f"run_reference got an unknown knob {name!r}")
        if value is not None and value is not False:
            raise ConfigError(
                f"the reference engine does not support {name!r}; it exists "
                "to differentially test the unfaulted simulation core"
            )
    if isinstance(policy, str):
        policy = make_policy(policy)
    if not isinstance(policy, Policy):
        raise ConfigError(f"policy must be a Policy or spec string, got {policy!r}")

    queues = queues if queues is not None else default_queue_set()
    if len(workload):
        longest = max(job.length for job in workload)
        if longest > queues.longest.max_length:
            raise ConfigError(
                f"workload has a {longest}-minute job exceeding the longest "
                f"queue bound {queues.longest.max_length}; widen the queue set"
            )
    queues = queues.with_averages(workload.jobs)
    workload = workload.with_queues(queues)

    # Worst-case coverage, recomputed from first principles: every job
    # must stay inside known carbon data even after waiting its full W
    # and redoing evicted work (spot retries and checkpoint overhead
    # widen the redo factor exactly as the optimized preparation does).
    redo_factor = 2
    if retry_spot:
        redo_factor += 11
    if checkpointing is not None:
        redo_factor *= 2
    max_length = max((job.length for job in workload), default=0)
    required_minutes = (
        workload.horizon
        + redo_factor * max_length
        + queues.max_wait
        + MINUTES_PER_HOUR
    )
    covering = carbon
    if covering.horizon_minutes < required_minutes:
        needed_hours = -(-required_minutes // MINUTES_PER_HOUR)
        covering = covering.tile_to(needed_hours)

    forecaster: Forecaster
    if forecast_sigma > 0:
        forecaster = NoisyForecaster(covering, sigma=forecast_sigma, seed=forecast_seed)
    else:
        forecaster = PerfectForecaster(covering)

    engine = ReferenceEngine(
        workload=workload,
        carbon=covering,
        policy=policy,
        queues=queues,
        reserved_cpus=reserved_cpus,
        pricing=pricing,
        energy=energy,
        eviction_model=eviction_model,
        forecaster=forecaster,
        granularity=granularity,
        validate=validate,
        spot_seed=spot_seed,
        checkpointing=checkpointing,
        retry_spot=retry_spot,
        instance_overhead_minutes=instance_overhead_minutes,
    )
    return engine.run()
