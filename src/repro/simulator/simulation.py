"""High-level simulation façade.

:func:`run_simulation` wires together a workload trace, a carbon trace,
and a policy spec, taking care of the preparation steps every experiment
needs:

* route jobs to queues and compute the queues' historical average
  lengths from the trace (the coarse knowledge Lowest-Window and
  Carbon-Time rely on);
* extend the carbon trace so every job -- including one that waits its
  full W, is evicted at the last minute, and reruns -- stays inside
  known carbon data;
* build the forecaster (perfect by default, as in the paper).
"""

from __future__ import annotations

from repro.carbon.forecast import Forecaster, NoisyForecaster, PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel
from repro.cluster.spot import CheckpointConfig, EvictionModel
from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    apply_input_faults,
    apply_process_faults,
    engine_injector,
    wrap_eviction,
    wrap_forecaster,
)
from repro.obs.tracer import Tracer, tracer_from_env
from repro.policies.base import Policy
from repro.policies.registry import make_policy
from repro.simulator.engine import Engine
from repro.simulator.results import SimulationResult
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import QueueSet, default_queue_set
from repro.workload.trace import WorkloadTrace

__all__ = ["prepare_carbon", "build_engine", "run_simulation"]


def prepare_carbon(
    carbon: CarbonIntensityTrace,
    workload: WorkloadTrace,
    queues: QueueSet,
    redo_factor: int = 2,
) -> CarbonIntensityTrace:
    """Tile the carbon trace to cover every feasible execution.

    The latest any job can finish is bounded by: its arrival, plus its
    queue's maximum wait, plus ``redo_factor`` times its length (a job
    evicted at the very end of its spot run is fully redone; spot
    retries and checkpoint overhead raise the factor).  One extra hour
    absorbs slot rounding.
    """
    slack = redo_factor * workload.max_length + queues.max_wait + MINUTES_PER_HOUR
    required_minutes = workload.horizon + slack
    if carbon.horizon_minutes >= required_minutes:
        return carbon
    return carbon.tile_to(-(-required_minutes // MINUTES_PER_HOUR))


def build_engine(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: Policy | str,
    reserved_cpus: int = 0,
    queues: QueueSet | None = None,
    pricing: PricingModel = DEFAULT_PRICING,
    energy: EnergyModel = DEFAULT_ENERGY,
    eviction_model: EvictionModel | None = None,
    forecast_sigma: float = 0.0,
    forecast_seed: int = 0,
    granularity: int = 5,
    validate: bool = True,
    spot_seed: int = 0,
    checkpointing: CheckpointConfig | None = None,
    retry_spot: bool = False,
    instance_overhead_minutes: int = 0,
    forecaster_factory=None,
    online_estimation: bool = False,
    price_trace=None,
    memoize_decisions: bool | None = None,
    tracer: Tracer | None = None,
    fault_plan: FaultPlan | None = None,
    fast_path: bool = True,
) -> Engine:
    """Build a ready-to-run :class:`Engine` from experiment-level knobs.

    This is the preparation half of :func:`run_simulation`: queue
    routing and historical averages, carbon-trace coverage, forecaster
    construction, and fault-plan application -- everything between "I
    have a workload and a region" and a constructed engine.  Callers
    that need the batch result keep using :func:`run_simulation`;
    callers that need incremental stepping (the online scheduler
    service, the session parity suite) call this and then
    :meth:`Engine.open`.

    ``tracer`` is passed through as-is (``None`` means the no-op null
    tracer); environment-variable tracer resolution and its close-on-end
    ownership live in :func:`run_simulation`.
    """
    apply_process_faults(fault_plan)
    carbon = apply_input_faults(fault_plan, carbon)
    if isinstance(policy, str):
        policy = make_policy(policy)
    if not isinstance(policy, Policy):
        raise ConfigError(f"policy must be a Policy or spec string, got {policy!r}")

    queues = queues if queues is not None else default_queue_set()
    longest = workload.max_length
    if longest > queues.longest.max_length:
        raise ConfigError(
            f"workload has a {longest}-minute job exceeding the longest queue "
            f"bound {queues.longest.max_length}; widen the queue set"
        )
    estimator = None
    if online_estimation:
        # No oracle averages: the scheduler learns lengths from
        # completions, cold-starting at the queue bounds.
        from repro.workload.estimation import OnlineLengthEstimator

        estimator = OnlineLengthEstimator(queues)
        workload = workload.with_queues(queues)
    else:
        queues = workload.queues_with_averages(queues)
        workload = workload.with_queues(queues)
    # Spot retries and checkpoint overhead extend the worst-case tail.
    redo_factor = 2
    if retry_spot:
        redo_factor += 11  # engine default: up to 10 spot retries
    if checkpointing is not None:
        redo_factor *= 2
    covering = prepare_carbon(carbon, workload, queues, redo_factor=redo_factor)

    forecaster: Forecaster
    if forecaster_factory is not None:
        if forecast_sigma > 0:
            raise ConfigError("pass either forecast_sigma or forecaster_factory")
        forecaster = forecaster_factory(covering)
        if not isinstance(forecaster, Forecaster):
            raise ConfigError("forecaster_factory must build a Forecaster")
    elif forecast_sigma > 0:
        forecaster = NoisyForecaster(covering, sigma=forecast_sigma, seed=forecast_seed)
    else:
        forecaster = PerfectForecaster(covering)
    forecaster = wrap_forecaster(fault_plan, forecaster)
    eviction_model = wrap_eviction(fault_plan, eviction_model)

    return Engine(
        workload=workload,
        carbon=covering,
        policy=policy,
        queues=queues,
        reserved_cpus=reserved_cpus,
        pricing=pricing,
        energy=energy,
        eviction_model=eviction_model,
        forecaster=forecaster,
        granularity=granularity,
        validate=validate,
        spot_seed=spot_seed,
        checkpointing=checkpointing,
        retry_spot=retry_spot,
        instance_overhead_minutes=instance_overhead_minutes,
        length_estimator=estimator,
        price_forecaster=_price_forecaster_for(price_trace, covering),
        memoize_decisions=memoize_decisions,
        tracer=tracer,
        fault_injector=engine_injector(fault_plan),
        fast_path=fast_path,
    )


def run_simulation(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: Policy | str,
    reserved_cpus: int = 0,
    queues: QueueSet | None = None,
    pricing: PricingModel = DEFAULT_PRICING,
    energy: EnergyModel = DEFAULT_ENERGY,
    eviction_model: EvictionModel | None = None,
    forecast_sigma: float = 0.0,
    forecast_seed: int = 0,
    granularity: int = 5,
    validate: bool = True,
    spot_seed: int = 0,
    checkpointing: CheckpointConfig | None = None,
    retry_spot: bool = False,
    instance_overhead_minutes: int = 0,
    forecaster_factory=None,
    online_estimation: bool = False,
    price_trace=None,
    memoize_decisions: bool | None = None,
    tracer: Tracer | None = None,
    fault_plan: FaultPlan | None = None,
    fast_path: bool = True,
) -> SimulationResult:
    """Run one policy over one workload/region and return the accounting.

    Parameters mirror the paper's experiment knobs: ``reserved_cpus`` is
    the pre-paid pool size, ``eviction_model`` the spot market behaviour,
    ``forecast_sigma`` > 0 switches to noisy CI forecasts (ablation), and
    ``granularity`` the candidate start-time spacing in minutes.
    ``memoize_decisions`` overrides the engine's default of caching
    decisions for stateless policies (never cached under online
    estimation, whose length estimates drift within a run).

    ``tracer`` enables the observability layer for this run (see
    ``docs/observability.md``); ``None`` consults ``$REPRO_TRACE`` via
    :func:`repro.obs.tracer.tracer_from_env` and defaults to the no-op
    null tracer, which leaves results and timings untouched.

    ``fast_path`` (default on) enables the engine's array-native fast
    path -- batched decision precomputation and the linear schedule for
    contention-free runs -- which is bit-identical to the per-arrival
    scalar path; ``False`` forces the scalar path (the digest-parity
    suite runs both and compares).

    ``fault_plan`` injects deterministic faults (see
    ``docs/robustness.md``): process faults fire immediately, input
    faults corrupt the carbon trace before preparation (so a truncated
    trace is re-tiled like any short trace would be), forecast and
    eviction faults wrap the respective components, and queue corruption
    arms the engine's mid-run injector.  ``None`` and the empty plan run
    byte-identically to an unfaulted build.
    """
    owns_tracer = False
    if tracer is None:
        tracer = tracer_from_env()
        owns_tracer = tracer.enabled
    engine = build_engine(
        workload,
        carbon,
        policy,
        reserved_cpus=reserved_cpus,
        queues=queues,
        pricing=pricing,
        energy=energy,
        eviction_model=eviction_model,
        forecast_sigma=forecast_sigma,
        forecast_seed=forecast_seed,
        granularity=granularity,
        validate=validate,
        spot_seed=spot_seed,
        checkpointing=checkpointing,
        retry_spot=retry_spot,
        instance_overhead_minutes=instance_overhead_minutes,
        forecaster_factory=forecaster_factory,
        online_estimation=online_estimation,
        price_trace=price_trace,
        memoize_decisions=memoize_decisions,
        tracer=tracer,
        fault_plan=fault_plan,
        fast_path=fast_path,
    )
    try:
        return engine.run()
    finally:
        # Close (flush) only tracers this call created from the
        # environment; caller-supplied tracers stay open for reuse.
        if owns_tracer:
            tracer.close()


def _price_forecaster_for(price_trace, carbon: CarbonIntensityTrace):
    """Wrap a price series for the price-aware policies (or None).

    The series is tiled to the (already prepared) carbon horizon so both
    forecasters cover identical windows; prices are typically published
    day-ahead, so a perfect view is realistic.
    """
    if price_trace is None:
        return None
    tiled = price_trace.tile_to(carbon.num_hours)
    return PerfectForecaster(tiled)
