"""Post-hoc verification of simulation results.

The engine enforces capacity conservation while running; this module
re-derives the accounting invariants from a finished
:class:`SimulationResult` so users extending the simulator (new
policies, new purchase options) can check their changes didn't bend the
books.  ``verify_result`` returns human-readable violation strings —
empty means clean — and ``assert_valid`` raises on the first problem.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.pricing import PurchaseOption
from repro.errors import SimulationError
from repro.simulator.results import SimulationResult, demand_profile
from repro.units import MINUTES_PER_HOUR

__all__ = ["verify_result", "assert_valid"]


def verify_result(
    result: SimulationResult,
    queues=None,
    tolerance: float = 1e-6,
) -> list[str]:
    """Check every accounting invariant; return violations (empty = ok).

    Checked per job: occupancy conservation (usage = length + lost +
    checkpoint overhead), chronology (arrival <= first start, ordered
    disjoint usage, finish = last usage end), non-negative waiting, and
    evictions implying spot usage.  Checked cluster-wide: the reserved
    pool is never oversubscribed, and metered cost matches a recomputation
    from usage (modulo provisioning overhead, which is additive).

    ``queues`` (a :class:`QueueSet`) additionally enables the waiting-
    bound check: no job waits more than its queue's W plus its redone/
    overhead time (one hour of slot-rounding slack).
    """
    violations: list[str] = []

    def flag(job_id, message):
        violations.append(f"job {job_id}: {message}")

    recomputed_cost = 0.0
    for record in result.records:
        usage = sorted(record.usage, key=lambda interval: interval.start)
        occupancy = sum(interval.end - interval.start for interval in usage)
        expected = (
            record.length
            + record.lost_cpu_minutes / record.cpus
            + record.checkpoint_overhead_minutes / record.cpus
        )
        if abs(occupancy - expected) > tolerance:
            flag(record.job_id, f"occupancy {occupancy} != expected {expected}")
        if usage:
            if usage[0].start < record.first_start:
                flag(record.job_id, "usage precedes first_start")
            if usage[-1].end != record.finish:
                flag(record.job_id, "finish does not match last usage end")
            for before, after in zip(usage, usage[1:]):
                if after.start < before.end:
                    flag(record.job_id, "overlapping usage intervals")
        if record.first_start < record.arrival:
            flag(record.job_id, "started before arrival")
        if record.waiting_time < 0:
            flag(record.job_id, "negative waiting time")
        if record.evictions and PurchaseOption.SPOT not in record.options_used:
            flag(record.job_id, "evictions recorded without spot usage")
        for interval in usage:
            recomputed_cost += result.pricing.usage_cost(
                interval.option, interval.cpu_minutes
            )
        if queues is not None and record.queue:
            bound = (
                queues[record.queue].max_wait
                + record.lost_cpu_minutes / record.cpus
                + record.checkpoint_overhead_minutes / record.cpus
                + MINUTES_PER_HOUR
            )
            if record.waiting_time > bound + tolerance:
                flag(record.job_id, f"waiting {record.waiting_time} exceeds bound {bound}")

    # Metered cost is at least the recomputed usage cost (provisioning
    # overhead legitimately adds on top).
    if result.metered_cost + tolerance < recomputed_cost:
        violations.append(
            f"metered cost {result.metered_cost} below recomputed usage "
            f"cost {recomputed_cost}"
        )

    if result.reserved_cpus >= 0 and result.records:
        horizon = max(record.finish for record in result.records)
        reserved = demand_profile(
            result.records, horizon, option=PurchaseOption.RESERVED
        )
        peak = float(reserved.max()) if reserved.size else 0.0
        if peak > result.reserved_cpus + tolerance:
            violations.append(
                f"reserved pool oversubscribed: peak {peak} > {result.reserved_cpus}"
            )

    if not np.isfinite(result.total_carbon_g) or result.total_carbon_g < 0:
        violations.append("total carbon is negative or non-finite")
    if not np.isfinite(result.total_energy_kwh) or result.total_energy_kwh < 0:
        violations.append("total energy is negative or non-finite")
    if not np.isfinite(result.metered_cost) or result.metered_cost < 0:
        violations.append("metered cost is negative or non-finite")
    for record in result.records:
        per_job = (record.carbon_g, record.energy_kwh, record.usage_cost)
        if not all(np.isfinite(value) and value >= 0 for value in per_job):
            flag(record.job_id, "negative or non-finite accounting values")
    return violations


def assert_valid(result: SimulationResult, queues=None) -> None:
    """Raise :class:`SimulationError` on the first invariant violation."""
    violations = verify_result(result, queues=queues)
    if violations:
        raise SimulationError(
            f"{len(violations)} invariant violation(s); first: {violations[0]}"
        )
