"""Fig. 16 -- normalized vs *total* carbon savings across regions.

Alibaba workload, Carbon-Time policy.  The paper's point: normalized
savings mislead across regions -- a high-CI region with modest relative
savings can avoid more absolute kgCO2eq than a low-CI region with larger
relative savings, so users should weigh total reductions when picking a
region/trade-off configuration.
"""

from __future__ import annotations

from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 16 normalized-vs-total comparison."""
    workload = setup.year_workload("alibaba", scale)
    rows = []
    for region in setup.EVAL_REGIONS:
        carbon_trace = setup.carbon_for(region)
        baseline = run_simulation(workload, carbon_trace, "nowait", reserved_cpus=0)
        result = run_simulation(workload, carbon_trace, "carbon-time", reserved_cpus=0)
        rows.append(
            {
                "region": region,
                "normalized_carbon": result.total_carbon_kg / baseline.total_carbon_kg,
                "saved_kg": baseline.total_carbon_kg - result.total_carbon_kg,
                "baseline_kg": baseline.total_carbon_kg,
            }
        )
    return ExperimentResult(
        experiment_id="fig16",
        title="Normalized and total saved carbon by region (Alibaba, Carbon-Time)",
        rows=rows,
        notes=(
            "paper: ON-CA and KY-US save the same total kg while their "
            "normalized savings differ ~20% -- judge by total reduction"
        ),
    )
