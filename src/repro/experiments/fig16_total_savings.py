"""Fig. 16 -- normalized vs *total* carbon savings across regions.

Alibaba workload, Carbon-Time policy.  The paper's point: normalized
savings mislead across regions -- a high-CI region with modest relative
savings can avoid more absolute kgCO2eq than a low-CI region with larger
relative savings, so users should weigh total reductions when picking a
region/trade-off configuration.
"""

from __future__ import annotations

from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 16 normalized-vs-total comparison."""
    workload = setup.year_workload("alibaba", scale)
    specs = [
        SimulationSpec.build(workload, setup.carbon_for(region), policy, reserved_cpus=0)
        for region in setup.EVAL_REGIONS
        for policy in ("nowait", "carbon-time")
    ]
    results = sweep(specs)
    rows = []
    for index, region in enumerate(setup.EVAL_REGIONS):
        baseline, result = results[2 * index], results[2 * index + 1]
        rows.append(
            {
                "region": region,
                "normalized_carbon": result.total_carbon_kg / baseline.total_carbon_kg,
                "saved_kg": baseline.total_carbon_kg - result.total_carbon_kg,
                "baseline_kg": baseline.total_carbon_kg,
            }
        )
    return ExperimentResult(
        experiment_id="fig16",
        title="Normalized and total saved carbon by region (Alibaba, Carbon-Time)",
        rows=rows,
        notes=(
            "paper: ON-CA and KY-US save the same total kg while their "
            "normalized savings differ ~20% -- judge by total reduction"
        ),
    )
