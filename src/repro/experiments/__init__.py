"""Experiment layer: one module per paper figure/table.

Use :func:`repro.experiments.run_experiment` (or the per-figure modules'
``run``) to regenerate a figure's data rows; ``ExperimentResult.render``
prints them as a table.  Sizes are controlled by ``REPRO_SCALE``.
"""

from __future__ import annotations

from repro.experiments import setup
from repro.experiments.base import SCALES, ExperimentResult, Scale, current_scale
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "setup",
    "ExperimentResult",
    "Scale",
    "SCALES",
    "current_scale",
    "EXPERIMENTS",
    "run_experiment",
]
