"""Fig. 1 -- grid carbon intensity varies in time and space.

The paper plots three days of CI for California, Ontario, and the
Netherlands, annotating a 3.37x temporal (within-day) variation and up to
9x spatial variation across regions.  This experiment reports, per
region, the three-day mean/min/max and within-day swing, plus the
cross-region spatial ratio.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.regions import region_trace
from repro.carbon.stats import spatial_variation, temporal_variation
from repro.experiments.base import ExperimentResult
from repro.units import HOURS_PER_DAY

__all__ = ["run"]

REGIONS = ("CA-US", "ON-CA", "NL")
DAYS = 3


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 1 statistics (scale-independent)."""
    traces = [region_trace(name).slice_hours(0, DAYS * HOURS_PER_DAY) for name in REGIONS]
    rows = []
    for trace in traces:
        rows.append(
            {
                "region": trace.name,
                "mean_ci": float(np.mean(trace.hourly)),
                "min_ci": float(np.min(trace.hourly)),
                "max_ci": float(np.max(trace.hourly)),
                "daily_swing": temporal_variation(trace),
            }
        )
    spatial = spatial_variation(traces)
    return ExperimentResult(
        experiment_id="fig01",
        title="Grid carbon intensity: temporal and spatial variation",
        rows=rows,
        notes=(
            f"max spatial variation across regions: {spatial:.2f}x "
            "(paper: up to 9x; paper CA daily swing: 3.37x)"
        ),
        extras={"spatial_variation": spatial},
    )
