"""Fig. 17 -- reserved-pool economics across workload traces.

Each year-long trace gets a reserved pool equal to its mean demand (the
paper's cost-efficient anchor), South Australia CI.  Paper findings:
AllWait-Threshold is cheapest (up to 46% saved) and dirtiest; Ecovisor is
the most expensive; RES-First-Carbon-Time lands within ~9% of AllWait's
cost while approaching Ecovisor's carbon; demand variability (Mustang
CoV ~0.8 vs Azure ~0.3) trades cost savings for scheduling flexibility
and carbon savings.
"""

from __future__ import annotations

from repro.analysis.normalize import normalize_to_max
from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec

__all__ = ["run", "POLICIES", "FAMILIES"]

POLICIES = (
    "allwait-threshold",
    "ecovisor",
    "carbon-time",
    "res-first:carbon-time",
)
FAMILIES = ("mustang", "alibaba", "azure")


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 17 trace x policy reserved comparison."""
    carbon_trace = setup.carbon_for("SA-AU")
    workloads = {family: setup.year_workload(family, scale) for family in FAMILIES}
    reserved_used = {
        family: int(round(workload.mean_demand))
        for family, workload in workloads.items()
    }
    specs = [
        SimulationSpec.build(
            workloads[family], carbon_trace, spec, reserved_cpus=reserved_used[family]
        )
        for family in FAMILIES
        for spec in POLICIES
    ]
    all_results = sweep(specs)
    rows = []
    for family_index, family in enumerate(FAMILIES):
        workload = workloads[family]
        reserved = reserved_used[family]
        results = dict(
            zip(POLICIES, all_results[family_index * len(POLICIES):][: len(POLICIES)])
        )
        norm_cost = normalize_to_max({s: r.total_cost for s, r in results.items()})
        norm_carbon = normalize_to_max({s: r.total_carbon_kg for s, r in results.items()})
        for spec in POLICIES:
            result = results[spec]
            rows.append(
                {
                    "trace": family,
                    "reserved": reserved,
                    "policy": result.policy_name,
                    "normalized_cost": norm_cost[spec],
                    "normalized_carbon": norm_carbon[spec],
                    "demand_cov": workload.demand_cov(),
                }
            )
    return ExperimentResult(
        experiment_id="fig17",
        title="Cost and carbon with R = mean demand, by trace (SA-AU, year)",
        rows=rows,
        notes=(
            "paper: AllWait cheapest/dirtiest, Ecovisor most expensive, "
            "RES-First-Carbon-Time bridges; high demand CoV (Mustang) -> "
            "less cost saving but more carbon saving"
        ),
        extras={"reserved_used": reserved_used},
    )
