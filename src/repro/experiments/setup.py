"""Canonical experiment inputs (paper Section 6.1), cached per scale.

Provides the workloads and carbon traces every figure module consumes:
the three trace families put through the paper's sampling pipeline, the
six regions' CI traces, and the paper's default queue/waiting
configuration.
"""

from __future__ import annotations

from functools import lru_cache

from repro.carbon.regions import region_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ConfigError
from repro.experiments.base import current_scale
from repro.units import MINUTES_PER_DAY, hours
from repro.workload.job import QueueSet, default_queue_set
from repro.workload.sampling import week_long_trace, year_long_trace
from repro.workload.synthetic import TRACE_FAMILIES
from repro.workload.trace import WorkloadTrace

__all__ = [
    "raw_trace",
    "year_workload",
    "week_workload",
    "carbon_for",
    "fine_grained_queues",
    "EVAL_REGIONS",
    "DEFAULT_SEED",
    "current_scale_name",
    "default_queues",
]

#: Regions of the large-scale evaluation (Figs. 15-16), paper order.
EVAL_REGIONS: tuple[str, ...] = ("SA-AU", "ON-CA", "CA-US", "NL", "KY-US")

#: Seed used by all canonical experiment inputs.
DEFAULT_SEED = 1


def current_scale_name(override: str | None = None) -> str:
    """Resolve the active scale name (see :func:`current_scale`)."""
    return current_scale(override).name


@lru_cache(maxsize=16)
def raw_trace(family: str, scale_name: str) -> WorkloadTrace:
    """The synthetic stand-in for one of the paper's original traces."""
    generator = TRACE_FAMILIES.get(family)
    if generator is None:
        raise ConfigError(f"unknown trace family {family!r}; known: {sorted(TRACE_FAMILIES)}")
    scale = current_scale(scale_name)
    return generator(num_jobs=scale.raw_jobs, seed=DEFAULT_SEED)


@lru_cache(maxsize=16)
def _year_workload(family: str, scale_name: str) -> WorkloadTrace:
    scale = current_scale(scale_name)
    return year_long_trace(
        raw_trace(family, scale.name),
        num_jobs=scale.year_jobs,
        horizon=scale.year_days * MINUTES_PER_DAY,
        seed=DEFAULT_SEED,
    )


def year_workload(family: str, scale_name: str | None = None) -> WorkloadTrace:
    """The paper's year-long 100k-job workload (scaled per REPRO_SCALE)."""
    return _year_workload(family, current_scale(scale_name).name)


@lru_cache(maxsize=16)
def _week_workload(family: str, scale_name: str) -> WorkloadTrace:
    scale = current_scale(scale_name)
    return week_long_trace(
        raw_trace(family, scale.name), num_jobs=scale.week_jobs, seed=DEFAULT_SEED
    )


def week_workload(family: str = "alibaba", scale_name: str | None = None) -> WorkloadTrace:
    """The paper's week-long 1k-job prototype workload (<=4 CPUs/job)."""
    return _week_workload(family, current_scale(scale_name).name)


def carbon_for(region: str) -> CarbonIntensityTrace:
    """Year-long canonical CI trace for a region (cached upstream)."""
    return region_trace(region, seed=0)


def fine_grained_queues(max_wait_hours: int = 24, short_wait_hours: int = 6) -> QueueSet:
    """Queue set with hour-granular bounds for the spot J^max sweeps.

    Spot eligibility is decided by *queue bound*, so the Fig. 18/19
    sweeps over J^max in {2, 6, 12, 18, 24} hours need queues at those
    boundaries (plus the 3-day catch-all of the default configuration).
    """
    from repro.workload.job import JobQueue

    bounds = [2, 6, 12, 18, 24]
    queues = [
        JobQueue(
            name=f"q{bound}h",
            max_length=hours(bound),
            max_wait=hours(short_wait_hours if bound <= 2 else max_wait_hours),
        )
        for bound in bounds
    ]
    queues.append(
        JobQueue(name="qlong", max_length=hours(24 * 3), max_wait=hours(max_wait_hours))
    )
    return QueueSet(tuple(queues))


def default_queues() -> QueueSet:
    """The paper's two-queue default (short <= 2 h / long <= 3 days)."""
    return default_queue_set()
