"""Fig. 12 -- combining spot and reserved purchase options.

Week Alibaba workload in South Australia.  Spot-First keeps the carbon
savings of the carbon-aware schedule while cutting cost (~17% in the
paper, evictions never fired in the prototype); Spot-RES adds reserved
capacity for long jobs and re-introduces the carbon/cost dial: more
reserved CPUs -> cheaper but dirtier.
"""

from __future__ import annotations

from repro.analysis.normalize import normalize_to_max
from repro.cluster.spot import NoEvictions
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation

__all__ = ["run", "CONFIGS"]

#: (label, policy spec, reserved CPUs), mirroring the paper's x-axis.
CONFIGS = (
    ("Carbon-Time (0)", "carbon-time", 0),
    ("Spot-First-Carbon-Time (0)", "spot-first:carbon-time", 0),
    ("Spot-First-Ecovisor (0)", "spot-first:ecovisor", 0),
    ("Spot-RES-Carbon-Time (9)", "spot-res:carbon-time", 9),
    ("Spot-RES-Carbon-Time (6)", "spot-res:carbon-time", 6),
)


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 12 spot/reserved combinations."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    results = {}
    for label, spec, reserved in CONFIGS:
        results[label] = run_simulation(
            workload,
            carbon_trace,
            spec,
            reserved_cpus=reserved,
            eviction_model=NoEvictions(),  # the paper's prototype saw none
        )
    norm_carbon = normalize_to_max({k: r.total_carbon_kg for k, r in results.items()})
    norm_cost = normalize_to_max({k: r.total_cost for k, r in results.items()})
    norm_wait = normalize_to_max({k: r.mean_waiting_hours for k, r in results.items()})
    rows = [
        {
            "config": label,
            "normalized_carbon": norm_carbon[label],
            "normalized_cost": norm_cost[label],
            "normalized_wait": norm_wait[label],
            "cost_usd": results[label].total_cost,
        }
        for label, _, _ in CONFIGS
    ]
    return ExperimentResult(
        experiment_id="fig12",
        title="Spot and reserved combinations (SA-AU, week trace)",
        rows=rows,
        notes=(
            "paper: Spot-First keeps Carbon-Time's savings ~17% cheaper; "
            "Spot-RES(9) cheapest but fewer savings than Spot-RES(6)"
        ),
        extras={"results": results},
    )
