"""Declarative federation/scaling sweeps over the batch runner.

The ``ext-federation`` / ``ext-scaling`` extension experiments call the
live engines directly; these sweeps are the first-class counterparts:
every cell is a frozen :class:`~repro.federation.spec.FederatedSpec` or
:class:`~repro.scaling.spec.ScalingSpec` submitted up front through
:func:`repro.experiments.base.sweep`, so the grids deduplicate, cache,
and fan out over ``$REPRO_JOBS`` workers like any figure sweep
(fig16-style rows: carbon / cost / waiting per selector, and per
speedup family).
"""

from __future__ import annotations

from repro.carbon.regions import region_trace
from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.federation import FederatedRegion, FederatedSpec
from repro.scaling import AmdahlSpeedup, MalleableJob, ScalingSpec
from repro.units import hours

__all__ = ["federation", "scaling"]

#: selector spec string -> shown label (home resolves against CA-US).
SELECTOR_GRID: tuple[str, ...] = (
    "home",
    "lowest-mean-ci",
    "greedy-spatial",
    "spatio-temporal",
)

MIGRATION_GRID: tuple[int, ...] = (0, 60)

#: label -> declarative speedup (None = linear).
SPEEDUP_FAMILIES: tuple[tuple[str, object], ...] = (
    ("linear", None),
    ("amdahl-0.95", AmdahlSpeedup(0.95)),
    ("amdahl-0.90", AmdahlSpeedup(0.9)),
    ("amdahl-0.75", AmdahlSpeedup(0.75)),
)

#: at most this many malleable jobs per scaling cell (stride-sampled).
MAX_SCALING_JOBS = 64


def _federation_regions() -> list[FederatedRegion]:
    return [
        FederatedRegion("CA-US", region_trace("CA-US")),
        FederatedRegion("SA-AU", region_trace("SA-AU")),
        FederatedRegion("ON-CA", region_trace("ON-CA")),
    ]


def federation(scale: str | None = None) -> ExperimentResult:
    """Carbon / cost / waiting per spatial selector and migration delay."""
    workload = setup.week_workload("alibaba", scale)
    regions = _federation_regions()
    grid = [
        (selector, migration)
        for selector in SELECTOR_GRID
        for migration in MIGRATION_GRID
        if not (selector == "home" and migration > 0)  # home never migrates
    ]
    specs = [
        FederatedSpec.build(
            workload, regions, "home", "nowait", home="CA-US"
        )  # the baseline rides the same batch
    ] + [
        FederatedSpec.build(
            workload,
            regions,
            selector,
            "carbon-time",
            home="CA-US",
            migration_minutes=migration,
        )
        for selector, migration in grid
    ]
    results = sweep(specs)
    baseline, rest = results[0], results[1:]
    rows = []
    for (selector, migration), result in zip(grid, rest):
        rows.append(
            {
                "selector": selector,
                "migration_min": migration,
                "carbon_kg": result.total_carbon_kg,
                "carbon_saving_pct": 100
                * (1 - result.total_carbon_kg / baseline.total_carbon_kg),
                "cost_usd": result.total_cost,
                "mean_wait_h": result.mean_waiting_hours,
                "migrated_jobs": result.migrated_jobs,
            }
        )
    return ExperimentResult(
        experiment_id="sweep-federation",
        title="Federated selector sweep (CA-US/SA-AU/ON-CA, Carbon-Time)",
        rows=rows,
        notes=(
            "baseline: NoWait at home (CA-US); every cell is a FederatedSpec "
            "through run_many (cached, deduplicated, digest-addressed)"
        ),
    )


def scaling(scale: str | None = None) -> ExperimentResult:
    """Total carbon per speedup family, greedy plans vs a 1-CPU baseline."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    stride = max(1, len(workload.jobs) // MAX_SCALING_JOBS)
    jobs = [
        MalleableJob(work=float(job.length), max_cpus=4, arrival=job.arrival)
        for job in workload.jobs[::stride][:MAX_SCALING_JOBS]
    ]

    def deadline_for(job: MalleableJob) -> int:
        return min(int(job.arrival + job.work) + hours(24), carbon_trace.horizon_minutes)

    baseline_specs = [
        ScalingSpec.build(
            carbon_trace,
            MalleableJob(work=job.work, max_cpus=1, arrival=job.arrival),
            deadline_for(job),
            mode=("fixed", 1),
        )
        for job in jobs
    ]
    family_specs = [
        ScalingSpec.build(carbon_trace, job, deadline_for(job), speedup=speedup)
        for _, speedup in SPEEDUP_FAMILIES
        for job in jobs
    ]
    results = sweep(baseline_specs + family_specs)
    baseline = sum(result.carbon_g for result in results[: len(jobs)])
    rows = []
    for index, (label, _) in enumerate(SPEEDUP_FAMILIES):
        cells = results[len(jobs) * (index + 1) : len(jobs) * (index + 2)]
        total = sum(result.carbon_g for result in cells)
        rows.append(
            {
                "speedup": label,
                "carbon_kg": total / 1000.0,
                "carbon_saving_pct": 100 * (1 - total / baseline),
                "mean_peak_cpus": sum(r.peak_cpus for r in cells) / len(cells),
            }
        )
    return ExperimentResult(
        experiment_id="sweep-scaling",
        title="Malleable-scaling sweep by speedup family (SA-AU, 4-CPU cap)",
        rows=rows,
        notes=(
            f"baseline: run-on-arrival at 1 CPU over {len(jobs)} stride-sampled "
            "jobs; every cell is a ScalingSpec through run_many"
        ),
    )
