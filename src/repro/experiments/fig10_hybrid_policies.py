"""Fig. 10 -- carbon, cost, and waiting with a reserved pool in the mix.

Six policies on 9 reserved CPUs (week Alibaba workload, South Australia).
Paper findings: NoWait has the highest carbon; AllWait-Threshold the
lowest cost but highest waiting; the suspend-resume carbon policies have
the highest cost (fragmented demand ruins reserved utilization); the
work-conserving RES-First-Carbon-Time balances all three, saving ~21% of
cost while retaining ~50% of Carbon-Time's carbon savings.
"""

from __future__ import annotations

from repro.analysis.normalize import normalize_to_max
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation

__all__ = ["run", "POLICIES", "RESERVED"]

POLICIES = (
    "nowait",
    "allwait-threshold",
    "wait-awhile",
    "ecovisor",
    "carbon-time",
    "res-first:carbon-time",
)

#: The paper's reserved pool size for this experiment.
RESERVED = 9


def run(scale: str | None = None, reserved: int = RESERVED) -> ExperimentResult:
    """Regenerate the Fig. 10 hybrid-cluster policy comparison."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    results = {
        spec: run_simulation(workload, carbon_trace, spec, reserved_cpus=reserved)
        for spec in POLICIES
    }
    norm_carbon = normalize_to_max({s: r.total_carbon_kg for s, r in results.items()})
    norm_cost = normalize_to_max({s: r.total_cost for s, r in results.items()})
    norm_wait = normalize_to_max({s: r.mean_waiting_hours for s, r in results.items()})
    rows = [
        {
            "policy": results[spec].policy_name,
            "normalized_carbon": norm_carbon[spec],
            "normalized_cost": norm_cost[spec],
            "normalized_wait": norm_wait[spec],
            "cost_usd": results[spec].total_cost,
            "reserved_util": results[spec].reserved_utilization,
        }
        for spec in POLICIES
    ]
    return ExperimentResult(
        experiment_id="fig10",
        title=f"Policies on {reserved} reserved CPUs (SA-AU, week trace)",
        rows=rows,
        notes=(
            "paper: NoWait max carbon; AllWait min cost / max wait; "
            "suspend-resume policies max cost; RES-First-Carbon-Time balances"
        ),
        extras={"results": results},
    )
