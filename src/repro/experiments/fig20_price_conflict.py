"""Fig. 20 / Section 7 -- carbon vs electricity-price conflict (ERCOT).

The paper shows ERCOT (Texas) market prices against grid CI for two
consecutive days: on one day their valleys align, on the next they
conflict, and over 2022 the series correlate at only ~0.16 -- so a
private-cloud operator faces the same carbon/cost tension as a cloud
customer.  We synthesize a price trace with a controlled ~0.16
correlation and quantify the alignment day by day.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.price import (
    carbon_price_conflict_hours,
    correlated_price_trace,
    realized_correlation,
)
from repro.carbon.regions import region_trace
from repro.experiments.base import ExperimentResult
from repro.units import HOURS_PER_DAY

__all__ = ["run"]

TARGET_CORRELATION = 0.16


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the ERCOT carbon/price conflict statistics."""
    ci = region_trace("TX-US")
    price = correlated_price_trace(ci, target_correlation=TARGET_CORRELATION, seed=0)
    correlation = realized_correlation(ci, price)
    conflict = carbon_price_conflict_hours(ci, price)

    # Per-day alignment: does the cheapest hour coincide with (one of)
    # the 25% greenest hours of the day?
    days = ci.num_hours // HOURS_PER_DAY
    ci_days = ci.hourly[: days * HOURS_PER_DAY].reshape(days, HOURS_PER_DAY)
    price_days = price.hourly[: days * HOURS_PER_DAY].reshape(days, HOURS_PER_DAY)
    cheapest_hour = price_days.argmin(axis=1)
    green_rank = np.argsort(np.argsort(ci_days, axis=1), axis=1)
    aligned = green_rank[np.arange(days), cheapest_hour] < HOURS_PER_DAY // 4
    aligned_fraction = float(aligned.mean())

    rows = [
        {"metric": "pearson_correlation", "value": correlation,
         "paper": TARGET_CORRELATION},
        {"metric": "conflicting_hours_fraction", "value": conflict,
         "paper": "qualitative"},
        {"metric": "days_cheapest_hour_is_green", "value": aligned_fraction,
         "paper": "mixed days shown"},
    ]
    return ExperimentResult(
        experiment_id="fig20",
        title="Carbon intensity vs electricity price (ERCOT-like, TX-US)",
        rows=rows,
        notes=(
            "some days align carbon and cost valleys, most do not: a "
            "carbon-aware schedule is not automatically cost-aware"
        ),
        extras={"correlation": correlation, "aligned_fraction": aligned_fraction},
    )
