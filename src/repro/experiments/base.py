"""Experiment plumbing: result container and scale control.

Every paper figure/table maps to one module exposing
``run(scale=None) -> ExperimentResult``.  The ``REPRO_SCALE`` environment
variable (``small`` / ``medium`` / ``large`` / ``full``) sets the default
workload sizes: ``full`` is the paper's configuration (year-long, 100k
jobs); ``medium`` (the default) shrinks the horizon and job count
together so the mean cluster demand -- which the reserved-pool
experiments anchor on -- is preserved while the whole suite runs in
minutes.  ``large`` sits between the two and exists for the nightly
benchmark tier: big enough that engine-level performance work shows up
in wall time, small enough to finish in a scheduled CI job.
"""

from __future__ import annotations

import os
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.errors import ConfigError

__all__ = ["Scale", "SCALES", "current_scale", "ExperimentResult", "sweep"]


def sweep(specs, jobs=None, stats=None):
    """Run an experiment's whole simulation grid through the batch runner.

    Thin façade over :func:`repro.simulator.runner.run_many` so figure
    modules submit their full grid up front (deduplicated, cached, and
    fanned out over ``$REPRO_JOBS`` workers) instead of looping over
    ``run_simulation``.  Returns one ``SimulationResult`` per spec, in
    spec order.
    """
    from repro.simulator.runner import run_many

    return run_many(specs, jobs=jobs, stats=stats)


@dataclass(frozen=True)
class Scale:
    """Workload sizing for one experiment scale."""

    name: str
    raw_jobs: int      # jobs generated in the "original" trace
    year_jobs: int     # jobs sampled into the large-scale workload
    year_days: int     # horizon of the large-scale workload
    week_jobs: int     # jobs sampled into the prototype-style week workload


SCALES: dict[str, Scale] = {
    "small": Scale("small", raw_jobs=20_000, year_jobs=4_000, year_days=28, week_jobs=300),
    "medium": Scale("medium", raw_jobs=60_000, year_jobs=20_000, year_days=91, week_jobs=1_000),
    "large": Scale("large", raw_jobs=120_000, year_jobs=50_000, year_days=182, week_jobs=1_000),
    "full": Scale("full", raw_jobs=200_000, year_jobs=100_000, year_days=365, week_jobs=1_000),
}


def current_scale(override: str | None = None) -> Scale:
    """Resolve the active scale (explicit arg beats ``REPRO_SCALE``)."""
    name = override or os.environ.get("REPRO_SCALE", "medium")
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None


@dataclass
class ExperimentResult:
    """Output of one reproduced figure/table."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    columns: Sequence[str] | None = None
    notes: str = ""
    extras: Mapping[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Text rendering used by the benchmark harness."""
        header = f"{self.experiment_id}: {self.title}"
        table = render_table(self.rows, columns=self.columns, title=header)
        if self.notes:
            return f"{table}\n\n{self.notes}"
        return table

    def column(self, key: str) -> list:
        """All values of one column, in row order."""
        return [row[key] for row in self.rows]

    def row_for(self, key: str, value) -> dict:
        """First row whose ``key`` equals ``value``."""
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")
