"""Fig. 5 -- workload-trace construction preserves the length distribution.

The paper samples its year-long (100k jobs) and week-long (1k jobs,
<=4 CPUs) workloads from the Alibaba-PAI trace after filtering <5 min and
>3 day jobs, then shows the sampled length/demand distributions track the
original.  This experiment reports length CDFs and demand statistics for
the raw, year, and week traces.
"""

from __future__ import annotations

from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.units import days, hours
from repro.workload.stats import length_cdf, short_job_compute_share, trace_summary

__all__ = ["run"]

CDF_POINTS = {
    "<=5min": 5,
    "<=1h": hours(1),
    "<=12h": hours(12),
    "<=3d": days(3),
}


def run(scale: str | None = None) -> ExperimentResult:
    """Compare raw vs. sampled Alibaba-family traces."""
    raw = setup.raw_trace("alibaba", setup.current_scale_name(scale))
    year = setup.year_workload("alibaba", scale)
    week = setup.week_workload("alibaba", scale)

    rows = []
    for label, trace in (("original", raw), ("year-100k", year), ("week-1k", week)):
        summary = trace_summary(trace)
        cdf = length_cdf(trace, list(CDF_POINTS.values()))
        row = {
            "trace": label,
            "jobs": int(summary["jobs"]),
            "mean_len_h": summary["mean_length_hours"],
            "mean_cpus": summary["mean_cpus"],
            "mean_demand": summary["mean_demand"],
        }
        row.update({name: value for name, value in zip(CDF_POINTS, cdf)})
        rows.append(row)

    job_share, compute_share = short_job_compute_share(raw)
    return ExperimentResult(
        experiment_id="fig05",
        title="Job length/demand distributions: original vs sampled traces",
        rows=rows,
        notes=(
            f"raw trace: {100 * job_share:.1f}% of jobs are <=5 min but "
            f"contribute {100 * compute_share:.2f}% of compute "
            "(paper: 38% of jobs, 0.36% of compute)"
        ),
        extras={"short_job_share": job_share, "short_compute_share": compute_share},
    )
