"""Registry mapping experiment ids to their ``run`` functions.

Figure modules are imported *lazily*: the registry stores
``(module stem, attribute)`` pairs and resolves them through
:mod:`importlib` on first access, so ``python -m repro`` startup and
single-experiment runs stop paying for 26 eager module imports.
``EXPERIMENTS`` still behaves like the dict it used to be (iteration,
membership, ``.get``), only import time moved.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Iterator, Mapping

from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

#: Experiment id -> (module stem under ``repro.experiments``, attribute).
_EXPERIMENT_SPECS: dict[str, tuple[str, str]] = {
    "fig01": ("fig01_carbon_variation", "run"),
    "fig02": ("fig02_motivating", "run"),
    "fig04": ("fig04_regimes", "run"),
    "fig05": ("fig05_traces", "run"),
    "fig06": ("fig06_regions", "run"),
    "fig07": ("fig07_seasonal", "run"),
    "table1": ("table1_policies", "run"),
    "fig08": ("fig08_policies", "run"),
    "fig09": ("fig09_savings_by_length", "run"),
    "fig10": ("fig10_hybrid_policies", "run"),
    "fig11": ("fig11_reserved_sweep", "run"),
    "fig12": ("fig12_spot_reserved", "run"),
    "fig13": ("fig13_traces", "run"),
    "fig14": ("fig14_waiting", "run"),
    "fig15": ("fig15_regions", "run"),
    "fig16": ("fig16_total_savings", "run"),
    "fig17": ("fig17_reserved_traces", "run"),
    "fig18": ("fig18_spot_eviction", "run"),
    "fig19": ("fig19_hybrid_sweep", "run"),
    "fig20": ("fig20_price_conflict", "run"),
    "headline": ("headline", "run"),
    "ablation-forecast": ("ablations", "forecast_noise"),
    "ablation-granularity": ("ablations", "granularity"),
    "ablation-carbon-tax": ("ablations", "carbon_tax"),
    "ext-suspend-resume": ("extensions", "suspend_resume"),
    "ext-checkpointing": ("extensions", "checkpointing"),
    "ext-federation": ("extensions", "federation"),
    "ext-provisioning": ("extensions", "provisioning"),
    "ext-arrival-phase": ("extensions", "arrival_phase"),
    "ext-energy-price": ("extensions", "energy_price"),
    "ext-scaling": ("extensions", "scaling"),
    "sweep-federation": ("spatial_sweeps", "federation"),
    "sweep-scaling": ("spatial_sweeps", "scaling"),
}


class _LazyExperiments(Mapping):
    """Dict-like view over the experiment table with on-demand imports."""

    def __getitem__(self, experiment_id: str) -> Callable[..., ExperimentResult]:
        stem, attribute = _EXPERIMENT_SPECS[experiment_id]
        module = importlib.import_module(f"repro.experiments.{stem}")
        return getattr(module, attribute)

    def __iter__(self) -> Iterator[str]:
        return iter(_EXPERIMENT_SPECS)

    def __len__(self) -> int:
        return len(_EXPERIMENT_SPECS)

    def __contains__(self, experiment_id) -> bool:
        return experiment_id in _EXPERIMENT_SPECS


#: All reproduced figures/tables, keyed by experiment id.
EXPERIMENTS: Mapping[str, Callable[..., ExperimentResult]] = _LazyExperiments()


def run_experiment(experiment_id: str, scale: str | None = None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig11"``)."""
    if experiment_id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id](scale)
