"""Registry mapping experiment ids to their ``run`` functions."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError
from repro.experiments import ablations, extensions
from repro.experiments.base import ExperimentResult
from repro.experiments.fig01_carbon_variation import run as fig01
from repro.experiments.fig02_motivating import run as fig02
from repro.experiments.fig04_regimes import run as fig04
from repro.experiments.fig05_traces import run as fig05
from repro.experiments.fig06_regions import run as fig06
from repro.experiments.fig07_seasonal import run as fig07
from repro.experiments.fig08_policies import run as fig08
from repro.experiments.fig09_savings_by_length import run as fig09
from repro.experiments.fig10_hybrid_policies import run as fig10
from repro.experiments.fig11_reserved_sweep import run as fig11
from repro.experiments.fig12_spot_reserved import run as fig12
from repro.experiments.fig13_traces import run as fig13
from repro.experiments.fig14_waiting import run as fig14
from repro.experiments.fig15_regions import run as fig15
from repro.experiments.fig16_total_savings import run as fig16
from repro.experiments.fig17_reserved_traces import run as fig17
from repro.experiments.fig18_spot_eviction import run as fig18
from repro.experiments.fig19_hybrid_sweep import run as fig19
from repro.experiments.fig20_price_conflict import run as fig20
from repro.experiments.headline import run as headline
from repro.experiments.table1_policies import run as table1

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig01": fig01,
    "fig02": fig02,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "table1": table1,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "headline": headline,
    "ablation-forecast": ablations.forecast_noise,
    "ablation-granularity": ablations.granularity,
    "ablation-carbon-tax": ablations.carbon_tax,
    "ext-suspend-resume": extensions.suspend_resume,
    "ext-checkpointing": extensions.checkpointing,
    "ext-federation": extensions.federation,
    "ext-provisioning": extensions.provisioning,
    "ext-arrival-phase": extensions.arrival_phase,
    "ext-energy-price": extensions.energy_price,
    "ext-scaling": extensions.scaling,
}


def run_experiment(experiment_id: str, scale: str | None = None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"fig11"``)."""
    runner = EXPERIMENTS.get(experiment_id)
    if runner is None:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return runner(scale)
