"""Fig. 6 -- carbon intensity level and variability across cloud regions.

The paper groups six regions by mean CI (Low/Med/High) and variability
(Stable/Variable).  This experiment reports the year statistics of each
canonical region trace along with its profile labels.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.regions import PAPER_REGIONS, get_region, region_trace
from repro.carbon.stats import coefficient_of_variation
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 6 region characterization (scale-independent)."""
    rows = []
    for name in PAPER_REGIONS:
        profile = get_region(name)
        trace = region_trace(name)
        rows.append(
            {
                "region": name,
                "mean_ci": float(np.mean(trace.hourly)),
                "p5_ci": float(np.percentile(trace.hourly, 5)),
                "p95_ci": float(np.percentile(trace.hourly, 95)),
                "cov": coefficient_of_variation(trace),
                "level": profile.level_label,
                "variability": profile.variability_label,
            }
        )
    return ExperimentResult(
        experiment_id="fig06",
        title="Carbon intensity across diverse cloud regions (2022-like year)",
        rows=rows,
        notes="paper groups: SE Low/Stable ... KY-US High/Stable",
    )
