"""Fig. 14 -- carbon saved per waiting hour vs the waiting-time limits.

Sweeping the short-queue limit W_short (with W_long fixed at 24 h) and
the long-queue limit W_long (with W_short fixed at 6 h) for the
Lowest-Window and Carbon-Time policies (Alibaba workload, South
Australia).  Paper findings: extending W_short dilutes savings-per-hour
(short jobs dominate waiting but barely move carbon); extending W_long
helps up to a knee (~12-24 h) then shows diminishing returns; Carbon-Time
dominates Lowest-Window on savings-per-waiting-hour everywhere.
"""

from __future__ import annotations

from repro.analysis.metrics import saved_carbon_per_waiting_hour
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation
from repro.units import hours
from repro.workload.job import default_queue_set

__all__ = ["run", "W_SHORT_SWEEP", "W_LONG_SWEEP"]

W_SHORT_SWEEP = (0, 3, 6, 12, 18, 24)
W_LONG_SWEEP = (12, 24, 48, 72, 84)
POLICIES = ("lowest-window", "carbon-time")


def _evaluate(workload, carbon_trace, spec, w_short_h, w_long_h):
    queues = default_queue_set(short_wait=hours(w_short_h), long_wait=hours(w_long_h))
    baseline = run_simulation(workload, carbon_trace, "nowait", queues=queues)
    result = run_simulation(workload, carbon_trace, spec, queues=queues)
    return saved_carbon_per_waiting_hour(result, baseline), result, baseline


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 14 waiting-limit sweeps."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    rows = []
    for w_short in W_SHORT_SWEEP:
        for spec in POLICIES:
            per_hour, result, baseline = _evaluate(workload, carbon_trace, spec, w_short, 24)
            rows.append(
                {
                    "sweep": "W_short",
                    "w_hours": w_short,
                    "policy": result.policy_name,
                    "saved_g_per_wait_h": per_hour,
                    "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                    "mean_wait_h": result.mean_waiting_hours,
                }
            )
    for w_long in W_LONG_SWEEP:
        for spec in POLICIES:
            per_hour, result, baseline = _evaluate(workload, carbon_trace, spec, 6, w_long)
            rows.append(
                {
                    "sweep": "W_long",
                    "w_hours": w_long,
                    "policy": result.policy_name,
                    "saved_g_per_wait_h": per_hour,
                    "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                    "mean_wait_h": result.mean_waiting_hours,
                }
            )
    return ExperimentResult(
        experiment_id="fig14",
        title="Saved carbon per waiting hour vs waiting-time limits (SA-AU)",
        rows=rows,
        notes=(
            "paper: savings-per-hour falls as W_short grows; W_long shows a "
            "knee around 12-24 h; Carbon-Time > Lowest-Window throughout"
        ),
    )
