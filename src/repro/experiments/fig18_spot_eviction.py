"""Fig. 18 -- how far to push spot capacity under evictions.

Spot-First-Carbon-Time on the Azure workload (South Australia), sweeping
the largest queue routed to spot (J^max in hours) against hourly eviction
rates of 0-15%.  Cost and carbon are normalized to NoWait on pure
on-demand.  Paper findings: without evictions, larger J^max is strictly
cheaper at unchanged carbon; with evictions, extending J^max beyond ~6 h
buys no cost and strictly adds carbon (long jobs get evicted, and redone
work burns money and carbon) -- e.g. at 15%/h, J^max past 6 h adds up to
12% carbon.
"""

from __future__ import annotations

from repro.cluster.spot import HourlyHazard, NoEvictions
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.policies.carbon_time import CarbonTime
from repro.policies.wrappers import SpotFirst
from repro.simulator.simulation import run_simulation
from repro.units import hours

__all__ = ["run", "JMAX_SWEEP", "EVICTION_RATES"]

JMAX_SWEEP = (2, 6, 12, 18, 24)
EVICTION_RATES = (0.0, 0.05, 0.10, 0.15)


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 18 J^max x eviction-rate sweep."""
    workload = setup.year_workload("azure", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    queues = setup.fine_grained_queues()
    baseline = run_simulation(workload, carbon_trace, "nowait", queues=queues)

    rows = []
    for rate in EVICTION_RATES:
        eviction = NoEvictions() if rate == 0 else HourlyHazard(rate)
        for jmax in JMAX_SWEEP:
            policy = SpotFirst(CarbonTime(), spot_max_length=hours(jmax))
            result = run_simulation(
                workload, carbon_trace, policy, queues=queues, eviction_model=eviction
            )
            rows.append(
                {
                    "eviction_rate": rate,
                    "jmax_h": jmax,
                    "normalized_cost": result.total_cost / baseline.total_cost,
                    "normalized_carbon": result.total_carbon_kg / baseline.total_carbon_kg,
                    "evictions": result.total_evictions,
                    "lost_cpu_h": result.lost_cpu_hours,
                }
            )
    return ExperimentResult(
        experiment_id="fig18",
        title="Spot-First cost/carbon vs J^max and eviction rate (Azure, SA-AU)",
        rows=rows,
        notes=(
            "paper: at 0% eviction larger J^max is strictly cheaper at flat "
            "carbon; at 15% eviction J^max > 6 h saves nothing and adds "
            "up to 12% carbon"
        ),
        extras={"baseline": baseline},
    )
