"""Table 1 -- summary of scheduling policies and their assumptions."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.policies.registry import policy_table

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the paper's Table 1 from the policy class metadata."""
    return ExperimentResult(
        experiment_id="table1",
        title="Summary of scheduling policies",
        rows=policy_table(),
        notes=(
            "Job length 'J_avg' = queue-wide historical average only; "
            "'Yes' = exact per-job length (Wait Awhile's assumption)."
        ),
    )
