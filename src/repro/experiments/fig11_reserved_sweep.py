"""Fig. 11 -- the reserved-capacity dial of RES-First-Carbon-Time.

Sweeping the reserved pool (week Alibaba workload, South Australia),
normalized against NoWait on a pure on-demand cluster.  Paper findings:
cost falls to a minimum near the mean demand, then rises; carbon savings
shrink monotonically as more jobs run work-conserving on reserved
capacity; waiting time strictly decreases with pool size.
"""

from __future__ import annotations

from repro.analysis.tradeoff import knee_point, reserved_sweep
from repro.experiments import setup
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 11 reserved sweep."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    mean_demand = workload.mean_demand
    step = max(1, int(round(mean_demand / 7)))
    values = list(range(0, int(round(mean_demand * 1.5)) + step, step))
    points = reserved_sweep(workload, carbon_trace, "res-first:carbon-time", values)
    rows = [
        {
            "reserved_cpus": point.reserved_cpus,
            "normalized_cost": point.normalized_cost,
            "normalized_carbon": point.normalized_carbon,
            "mean_wait_h": point.mean_wait_hours,
            "reserved_util": point.reserved_utilization,
        }
        for point in points
    ]
    knee = knee_point(points)
    return ExperimentResult(
        experiment_id="fig11",
        title="Reserved sweep: RES-First-Carbon-Time vs NoWait/on-demand",
        rows=rows,
        notes=(
            f"mean demand {mean_demand:.1f} CPUs; lowest cost at "
            f"{knee.reserved_cpus} reserved "
            "(paper: cost knee near mean demand, carbon savings shrink, "
            "waiting strictly decreases)"
        ),
        extras={"points": points, "knee": knee, "mean_demand": mean_demand},
    )
