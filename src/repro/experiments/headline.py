"""The paper's headline claims (abstract / Section 6.3).

Compared to existing carbon-aware policies, GAIA's cost-aware variants
"double the amount of carbon savings per percentage increase in cost,
while decreasing the performance overhead by 26%".  This experiment
computes both quantities on the hybrid week-trace setting.
"""

from __future__ import annotations

import math

from repro.analysis.metrics import mean_waiting_reduction, savings_per_cost_percent
from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec

__all__ = ["run", "RESERVED"]

RESERVED = 9
PRIOR_POLICIES = ("wait-awhile", "ecovisor")
GAIA_POLICIES = ("res-first:carbon-time", "spot-res:carbon-time")


def run(scale: str | None = None) -> ExperimentResult:
    """Compute savings-per-cost-percent and waiting reduction."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    policies = (*PRIOR_POLICIES, "carbon-time", *GAIA_POLICIES)
    specs = [
        SimulationSpec.build(workload, carbon_trace, spec, reserved_cpus=RESERVED)
        for spec in ("nowait", *policies)
    ]
    baseline, *policy_results = sweep(specs)

    rows = []
    efficiency = {}
    results = {}
    for spec, result in zip(policies, policy_results):
        results[spec] = result
        ratio = savings_per_cost_percent(result, baseline)
        efficiency[spec] = ratio
        rows.append(
            {
                "policy": result.policy_name,
                "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                "cost_increase_pct": 100 * result.cost_increase_vs(baseline),
                "saving_per_cost_pct": ratio,
                "mean_wait_h": result.mean_waiting_hours,
            }
        )

    best_prior = max(
        value for spec, value in efficiency.items()
        if spec in PRIOR_POLICIES and math.isfinite(value)
    )
    best_gaia = max(efficiency[spec] for spec in GAIA_POLICIES)
    wait_cut = mean_waiting_reduction(results["carbon-time"], results["wait-awhile"])
    improvement = best_gaia / best_prior if best_prior > 0 else float("inf")
    return ExperimentResult(
        experiment_id="headline",
        title="Headline: carbon savings per % cost and waiting reduction",
        rows=rows,
        notes=(
            f"GAIA best / prior best savings-per-cost-%: "
            f"{'inf' if math.isinf(improvement) else f'{improvement:.2f}'}x "
            f"(paper: ~2x); Carbon-Time cuts waiting "
            f"{100 * wait_cut:.0f}% vs Wait Awhile (paper: 26-50%)"
        ),
        extras={
            "efficiency": efficiency,
            "improvement": improvement,
            "wait_cut": wait_cut,
        },
    )
