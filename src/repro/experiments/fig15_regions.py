"""Fig. 15 -- normalized carbon savings across geographic regions.

Carbon-Time over the three year-long workloads in the five evaluation
regions, normalized to NoWait per (region, workload).  Paper findings:
regions with large CI variation (South Australia) enable the biggest
relative savings (~27.5%); flat coal-heavy grids (Kentucky) allow ~1%;
waiting time is essentially region-independent.
"""

from __future__ import annotations

from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec

__all__ = ["run", "FAMILIES"]

FAMILIES = ("mustang", "alibaba", "azure")


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 15 region x workload matrix."""
    workloads = {family: setup.year_workload(family, scale) for family in FAMILIES}
    cells = [
        (region, family)
        for region in setup.EVAL_REGIONS
        for family in FAMILIES
    ]
    specs = [
        SimulationSpec.build(
            workloads[family], setup.carbon_for(region), policy, reserved_cpus=0
        )
        for region, family in cells
        for policy in ("nowait", "carbon-time")
    ]
    results = sweep(specs)
    rows = []
    waits: dict[str, list[float]] = {family: [] for family in FAMILIES}
    for index, (region, family) in enumerate(cells):
        baseline, result = results[2 * index], results[2 * index + 1]
        rows.append(
            {
                "region": region,
                "trace": family,
                "normalized_carbon": result.total_carbon_kg / baseline.total_carbon_kg,
                "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                "mean_wait_h": result.mean_waiting_hours,
            }
        )
        waits[family].append(result.mean_waiting_hours)
    wait_spread = {
        family: (max(values) - min(values)) / max(values)
        for family, values in waits.items()
    }
    return ExperimentResult(
        experiment_id="fig15",
        title="Normalized carbon across regions and workloads (Carbon-Time)",
        rows=rows,
        notes=(
            "paper: SA-AU saves most (27.5%), KY-US ~1%; waiting time is "
            f"region-independent (our max relative spread: "
            f"{max(wait_spread.values()):.3f})"
        ),
        extras={"wait_spread": wait_spread},
    )
