"""Fig. 2 / Section 3 -- the carbon-performance-cost tension.

The paper's motivating example: a three-day synthetic workload
(exponential inter-arrivals of 48 min, exponential lengths of 4 h, 1 CPU
per job, ~5 CPUs mean demand) on 5 reserved instances in California
(February).  Wait Awhile cuts carbon by ~36% but raises cost by ~68% and
completion time by ~5%.  Repeating the experiment in Sweden's low, stable
grid yields almost no carbon savings for an even larger cost increase.
"""

from __future__ import annotations

from repro.carbon.regions import region_trace
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation
from repro.units import days, hours
from repro.workload.job import JobQueue, QueueSet
from repro.workload.synthetic import poisson_exponential

__all__ = ["run", "motivating_workload"]

RESERVED = 5
#: February 1st, as in the paper's use of February 2022 CI data.
FEBRUARY_START_HOUR = 31 * 24


def motivating_workload(seed: int = 2):
    """The Section 3 workload, clipped to the 3-day queue bound."""
    trace = poisson_exponential(
        mean_interarrival=48, mean_length=hours(4), cpus=1, horizon=days(3), seed=seed
    )
    return trace.filtered(lambda job: job.length <= days(3), name="motivating").renumbered()


def _queues() -> QueueSet:
    # Single queue, 24-hour maximum waiting time (the paper configures
    # Wait Awhile with a 24 h wait in this example).
    return QueueSet((JobQueue(name="batch", max_length=days(3), max_wait=hours(24)),))


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the motivating comparison in CA-US and SE."""
    workload = motivating_workload()
    rows = []
    for region, start_hour in (("CA-US", FEBRUARY_START_HOUR), ("SE", FEBRUARY_START_HOUR)):
        carbon_trace = region_trace(region, seed=0, start_hour_of_year=start_hour)
        baseline = run_simulation(
            workload, carbon_trace, "nowait", reserved_cpus=RESERVED, queues=_queues()
        )
        aware = run_simulation(
            workload, carbon_trace, "wait-awhile", reserved_cpus=RESERVED, queues=_queues()
        )
        rows.append(
            {
                "region": region,
                "carbon_reduction_pct": 100 * aware.carbon_savings_vs(baseline),
                "cost_increase_pct": 100 * aware.cost_increase_vs(baseline),
                "completion_increase_pct": 100
                * (aware.mean_completion_hours / baseline.mean_completion_hours - 1),
                "baseline_carbon_kg": baseline.total_carbon_kg,
                "aware_carbon_kg": aware.total_carbon_kg,
            }
        )
    return ExperimentResult(
        experiment_id="fig02",
        title="Motivating example: Wait Awhile vs NoWait on 5 reserved CPUs",
        rows=rows,
        notes=(
            "paper (CA, Feb): carbon -36%, cost +68%, completion +5.3%; "
            "paper (SE): carbon -4%, cost +76%"
        ),
    )
