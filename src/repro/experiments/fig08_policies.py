"""Fig. 8 -- carbon emissions vs waiting time across scheduling policies.

Week-long Alibaba-style workload in South Australia, pure on-demand
cluster.  The paper's findings: suspend-resume policies (Wait Awhile,
Ecovisor) reach the lowest carbon but the highest waiting; Lowest-Window
comes within a few percent knowing only the queue average; Carbon-Time
halves Wait Awhile's waiting for ~23% more carbon.
"""

from __future__ import annotations

from repro.analysis.normalize import normalize_to_max
from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec

__all__ = ["run", "POLICIES"]

POLICIES = (
    "nowait",
    "lowest-slot",
    "lowest-window",
    "carbon-time",
    "ecovisor",
    "wait-awhile",
)


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 8 policy comparison."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    specs = [
        SimulationSpec.build(workload, carbon_trace, spec, reserved_cpus=0)
        for spec in POLICIES
    ]
    results = dict(zip(POLICIES, sweep(specs)))
    carbon_by_policy = {spec: result.total_carbon_kg for spec, result in results.items()}
    wait_by_policy = {spec: result.mean_waiting_hours for spec, result in results.items()}
    norm_carbon = normalize_to_max(carbon_by_policy)
    norm_wait = normalize_to_max(wait_by_policy)
    rows = [
        {
            "policy": results[spec].policy_name,
            "carbon_kg": carbon_by_policy[spec],
            "normalized_carbon": norm_carbon[spec],
            "mean_wait_h": wait_by_policy[spec],
            "normalized_wait": norm_wait[spec],
        }
        for spec in POLICIES
    ]
    return ExperimentResult(
        experiment_id="fig08",
        title="Normalized carbon and waiting time by policy (SA-AU, week trace)",
        rows=rows,
        notes=(
            "paper: Wait Awhile/Ecovisor lowest carbon, highest waiting; "
            "Lowest-Window +3%/+16% carbon vs Ecovisor/Wait Awhile; "
            "Carbon-Time halves Wait Awhile's waiting"
        ),
        extras={"results": results},
    )
