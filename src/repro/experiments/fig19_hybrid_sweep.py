"""Fig. 19 -- the full hybrid: spot + reserved under a 10% eviction rate.

Spot-RES-Carbon-Time on the Azure workload (South Australia), sweeping
reserved capacity for several spot J^max values at a 10%/hour eviction
rate, normalized to NoWait on pure on-demand.  J^max = 0 degenerates to
RES-First-Carbon-Time.  Paper findings: cost curves share the same
U-shape across J^max, but the cost-minimizing pool is smaller and keeps
more carbon savings when part of the demand rides spot (e.g. 7% savings
at the J^max = 12 knee vs 5.5% at J^max = 6).
"""

from __future__ import annotations

from repro.cluster.spot import HourlyHazard
from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec
from repro.units import hours

__all__ = ["run", "JMAX_SWEEP", "RESERVED_FRACTIONS", "EVICTION_RATE"]

JMAX_SWEEP = (0, 2, 6, 12)
RESERVED_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0, 1.25)
EVICTION_RATE = 0.10


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 19 reserved x J^max sweep."""
    workload = setup.year_workload("azure", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    queues = setup.fine_grained_queues()
    eviction = HourlyHazard(EVICTION_RATE)
    mean_demand = workload.mean_demand

    grid = [
        (jmax, fraction, int(round(mean_demand * fraction)))
        for jmax in JMAX_SWEEP
        for fraction in RESERVED_FRACTIONS
    ]
    specs = [SimulationSpec.build(workload, carbon_trace, "nowait", queues=queues)]
    for jmax, _fraction, reserved in grid:
        if jmax == 0:
            policy_spec, policy_kwargs = "res-first:carbon-time", None
        else:
            policy_spec = "spot-res:carbon-time"
            policy_kwargs = {"spot_max_length": hours(jmax)}
        specs.append(
            SimulationSpec.build(
                workload,
                carbon_trace,
                policy_spec,
                policy_kwargs=policy_kwargs,
                reserved_cpus=reserved,
                queues=queues,
                eviction_model=eviction,
            )
        )
    baseline, *results = sweep(specs)

    rows = [
        {
            "jmax_h": jmax,
            "reserved_cpus": reserved,
            "reserved_frac": fraction,
            "normalized_cost": result.total_cost / baseline.total_cost,
            "normalized_carbon": result.total_carbon_kg / baseline.total_carbon_kg,
            "mean_wait_h": result.mean_waiting_hours,
        }
        for (jmax, fraction, reserved), result in zip(grid, results)
    ]
    return ExperimentResult(
        experiment_id="fig19",
        title="Spot-RES: reserved sweep per J^max at 10%/h evictions (Azure)",
        rows=rows,
        notes=(
            "paper: same U-shaped cost across J^max; the cost knee retains "
            "more carbon savings when more demand rides spot"
        ),
        extras={"mean_demand": mean_demand, "baseline": baseline},
    )
