"""Fig. 13 -- carbon/waiting trade-off across workload traces.

Year-long Mustang / Alibaba / Azure workloads in California, four
carbon-aware policies, carbon normalized to NoWait per trace.  Paper
findings: Wait Awhile saves the most carbon everywhere but waits the
longest; Mustang (<=16 h jobs) saves more than Azure (multi-day jobs that
straddle CI cycles); Lowest-Window retains more of Wait Awhile's savings
on Mustang (representative queue averages) than on Azure (variable
lengths); Carbon-Time cuts waiting ~20% vs Lowest-Window at similar
carbon.
"""

from __future__ import annotations

from repro.analysis.normalize import normalize_to_max
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation

__all__ = ["run", "POLICIES", "FAMILIES"]

POLICIES = ("lowest-window", "carbon-time", "ecovisor", "wait-awhile")
FAMILIES = ("mustang", "alibaba", "azure")


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 13 cross-trace comparison."""
    carbon_trace = setup.carbon_for("CA-US")
    rows = []
    extras = {}
    for family in FAMILIES:
        workload = setup.year_workload(family, scale)
        baseline = run_simulation(workload, carbon_trace, "nowait", reserved_cpus=0)
        results = {
            spec: run_simulation(workload, carbon_trace, spec, reserved_cpus=0)
            for spec in POLICIES
        }
        norm_wait = normalize_to_max(
            {spec: result.mean_waiting_hours for spec, result in results.items()}
        )
        for spec in POLICIES:
            result = results[spec]
            rows.append(
                {
                    "trace": family,
                    "policy": result.policy_name,
                    "normalized_carbon": result.total_carbon_kg / baseline.total_carbon_kg,
                    "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                    "normalized_wait": norm_wait[spec],
                    "mean_wait_h": result.mean_waiting_hours,
                }
            )
        extras[family] = {"baseline": baseline, **results}
    return ExperimentResult(
        experiment_id="fig13",
        title="Carbon and waiting across traces and policies (CA-US, year)",
        rows=rows,
        notes=(
            "paper: Mustang max saving 26%, Azure 19% (Wait Awhile); "
            "Lowest-Window retains 68% of the saving on Mustang vs 44% on Azure; "
            "Carbon-Time waits ~20% less than Lowest-Window"
        ),
        extras=extras,
    )
