"""Fig. 9 -- which job lengths produce the carbon savings.

CDF of total carbon reduction across job length for the Carbon-Time
policy (Alibaba workload, South Australia).  The paper finds: <1 h jobs
(~half the job count) contribute only ~10% of the savings; 3-12 h jobs
contribute ~50%; >24 h jobs only ~7.5%, because they straddle the ~24 h
carbon-intensity period.
"""

from __future__ import annotations

from repro.analysis.metrics import savings_cdf_by_length
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.simulator.simulation import run_simulation
from repro.units import format_minutes, hours

__all__ = ["run"]

LENGTH_POINTS = (
    5,
    hours(1),
    hours(3),
    hours(12),
    hours(24),
    hours(60),
    hours(72),
)


def run(scale: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 9 savings-by-length CDF."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    result = run_simulation(workload, carbon_trace, "carbon-time", reserved_cpus=0)
    cdf = savings_cdf_by_length(result.records, list(LENGTH_POINTS))
    lengths = workload.lengths()
    rows = [
        {
            "job_length<=": format_minutes(point),
            "savings_share": share,
            "job_share": float((lengths <= point).mean()),
        }
        for point, share in zip(LENGTH_POINTS, cdf)
    ]
    medium = (
        cdf[LENGTH_POINTS.index(hours(12))] - cdf[LENGTH_POINTS.index(hours(3))]
    )
    long_share = 1.0 - cdf[LENGTH_POINTS.index(hours(24))]
    return ExperimentResult(
        experiment_id="fig09",
        title="CDF of total carbon savings by job length (Carbon-Time, SA-AU)",
        rows=rows,
        notes=(
            f"3-12 h jobs contribute {100 * medium:.0f}% of savings "
            f"(paper ~50%); >24 h jobs {100 * long_share:.0f}% (paper ~7.5%)"
        ),
        extras={"medium_share": medium, "long_share": long_share},
    )
