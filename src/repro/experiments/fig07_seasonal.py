"""Fig. 7 -- seasonal carbon-intensity variation.

The paper plots monthly mean CI for California and South Australia,
noting that South Australia's carbon intensity nearly doubles between
July and December (southern-hemisphere seasonality).
"""

from __future__ import annotations

from repro.carbon.regions import region_trace
from repro.carbon.stats import monthly_means
from repro.experiments.base import ExperimentResult

__all__ = ["run"]

MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


def run(scale: str | None = None) -> ExperimentResult:
    """Monthly mean CI for CA-US and SA-AU (scale-independent)."""
    ca = monthly_means(region_trace("CA-US"))
    sa = monthly_means(region_trace("SA-AU"))
    rows = [
        {"month": month, "CA-US": ca_value, "SA-AU": sa_value}
        for month, ca_value, sa_value in zip(MONTHS, ca, sa)
    ]
    jul_dec_ratio = sa[11] / sa[6]
    return ExperimentResult(
        experiment_id="fig07",
        title="Mean carbon intensity by month",
        rows=rows,
        notes=(
            f"SA-AU December/July ratio: {jul_dec_ratio:.2f} "
            "(paper: carbon intensity almost doubles between July and December)"
        ),
        extras={"sa_jul_dec_ratio": jul_dec_ratio},
    )
