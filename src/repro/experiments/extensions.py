"""Experiments for the future-work extensions beyond the paper.

* **ext-suspend-resume** -- GAIA-SR (suspend-resume with queue-average
  knowledge; paper Section 4.1 future work) against Wait Awhile (exact
  knowledge), Ecovisor (reactive), and Lowest-Window (contiguous).
* **ext-checkpointing** -- the deferred checkpoint/eviction trade-off of
  Section 4.2.4: Fig. 18's J^max sweep with checkpointed spot retries.
* **ext-federation** -- spatial + temporal shifting across regions
  (Sections 2.1/9 future work).
* **ext-provisioning** -- instance boot overheads (accounted by the
  prototype, ignored by the paper's simulator): how fragmentation-heavy
  policies pay for their elasticity.
"""

from __future__ import annotations

from repro.carbon.regions import region_trace
from repro.cluster.spot import CheckpointConfig, HourlyHazard
from repro.experiments import setup
from repro.experiments.base import ExperimentResult
from repro.federation.selectors import GreedySpatial, HomeRegion, LowestMeanCI, SpatioTemporal
from repro.federation.simulation import FederatedRegion, run_federated_simulation
from repro.policies.carbon_time import CarbonTime
from repro.policies.wrappers import SpotFirst
from repro.simulator.simulation import run_simulation
from repro.units import hours

__all__ = [
    "suspend_resume",
    "checkpointing",
    "federation",
    "provisioning",
    "arrival_phase",
    "energy_price",
    "scaling",
]


def suspend_resume(scale: str | None = None) -> ExperimentResult:
    """GAIA-SR vs the paper's policies on carbon and waiting."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    baseline = run_simulation(workload, carbon_trace, "nowait")
    rows = []
    for spec in ("lowest-window", "gaia-sr", "ecovisor", "wait-awhile"):
        result = run_simulation(workload, carbon_trace, spec)
        rows.append(
            {
                "policy": result.policy_name,
                "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                "mean_wait_h": result.mean_waiting_hours,
                "knows_length": "exact" if spec == "wait-awhile" else
                ("none" if spec == "ecovisor" else "average"),
            }
        )
    return ExperimentResult(
        experiment_id="ext-suspend-resume",
        title="Suspend-resume with queue-average knowledge (GAIA-SR)",
        rows=rows,
        notes=(
            "GAIA-SR recovers most of Wait Awhile's savings over the "
            "contiguous Lowest-Window without knowing job lengths"
        ),
    )


def checkpointing(scale: str | None = None) -> ExperimentResult:
    """Checkpointed spot retries vs progress loss (Fig. 18 revisited)."""
    workload = setup.year_workload("azure", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    queues = setup.fine_grained_queues()
    baseline = run_simulation(workload, carbon_trace, "nowait", queues=queues)
    eviction = HourlyHazard(0.10)
    config = CheckpointConfig(interval=30, overhead=2)
    rows = []
    for jmax in (2, 6, 12, 24):
        policy = SpotFirst(CarbonTime(), spot_max_length=hours(jmax))
        plain = run_simulation(
            workload, carbon_trace, policy, queues=queues, eviction_model=eviction
        )
        ckpt = run_simulation(
            workload, carbon_trace, policy, queues=queues, eviction_model=eviction,
            checkpointing=config, retry_spot=True,
        )
        rows.append(
            {
                "jmax_h": jmax,
                "plain_cost": plain.total_cost / baseline.total_cost,
                "ckpt_cost": ckpt.total_cost / baseline.total_cost,
                "plain_carbon": plain.total_carbon_kg / baseline.total_carbon_kg,
                "ckpt_carbon": ckpt.total_carbon_kg / baseline.total_carbon_kg,
                "plain_lost_h": plain.lost_cpu_hours,
                "ckpt_lost_h": ckpt.lost_cpu_hours,
            }
        )
    return ExperimentResult(
        experiment_id="ext-checkpointing",
        title="Checkpointed spot retries at 10%/h evictions (Azure, SA-AU)",
        rows=rows,
        notes=(
            "checkpointing re-opens the large-J^max regime Fig. 18 closes: "
            "lost work shrinks by orders of magnitude, so big spot shares "
            "keep paying"
        ),
    )


def federation(scale: str | None = None) -> ExperimentResult:
    """Spatial + temporal shifting across a three-region federation."""
    workload = setup.week_workload("alibaba", scale)
    regions = [
        FederatedRegion("CA-US", region_trace("CA-US")),
        FederatedRegion("SA-AU", region_trace("SA-AU")),
        FederatedRegion("ON-CA", region_trace("ON-CA")),
    ]
    selectors = (
        HomeRegion("CA-US"),
        LowestMeanCI(),
        GreedySpatial(),
        SpatioTemporal(),
    )
    home = run_federated_simulation(
        workload, regions, selectors[0], "nowait", home="CA-US"
    )
    rows = []
    for selector in selectors:
        result = run_federated_simulation(
            workload, regions, selector, "carbon-time", home="CA-US"
        )
        rows.append(
            {
                "selector": selector.name,
                "carbon_saving_pct": 100
                * (1 - result.total_carbon_kg / home.total_carbon_kg),
                "mean_wait_h": result.mean_waiting_hours,
                "migrated_jobs": result.migrated_jobs,
                "placements": "/".join(
                    str(result.placements.get(r.name, 0)) for r in regions
                ),
            }
        )
    return ExperimentResult(
        experiment_id="ext-federation",
        title="Spatial shifting across CA-US / SA-AU / ON-CA (Carbon-Time)",
        rows=rows,
        notes=(
            "baseline: NoWait at home (CA-US); placements are "
            "CA-US/SA-AU/ON-CA job counts"
        ),
    )


def arrival_phase(scale: str | None = None) -> ExperimentResult:
    """How the submission cycle's phase changes what shifting can save.

    The paper's workloads arrive uniformly; real clusters see diurnal
    submission peaks.  When arrivals peak *in* the midday solar valley,
    running immediately is already green and temporal shifting saves
    little; when they peak on the evening carbon ramp, shifting saves the
    most.  The generators' ``arrival_peak_hour`` knob exposes this.
    """
    from repro.workload.sampling import week_long_trace
    from repro.workload.synthetic import alibaba_like

    scale_obj = setup.current_scale(scale)
    carbon_trace = setup.carbon_for("CA-US")  # strong solar valley, evening ramp
    rows = []
    # The synthetic CA-US grid peaks at 19h, so its CI valley sits ~7h.
    raw = alibaba_like(num_jobs=scale_obj.raw_jobs, seed=setup.DEFAULT_SEED)
    for label, peak in (("uniform", None), ("valley-peak (7h)", 7.0),
                        ("ramp-peak (19h)", 19.0)):
        workload = week_long_trace(
            raw, num_jobs=scale_obj.week_jobs, seed=setup.DEFAULT_SEED,
            arrival_peak_hour=peak,
        )
        baseline = run_simulation(workload, carbon_trace, "nowait")
        aware = run_simulation(workload, carbon_trace, "carbon-time")
        rows.append(
            {
                "arrivals": label,
                "nowait_carbon_kg": baseline.total_carbon_kg,
                "carbon_saving_pct": 100 * aware.carbon_savings_vs(baseline),
                "mean_wait_h": aware.mean_waiting_hours,
            }
        )
    return ExperimentResult(
        experiment_id="ext-arrival-phase",
        title="Submission-cycle phase vs temporal-shifting value (CA-US)",
        rows=rows,
        notes=(
            "arrivals peaking in the solar valley are green by default; "
            "arrivals peaking on the evening ramp leave the most for the "
            "scheduler to save"
        ),
    )


def energy_price(scale: str | None = None) -> ExperimentResult:
    """The private-cloud carbon/energy-cost frontier (Section 7, Fig. 20).

    On an ERCOT-like grid where price and CI correlate at only ~0.16, a
    carbon-optimal schedule is not energy-cost-optimal and vice versa;
    the weighted policy traces the frontier between them.
    """
    from repro.analysis.metrics import energy_cost_usd
    from repro.carbon.price import correlated_price_trace
    from repro.policies.price_aware import PriceAware, WeightedCarbonPrice

    workload = setup.week_workload("alibaba", scale)
    carbon_trace = region_trace("TX-US")
    price = correlated_price_trace(carbon_trace, target_correlation=0.16, seed=0)
    policies = [
        ("nowait", None),
        ("carbon-optimal", WeightedCarbonPrice(1.0)),
        ("weighted-0.5", WeightedCarbonPrice(0.5)),
        ("price-optimal", PriceAware()),
    ]
    rows = []
    baseline = None
    for label, policy in policies:
        result = run_simulation(
            workload, carbon_trace, policy if policy is not None else "nowait",
            price_trace=price,
        )
        baseline = baseline or result
        rows.append(
            {
                "policy": label,
                "carbon_kg": result.total_carbon_kg,
                "energy_cost_usd": energy_cost_usd(result, price),
                "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
            }
        )
    return ExperimentResult(
        experiment_id="ext-energy-price",
        title="Carbon vs energy-cost frontier (TX-US, price/CI corr ~0.16)",
        rows=rows,
        notes=(
            "carbon-optimal and price-optimal schedules diverge on a "
            "weakly-correlated grid; the weighted policy sits between"
        ),
    )


def scaling(scale: str | None = None) -> ExperimentResult:
    """Carbon-aware scaling of malleable jobs (§9 future work).

    Each workload job becomes a malleable job (its length as total work)
    planned against the CI trace with a 24-hour completion slack.  More
    parallelism headroom concentrates more work into carbon valleys;
    Amdahl-limited jobs capture less of that than perfectly parallel ones.
    """
    from repro.scaling.planner import MalleableJob, fixed_allocation_plan, plan_carbon_scaling
    from repro.scaling.speedup import AmdahlSpeedup, LinearSpeedup
    from repro.units import hours

    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    jobs = [
        MalleableJob(work=float(job.length), max_cpus=1, arrival=job.arrival)
        for job in workload
    ]

    def total_carbon(max_cpus, speedup) -> float:
        total = 0.0
        for job in jobs:
            malleable = MalleableJob(
                work=job.work, max_cpus=max_cpus, arrival=job.arrival
            )
            deadline = min(
                int(job.arrival + job.work + hours(24)), carbon_trace.horizon_minutes
            )
            plan = plan_carbon_scaling(malleable, carbon_trace, deadline, speedup=speedup)
            total += plan.carbon_g
        return total

    baseline = sum(
        fixed_allocation_plan(job, carbon_trace, cpus=1).carbon_g for job in jobs
    )
    rows = []
    for max_cpus in (1, 2, 4, 8):
        for label, speedup in (("linear", LinearSpeedup()),
                               ("amdahl-0.9", AmdahlSpeedup(0.9))):
            if max_cpus == 1 and label == "amdahl-0.9":
                continue  # identical to linear at one CPU
            total = total_carbon(max_cpus, speedup)
            rows.append(
                {
                    "max_cpus": max_cpus,
                    "speedup": label,
                    "normalized_carbon": total / baseline,
                    "carbon_saving_pct": 100 * (1 - total / baseline),
                }
            )
    return ExperimentResult(
        experiment_id="ext-scaling",
        title="Carbon-aware scaling of malleable jobs (SA-AU, week trace)",
        rows=rows,
        notes=(
            "baseline: run-on-arrival at 1 CPU; max_cpus=1 is pure "
            "temporal shifting; higher caps add the scaling modality"
        ),
    )


def provisioning(scale: str | None = None) -> ExperimentResult:
    """Instance boot overheads across scheduling styles."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    rows = []
    for spec in ("nowait", "carbon-time", "ecovisor", "wait-awhile"):
        plain = run_simulation(workload, carbon_trace, spec)
        booted = run_simulation(workload, carbon_trace, spec, instance_overhead_minutes=5)
        rows.append(
            {
                "policy": plain.policy_name,
                "cost_overhead_pct": 100 * (booted.total_cost / plain.total_cost - 1),
                "carbon_overhead_pct": 100
                * (booted.total_carbon_kg / plain.total_carbon_kg - 1),
                "boot_cpu_h": booted.provisioning_cpu_hours,
            }
        )
    return ExperimentResult(
        experiment_id="ext-provisioning",
        title="5-minute instance boot overhead by scheduling style",
        rows=rows,
        notes=(
            "suspend-resume policies launch an instance per execution "
            "segment, so their elasticity overhead exceeds the "
            "uninterruptible policies'"
        ),
    )
