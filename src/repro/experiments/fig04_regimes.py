"""Fig. 4 -- operating regimes of the reserved-capacity trade-off.

The paper's conceptual figure distinguishes three regimes as reserved
capacity grows: (1) below the base demand -- cost falls, carbon savings
intact; (2) between base and mean demand -- genuine carbon/cost
trade-off; (3) excess capacity below break-even utilization -- never
operate here.  This experiment realizes the figure empirically: a
reserved sweep with the work-conserving carbon-aware policy, each point
labelled with its regime.
"""

from __future__ import annotations

from repro.analysis.tradeoff import classify_regimes, knee_point, reserved_sweep
from repro.cluster.pricing import DEFAULT_PRICING
from repro.experiments import setup
from repro.experiments.base import ExperimentResult

__all__ = ["run"]


def run(scale: str | None = None) -> ExperimentResult:
    """Sweep reserved capacity from zero to ~1.6x the mean demand."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    mean_demand = workload.mean_demand
    values = sorted({int(round(mean_demand * frac)) for frac in
                     (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.4, 3.5)})
    points = reserved_sweep(workload, carbon_trace, "res-first:carbon-time", values)
    labels = classify_regimes(points, DEFAULT_PRICING.breakeven_utilization())
    rows = [
        {
            "reserved_cpus": point.reserved_cpus,
            "normalized_cost": point.normalized_cost,
            "normalized_carbon": point.normalized_carbon,
            "reserved_utilization": point.reserved_utilization,
            "regime": label,
        }
        for point, label in zip(points, labels)
    ]
    knee = knee_point(points)
    return ExperimentResult(
        experiment_id="fig04",
        title="Reserved-capacity operating regimes (RES-First-Carbon-Time)",
        rows=rows,
        notes=(
            f"mean demand {mean_demand:.1f} CPUs; cost knee at "
            f"{knee.reserved_cpus} reserved CPUs (paper: knee near mean demand)"
        ),
        extras={"mean_demand": mean_demand, "knee_reserved": knee.reserved_cpus},
    )
