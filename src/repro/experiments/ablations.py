"""Ablations beyond the paper's evaluation.

* **Forecast noise** -- the paper assumes perfect CI foresight (its
  Section 6.1 cites highly accurate production forecasts); we quantify
  how Carbon-Time's savings degrade as forecast error grows.
* **Candidate granularity** -- start-time search resolution: minute-exact
  vs the 5-minute default vs hourly slots.
* **Carbon tax** -- the paper's Section 7 alternative: price carbon into
  the bill and watch the three-way trade-off collapse toward a
  cost-performance trade-off.
"""

from __future__ import annotations

from repro.cluster.pricing import PricingModel
from repro.experiments import setup
from repro.experiments.base import ExperimentResult, sweep
from repro.simulator.runner import SimulationSpec

__all__ = ["forecast_noise", "granularity", "carbon_tax"]

NOISE_SIGMAS = (0.0, 0.1, 0.25, 0.5)
GRANULARITIES = (1, 5, 15, 60)
CARBON_PRICES = (0.0, 0.05, 0.5)  # $/kgCO2eq; 0.05 ~ a $50/tonne tax


def forecast_noise(scale: str | None = None) -> ExperimentResult:
    """Carbon-Time savings vs CI-forecast error."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    specs = [SimulationSpec.build(workload, carbon_trace, "nowait")]
    specs.extend(
        SimulationSpec.build(
            workload, carbon_trace, "carbon-time", forecast_sigma=sigma, forecast_seed=7
        )
        for sigma in NOISE_SIGMAS
    )
    baseline, *results = sweep(specs)
    rows = []
    for sigma, result in zip(NOISE_SIGMAS, results):
        rows.append(
            {
                "forecast_sigma": sigma,
                "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                "mean_wait_h": result.mean_waiting_hours,
            }
        )
    return ExperimentResult(
        experiment_id="ablation-forecast",
        title="Carbon-Time savings under noisy CI forecasts",
        rows=rows,
        notes="sigma is the relative forecast error at a 24 h lead",
    )


def granularity(scale: str | None = None) -> ExperimentResult:
    """Start-time candidate spacing: accuracy vs search cost."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    specs = [SimulationSpec.build(workload, carbon_trace, "nowait")]
    specs.extend(
        SimulationSpec.build(workload, carbon_trace, "carbon-time", granularity=step)
        for step in GRANULARITIES
    )
    baseline, *results = sweep(specs)
    rows = []
    for step, result in zip(GRANULARITIES, results):
        rows.append(
            {
                "granularity_min": step,
                "carbon_saving_pct": 100 * result.carbon_savings_vs(baseline),
                "mean_wait_h": result.mean_waiting_hours,
                "candidates_per_24h": 24 * 60 // step,
            }
        )
    return ExperimentResult(
        experiment_id="ablation-granularity",
        title="Candidate start-time granularity for Carbon-Time",
        rows=rows,
        notes="hourly candidates already capture nearly all savings "
        "(CI is piecewise-constant per hour)",
    )


def carbon_tax(scale: str | None = None) -> ExperimentResult:
    """Fold a carbon price into cost (paper Section 7 discussion)."""
    workload = setup.week_workload("alibaba", scale)
    carbon_trace = setup.carbon_for("SA-AU")
    specs = []
    for price in CARBON_PRICES:
        pricing = PricingModel().with_carbon_price(price)
        for policy in ("nowait", "res-first:carbon-time"):
            specs.append(
                SimulationSpec.build(
                    workload, carbon_trace, policy, reserved_cpus=9, pricing=pricing
                )
            )
    results = sweep(specs)
    rows = []
    for index, price in enumerate(CARBON_PRICES):
        agnostic, aware = results[2 * index], results[2 * index + 1]
        rows.append(
            {
                "carbon_price_usd_per_kg": price,
                "agnostic_cost": agnostic.total_cost,
                "aware_cost": aware.total_cost,
                "aware_cheaper": aware.total_cost < agnostic.total_cost,
                "carbon_saving_pct": 100 * aware.carbon_savings_vs(agnostic),
            }
        )
    return ExperimentResult(
        experiment_id="ablation-carbon-tax",
        title="Carbon tax folds the trade-off into cost",
        rows=rows,
        notes=(
            "with a high enough carbon price, the carbon-aware schedule "
            "becomes the cost-optimal one"
        ),
    )
