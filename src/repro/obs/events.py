"""Typed trace events: the vocabulary of the telemetry contract.

Every event is a frozen dataclass with JSON-native fields; a trace is a
stream of events serialized one-per-line (JSONL) by
:class:`repro.obs.tracer.JsonlTracer`.  The wire form of an event is its
field dict plus a ``"type"`` discriminator, so
``event_from_dict(event.to_dict())`` round-trips exactly -- the schema
test relies on it.

Field conventions (details and a worked example per event live in
``docs/observability.md``):

* ``time`` -- integer simulation minute (never wall-clock);
* ``option`` -- lowercase purchase-option name (``"reserved"``,
  ``"on_demand"``, ``"spot"``);
* carbon intensities are in g/kWh, energy in kWh, carbon masses in
  grams, costs in USD, electricity prices in the price series' native
  $/MWh.

This module is dependency-free by design (stdlib only): the tracer can
be imported anywhere -- engine, policies, runner -- without cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

__all__ = [
    "Event",
    "EVENT_TYPES",
    "event_from_dict",
    "RunMeta",
    "JobArrival",
    "PolicyDecision",
    "CandidateWindow",
    "JobStart",
    "JobEvict",
    "JobFinish",
    "IntervalAccount",
    "MetricsSnapshot",
    "SweepSubmitted",
    "SweepCompleted",
    "SpecRetried",
    "SpecFailed",
    "PoolRespawned",
    "BackendOpened",
    "BackendClosed",
    "CampaignCreated",
    "CampaignResumed",
    "CampaignCompleted",
    "FederationRouted",
    "FederationCompleted",
    "ScalingPlanned",
    "ServiceStarted",
    "ServiceJobAdmitted",
    "ServiceJobRejected",
    "ServiceJobCancelled",
    "ServiceClockAdvanced",
    "ServiceDrained",
    "ServiceStopped",
]


@dataclass(frozen=True)
class Event:
    """Base class for all trace events.

    Subclasses set the class attribute ``type`` (the wire
    discriminator) and register themselves in :data:`EVENT_TYPES` via
    the :func:`_register` decorator.
    """

    type: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """The JSON-serializable wire form: fields plus ``"type"``."""
        payload: dict[str, Any] = {"type": self.type}
        payload.update(dataclasses.asdict(self))
        return payload


#: Wire discriminator -> event class, for parsing traces back.
EVENT_TYPES: dict[str, type[Event]] = {}


def _register(event_class: type[Event]) -> type[Event]:
    """Class decorator adding an event type to :data:`EVENT_TYPES`."""
    EVENT_TYPES[event_class.type] = event_class
    return event_class


def event_from_dict(payload: dict[str, Any]) -> Event:
    """Rebuild a typed event from its wire form.

    Raises ``KeyError`` for an unknown ``"type"`` and ``TypeError`` for
    missing or unexpected fields -- strict on purpose, so the schema
    round-trip test catches contract drift.
    """
    fields = dict(payload)
    event_class = EVENT_TYPES[fields.pop("type")]
    return event_class(**fields)


@_register
@dataclass(frozen=True)
class RunMeta(Event):
    """Header event identifying one simulation run.

    Emitted once, first, by the engine; ``summarize`` groups decision
    counts under the ``policy`` named here.
    """

    type: ClassVar[str] = "run_meta"

    policy: str
    workload: str
    region: str
    reserved_cpus: int
    horizon: int


@_register
@dataclass(frozen=True)
class JobArrival(Event):
    """A job entered the system at its trace arrival minute."""

    type: ClassVar[str] = "job_arrival"

    time: int
    job_id: int
    queue: str
    cpus: int
    length: int


@_register
@dataclass(frozen=True)
class PolicyDecision(Event):
    """The policy's scheduling decision for one job, with its inputs.

    ``arrival_ci_g_per_kwh`` / ``start_ci_g_per_kwh`` are the true
    hourly carbon intensity at the arrival minute and at the chosen
    start minute; ``start_price_usd_per_mwh`` is the electricity price
    at the chosen start when a price series is configured, else
    ``None``.  ``memoized`` marks decisions served from the engine's
    decision memo rather than a fresh ``Policy.decide`` call.
    """

    type: ClassVar[str] = "policy_decision"

    time: int
    job_id: int
    policy: str
    start_time: int
    use_spot: bool
    reserved_pickup: bool
    num_segments: int
    memoized: bool
    arrival_ci_g_per_kwh: float
    start_ci_g_per_kwh: float
    start_price_usd_per_mwh: float | None = None


@_register
@dataclass(frozen=True)
class CandidateWindow(Event):
    """One candidate-start search performed by a window policy.

    Emitted by :meth:`SchedulingContext.candidate_starts`: the search
    ranged over ``num_candidates`` start minutes in ``[time, latest]``
    for a job expected to hold its window for ``hold_minutes``.
    """

    type: ClassVar[str] = "candidate_window"

    time: int
    latest: int
    num_candidates: int
    hold_minutes: int


@_register
@dataclass(frozen=True)
class JobStart(Event):
    """One allocation began executing (initial start, restart, segment).

    ``attempt`` counts spot allocations made for the job so far (0 for
    non-spot allocations before any spot attempt); ``duration`` is the
    planned wall minutes of this allocation, including checkpoint
    overhead on spot.
    """

    type: ClassVar[str] = "job_start"

    time: int
    job_id: int
    option: str
    duration: int
    attempt: int


@_register
@dataclass(frozen=True)
class JobEvict(Event):
    """A spot revocation hit a running allocation.

    ``lost_cpu_minutes`` and ``preserved_minutes`` are this eviction's
    alone (cpu-minutes of progress lost; minutes saved by checkpoints);
    ``evictions`` is the job's cumulative eviction count.
    """

    type: ClassVar[str] = "job_evict"

    time: int
    job_id: int
    lost_cpu_minutes: float
    preserved_minutes: int
    evictions: int


@_register
@dataclass(frozen=True)
class JobFinish(Event):
    """A job completed all of its work."""

    type: ClassVar[str] = "job_finish"

    time: int
    job_id: int
    waiting_minutes: int
    evictions: int


@_register
@dataclass(frozen=True)
class IntervalAccount(Event):
    """Accounting snapshot of one closed usage interval.

    The metered values are exactly the engine's vectorized per-interval
    accounting (``Engine._interval_values``): carbon from the true
    trace, energy from the cluster energy model, cost at the option's
    hourly rate (0 for reserved).  Boot-overhead surcharges are per-job,
    not per-interval, and appear only in ``JobRecord``.
    """

    type: ClassVar[str] = "interval_account"

    job_id: int
    start: int
    end: int
    cpus: int
    option: str
    carbon_g: float
    energy_kwh: float
    cost_usd: float


@_register
@dataclass(frozen=True)
class MetricsSnapshot(Event):
    """A metrics-registry snapshot (see :mod:`repro.obs.metrics`).

    ``scope`` names the emitting component (``"engine"``, ``"runner"``);
    ``metrics`` is the ``MetricsRegistry.snapshot()`` mapping.
    """

    type: ClassVar[str] = "metrics_snapshot"

    scope: str
    metrics: dict[str, Any]


@_register
@dataclass(frozen=True)
class SweepSubmitted(Event):
    """A ``run_many`` batch was planned: how much work remains after
    cache hits and in-batch deduplication."""

    type: ClassVar[str] = "sweep_submitted"

    total: int
    executed: int
    cache_hits: int
    deduplicated: int
    jobs: int


@_register
@dataclass(frozen=True)
class SweepCompleted(Event):
    """A ``run_many`` batch finished; ``wall_seconds`` is the whole
    batch's wall time including cache lookups."""

    type: ClassVar[str] = "sweep_completed"

    total: int
    executed: int
    cache_hits: int
    deduplicated: int
    jobs: int
    wall_seconds: float


@_register
@dataclass(frozen=True)
class SpecRetried(Event):
    """One spec's execution attempt failed and will be retried.

    ``attempt`` is the attempt that just failed (1-based);
    ``delay_seconds`` the backoff before the next attempt;
    ``error_type`` the exception class name (``"TimeoutError"`` for a
    deadline expiry, ``"WorkerCrash"`` for a pool-breaking death).
    """

    type: ClassVar[str] = "spec_retried"

    index: int
    digest_prefix: str
    attempt: int
    error_type: str
    delay_seconds: float


@_register
@dataclass(frozen=True)
class SpecFailed(Event):
    """One spec exhausted its attempts (or hit a fail-fast error).

    Mirrors one entry of the batch's ``RunStats.failures`` report;
    ``attempts`` counts executions actually charged to the spec.
    """

    type: ClassVar[str] = "spec_failed"

    index: int
    digest_prefix: str
    error_type: str
    message: str
    attempts: int


@_register
@dataclass(frozen=True)
class PoolRespawned(Event):
    """The worker pool was torn down and respawned mid-batch.

    ``reason`` is ``"broken"`` (a worker died, breaking the pool) or
    ``"timeout"`` (a hung worker was abandoned); ``respawns`` is the
    batch's cumulative respawn count.
    """

    type: ClassVar[str] = "pool_respawned"

    reason: str
    respawns: int


@_register
@dataclass(frozen=True)
class BackendOpened(Event):
    """A sweep backend acquired its execution resources.

    Emitted by ``run_many`` once per batch that dispatches work;
    ``backend`` is the registered backend name (``"serial"``,
    ``"pool"``, ``"workqueue"``, ...) and ``workers`` the parallelism it
    was opened with (already capped at the distinct-spec count).
    """

    type: ClassVar[str] = "runner.backend.opened"

    backend: str
    workers: int


@_register
@dataclass(frozen=True)
class BackendClosed(Event):
    """A sweep backend released its resources at the end of a batch.

    ``executed`` counts the attempts that completed with a result;
    ``respawns`` the worker/pool replacements recovery performed.
    """

    type: ClassVar[str] = "runner.backend.closed"

    backend: str
    executed: int
    respawns: int


@_register
@dataclass(frozen=True)
class CampaignCreated(Event):
    """A campaign directory was initialized from a spec list.

    ``total`` counts submitted specs, ``distinct`` unique digests --
    the campaign executes each distinct digest once and aliases the
    rest (the same in-batch dedup contract as ``run_many``).
    """

    type: ClassVar[str] = "campaign.created"

    name: str
    total: int
    distinct: int


@_register
@dataclass(frozen=True)
class CampaignResumed(Event):
    """A campaign run started from its journal.

    ``completed`` is the number of distinct digests already journaled
    complete (with readable result files); ``remaining`` the distinct
    digests still to execute.  A fresh campaign emits this with
    ``completed=0``.
    """

    type: ClassVar[str] = "campaign.resumed"

    name: str
    completed: int
    remaining: int


@_register
@dataclass(frozen=True)
class CampaignCompleted(Event):
    """A campaign run finished (not necessarily the whole campaign).

    ``executed`` counts the distinct digests this run dispatched,
    ``failed`` those that exhausted recovery, and ``remaining`` the
    distinct digests still incomplete afterwards (nonzero when the run
    was limited or failures remain).
    """

    type: ClassVar[str] = "campaign.completed"

    name: str
    executed: int
    failed: int
    remaining: int


@_register
@dataclass(frozen=True)
class FederationRouted(Event):
    """A federated run finished routing jobs to regions.

    Emitted once per federated simulation, after the selector placed
    every job and before any region's engine ran.  ``migrated`` counts
    off-home placements; ``migration_minutes`` is the per-job staging
    delay those placements paid (0 when dropped by the
    ``migration-drop`` fault).
    """

    type: ClassVar[str] = "federation.routed"

    selector: str
    home: str
    regions: int
    jobs: int
    migrated: int
    migration_minutes: int


@_register
@dataclass(frozen=True)
class FederationCompleted(Event):
    """A federated run finished every region's engine and merged
    the accounting.

    ``carbon_kg`` / ``cost_usd`` are the federation totals (sums over
    regions); ``jobs`` counts executed records across all regions.
    """

    type: ClassVar[str] = "federation.completed"

    selector: str
    policy: str
    regions: int
    jobs: int
    migrated: int
    carbon_kg: float
    cost_usd: float


@_register
@dataclass(frozen=True)
class ScalingPlanned(Event):
    """A malleable-job scaling plan was computed.

    ``speedup`` and ``mode`` are the declarative tags of
    :class:`repro.scaling.spec.ScalingSpec` rendered as strings (e.g.
    ``"amdahl:0.9"``, ``"greedy"`` or ``"fixed:4"``); ``peak_cpus`` and
    ``cpu_minutes`` summarize the allocation shape.
    """

    type: ClassVar[str] = "scaling.planned"

    speedup: str
    mode: str
    work: float
    deadline: int
    peak_cpus: int
    cpu_minutes: float
    carbon_g: float
    energy_kwh: float


@_register
@dataclass(frozen=True)
class ServiceStarted(Event):
    """The scheduler service opened its engine session and began
    accepting submissions.

    ``policy`` / ``region`` identify the configured engine;
    ``max_pending`` is the bounded command-queue size (the backpressure
    limit) and ``horizon`` the last admissible arrival minute.
    """

    type: ClassVar[str] = "service.started"

    policy: str
    region: str
    reserved_cpus: int
    max_pending: int
    horizon: int


@_register
@dataclass(frozen=True)
class ServiceJobAdmitted(Event):
    """A submission passed admission control and was enqueued.

    ``time`` is the arrival minute assigned to the job (the service
    clock if the client did not pin one); ``queue`` the routed queue.
    """

    type: ClassVar[str] = "service.job_admitted"

    time: int
    job_id: int
    queue: str
    cpus: int
    length: int


@_register
@dataclass(frozen=True)
class ServiceJobRejected(Event):
    """A submission failed admission control or hit backpressure.

    ``reason`` is a stable machine-readable code (for example
    ``"queue_full"``, ``"too_long"``, ``"arrival_past"``); ``status``
    the HTTP status the API maps it to.  ``job_id`` is -1 when the
    submission was rejected before an id could be assigned.
    """

    type: ClassVar[str] = "service.job_rejected"

    time: int
    job_id: int
    reason: str
    status: int


@_register
@dataclass(frozen=True)
class ServiceJobCancelled(Event):
    """A queued job was cancelled before the engine scheduled it.

    Only jobs still waiting in the command queue are cancellable; the
    engine never sees them, so accounting is untouched.
    """

    type: ClassVar[str] = "service.job_cancelled"

    time: int
    job_id: int


@_register
@dataclass(frozen=True)
class ServiceClockAdvanced(Event):
    """The service clock moved forward without an arrival.

    ``pending`` is the number of dynamic events (finishes, evictions,
    starts) still outstanding after advancing from ``from_time`` to
    ``time``.
    """

    type: ClassVar[str] = "service.clock_advanced"

    time: int
    from_time: int
    pending: int


@_register
@dataclass(frozen=True)
class ServiceDrained(Event):
    """The session was drained: the event loop ran dry and the
    authoritative :class:`~repro.simulator.results.SimulationResult`
    was built.  ``digest`` is its accounting digest -- the value the
    batch-equivalence guarantee is stated over.
    """

    type: ClassVar[str] = "service.drained"

    time: int
    jobs: int
    carbon_g: float
    cost_usd: float
    digest: str


@_register
@dataclass(frozen=True)
class ServiceStopped(Event):
    """The service shut down; ``drained`` records whether the session
    was drained first (an undrained stop discards in-flight state)."""

    type: ClassVar[str] = "service.stopped"

    jobs_submitted: int
    jobs_rejected: int
    drained: bool
