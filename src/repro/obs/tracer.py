"""Tracer implementations: where trace events go.

The contract is one method -- :meth:`Tracer.emit` -- plus an ``enabled``
flag that instrumented code checks *before* constructing an event, so a
disabled tracer costs one attribute read per event site and allocates
nothing.  :data:`NULL_TRACER` is the process-wide disabled singleton
every instrumented component defaults to.

Select a tracer explicitly (the ``tracer=`` keyword of
``run_simulation`` / ``Engine`` / ``run_many``) or through the
environment (:func:`tracer_from_env`):

* ``$REPRO_TRACE`` unset, empty, or ``0`` -- tracing off;
* ``$REPRO_TRACE=1`` -- JSONL to ``repro-trace.jsonl`` (appending);
* ``$REPRO_TRACE=<path>`` -- JSONL to that path;
* ``$REPRO_TRACE_FILE=<path>`` -- overrides the destination.

Writes are line-buffered single ``write`` calls, so concurrent worker
processes appending to one file interleave whole lines, not bytes.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.obs.events import Event

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "JsonlTracer",
    "tracer_from_env",
]


class Tracer:
    """Base tracer: enabled, but drops events (subclasses record them)."""

    #: Instrumented code checks this before building an event.
    enabled: bool = True

    def emit(self, event: Event) -> None:
        """Record one event (base class drops it)."""

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    def __enter__(self) -> "Tracer":
        """Support ``with JsonlTracer(...) as tracer:`` usage."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close on context-manager exit."""
        self.close()


class NullTracer(Tracer):
    """The disabled tracer: ``enabled`` is False and ``emit`` is a no-op."""

    enabled = False

    def emit(self, event: Event) -> None:
        """Drop the event."""


#: Process-wide disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()


class CollectingTracer(Tracer):
    """In-memory tracer collecting events into a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(event)

    def by_type(self, type_name: str) -> list[Event]:
        """All collected events with the given wire type, in order."""
        return [event for event in self.events if event.type == type_name]


class JsonlTracer(Tracer):
    """Tracer writing one JSON object per line to a file or stream.

    Parameters
    ----------
    destination:
        A path (opened lazily in append mode, created if missing) or an
        already-open text stream (not closed by :meth:`close`).
    """

    def __init__(self, destination: str | IO[str]) -> None:
        self._path: str | None
        self._stream: IO[str] | None
        if isinstance(destination, str):
            self._path = destination
            self._stream = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = destination
            self._owns_stream = False
        self.emitted = 0

    def emit(self, event: Event) -> None:
        """Serialize the event as one JSONL line."""
        if self._stream is None:
            assert self._path is not None
            self._stream = open(self._path, "a", encoding="utf-8")
        self._stream.write(json.dumps(event.to_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush and close the stream if this tracer opened it."""
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
            self._stream = None


def tracer_from_env(environ: dict[str, str] | None = None) -> Tracer:
    """Build the tracer the environment asks for (see module docstring).

    Returns :data:`NULL_TRACER` unless ``$REPRO_TRACE`` enables tracing,
    so callers can use the result unconditionally.
    """
    if environ is None:
        import os

        # Deliberate env read: $REPRO_TRACE only toggles trace *emission*;
        # it cannot change any field of SimulationResult (see docs/linting.md).
        env: Any = os.environ  # simlint: disable=SIM102
    else:
        env = environ
    raw = env.get("REPRO_TRACE", "")
    if raw in ("", "0"):
        return NULL_TRACER
    destination = env.get("REPRO_TRACE_FILE", "")
    if not destination:
        destination = raw if raw not in ("1", "true") else "repro-trace.jsonl"
    return JsonlTracer(destination)
