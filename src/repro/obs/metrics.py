"""Metrics registry: counters, gauges, and histograms for runs and sweeps.

A :class:`MetricsRegistry` is a cheap in-process accumulator.  Its
:meth:`~MetricsRegistry.snapshot` form -- a plain nested dict, the shape
stored in ``SimulationResult.metrics`` and ``RunStats.metrics`` -- is::

    {"counters":   {name: float},
     "gauges":     {name: float},
     "histograms": {name: {"count": int, "sum": float,
                           "min": float, "max": float}}}

Aggregation semantics (:func:`aggregate_metrics`): counters **sum**,
gauges take the **max** (they record peaks/levels), histograms **merge**
(counts and sums add, bounds widen).  The metric-name catalogue -- what
the engine and runner record under which names -- is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

__all__ = ["MetricsRegistry", "aggregate_metrics", "empty_snapshot"]


def empty_snapshot() -> dict[str, Any]:
    """A snapshot with no metrics (the identity of :func:`aggregate_metrics`)."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


class MetricsRegistry:
    """Accumulates counters, gauges, and histograms by name."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the named counter."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def histogram(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = {
                "count": 1,
                "sum": float(value),
                "min": float(value),
                "max": float(value),
            }
            return
        stats["count"] += 1
        stats["sum"] += value
        stats["min"] = min(stats["min"], value)
        stats["max"] = max(stats["max"], value)

    def histogram_many(self, name: str, values: Iterable[float]) -> None:
        """Record many observations into the named histogram at once.

        One dict lookup and one C-speed ``sum``/``min``/``max`` pass
        replace a per-value :meth:`histogram` loop.  ``sum`` accumulates
        left-to-right exactly like repeated ``+=``, so a bulk call into a
        *fresh* histogram matches the per-value calls bit for bit; when
        the histogram already has entries the fold order differs (the
        batch is summed before merging), which only matters if callers
        mix both styles on one name.  An empty batch records nothing.
        """
        values = [float(value) for value in values]
        if not values:
            return
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = {
                "count": len(values),
                "sum": sum(values),
                "min": min(values),
                "max": max(values),
            }
            return
        stats["count"] += len(values)
        stats["sum"] += sum(values)
        stats["min"] = min(stats["min"], min(values))
        stats["max"] = max(stats["max"], max(values))

    def snapshot(self) -> dict[str, Any]:
        """A deep-copied, JSON-serializable view of everything recorded."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: dict(stats) for name, stats in self._histograms.items()},
        }


def aggregate_metrics(snapshots: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Combine snapshots: counters sum, gauges max, histograms merge.

    Empty or missing sections are tolerated, so partially-populated
    snapshots (e.g. a result produced before metrics existed, unpickled
    from an old cache entry) aggregate cleanly.
    """
    merged = empty_snapshot()
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            current = merged["gauges"].get(name)
            merged["gauges"][name] = value if current is None else max(current, value)
        for name, stats in snap.get("histograms", {}).items():
            current = merged["histograms"].get(name)
            if current is None:
                merged["histograms"][name] = dict(stats)
            else:
                current["count"] += stats["count"]
                current["sum"] += stats["sum"]
                current["min"] = min(current["min"], stats["min"])
                current["max"] = max(current["max"], stats["max"])
    return merged
