"""Trace analysis: summarize one JSONL trace or diff two.

These are the functions behind ``python -m repro.obs``.  They operate on
the *wire form* (plain dicts) rather than typed events so a summary
still works on traces from newer code with event types this version does
not know; ``--strict`` parsing through
:func:`repro.obs.events.event_from_dict` is the round-trip test's job.

The diff is the "why did this digest change" workflow: run the scenario
twice with tracing into two files, then ``python -m repro.obs diff a b``
reports the first event where the streams diverge -- which job, which
decision input, which eviction draw -- instead of leaving you to bisect
a 365-day simulation by hand (walkthrough in ``docs/observability.md``).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.errors import ConfigError
from repro.obs.metrics import aggregate_metrics

__all__ = [
    "read_trace",
    "summarize_trace",
    "render_summary",
    "diff_traces",
    "render_diff",
]


def read_trace(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into a list of event dicts.

    Blank lines are skipped; a malformed line raises :class:`ConfigError`
    naming the line number.
    """
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigError(f"{path}:{number}: not valid JSON ({error})") from None
            if not isinstance(payload, dict) or "type" not in payload:
                raise ConfigError(f"{path}:{number}: not an event object")
            events.append(payload)
    return events


def summarize_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a trace into the summary dict ``summarize`` renders.

    Keys: ``events`` (total), ``by_type`` (counts), ``runs`` (run_meta
    payloads), ``decisions_by_policy`` (total and memoized counts),
    ``starts_by_option``, ``evictions``, ``accounting`` (summed
    interval_account values), and ``metrics`` (all snapshots aggregated
    per :func:`repro.obs.metrics.aggregate_metrics`).
    """
    by_type: Counter[str] = Counter(event["type"] for event in events)
    runs = [
        {key: value for key, value in event.items() if key != "type"}
        for event in events
        if event["type"] == "run_meta"
    ]
    decisions: dict[str, dict[str, int]] = {}
    starts: Counter[str] = Counter()
    evictions = {"count": 0, "lost_cpu_minutes": 0.0, "preserved_minutes": 0}
    accounting = {"intervals": 0, "carbon_g": 0.0, "energy_kwh": 0.0, "cost_usd": 0.0}
    snapshots: list[dict[str, Any]] = []
    for event in events:
        kind = event["type"]
        if kind == "policy_decision":
            entry = decisions.setdefault(event["policy"], {"total": 0, "memoized": 0})
            entry["total"] += 1
            if event.get("memoized"):
                entry["memoized"] += 1
        elif kind == "job_start":
            starts[event["option"]] += 1
        elif kind == "job_evict":
            evictions["count"] += 1
            evictions["preserved_minutes"] += event.get("preserved_minutes", 0)
            evictions["lost_cpu_minutes"] += event.get("lost_cpu_minutes", 0.0)
        elif kind == "interval_account":
            accounting["intervals"] += 1
            accounting["carbon_g"] += event.get("carbon_g", 0.0)
            accounting["energy_kwh"] += event.get("energy_kwh", 0.0)
            accounting["cost_usd"] += event.get("cost_usd", 0.0)
        elif kind == "metrics_snapshot":
            snapshots.append(event.get("metrics", {}))
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "runs": runs,
        "decisions_by_policy": decisions,
        "starts_by_option": dict(sorted(starts.items())),
        "evictions": evictions,
        "accounting": accounting,
        "metrics": aggregate_metrics(snapshots),
    }


def render_summary(summary: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace`'s dict."""
    lines = [f"events: {summary['events']}"]
    for kind, count in summary["by_type"].items():
        lines.append(f"  {kind}: {count}")
    if summary["runs"]:
        lines.append("runs:")
        for run in summary["runs"]:
            lines.append(
                f"  {run.get('policy')} on {run.get('workload')} @ "
                f"{run.get('region')} (reserved={run.get('reserved_cpus')}, "
                f"horizon={run.get('horizon')})"
            )
    if summary["decisions_by_policy"]:
        lines.append("decisions by policy:")
        for policy, entry in sorted(summary["decisions_by_policy"].items()):
            lines.append(
                f"  {policy}: {entry['total']} ({entry['memoized']} memoized)"
            )
    if summary["starts_by_option"]:
        lines.append("starts by option:")
        for option, count in summary["starts_by_option"].items():
            lines.append(f"  {option}: {count}")
    if summary["evictions"]["count"]:
        lines.append(
            f"evictions: {summary['evictions']['count']} "
            f"(lost {summary['evictions']['lost_cpu_minutes']:.0f} cpu-min, "
            f"preserved {summary['evictions']['preserved_minutes']} min)"
        )
    accounting = summary["accounting"]
    if accounting["intervals"]:
        lines.append(
            f"accounting: {accounting['intervals']} intervals, "
            f"{accounting['carbon_g']:.1f} gCO2, "
            f"{accounting['energy_kwh']:.2f} kWh, "
            f"${accounting['cost_usd']:.2f} metered"
        )
    counters = summary["metrics"]["counters"]
    if counters:
        lines.append("metrics (counters):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name}: {value:g}")
    histograms = summary["metrics"]["histograms"]
    if histograms:
        lines.append("metrics (histograms):")
        for name, stats in sorted(histograms.items()):
            lines.append(
                f"  {name}: n={stats['count']:g} sum={stats['sum']:.4g} "
                f"min={stats['min']:.4g} max={stats['max']:.4g}"
            )
    return "\n".join(lines)


def diff_traces(
    a_events: list[dict[str, Any]], b_events: list[dict[str, Any]]
) -> dict[str, Any]:
    """Compare two traces event by event.

    Returns ``identical`` (bool), ``lengths`` (event counts),
    ``count_deltas`` (per-type counts that differ, as ``[a, b]``), and
    ``first_divergence`` -- the index and both wire dicts of the first
    position where the streams disagree (``None`` events past the end of
    the shorter trace), or ``None`` when identical.
    """
    first: dict[str, Any] | None = None
    for index in range(max(len(a_events), len(b_events))):
        a_event = a_events[index] if index < len(a_events) else None
        b_event = b_events[index] if index < len(b_events) else None
        if a_event != b_event:
            first = {"index": index, "a": a_event, "b": b_event}
            break
    a_counts: Counter[str] = Counter(event["type"] for event in a_events)
    b_counts: Counter[str] = Counter(event["type"] for event in b_events)
    deltas = {
        kind: [a_counts.get(kind, 0), b_counts.get(kind, 0)]
        for kind in sorted(set(a_counts) | set(b_counts))
        if a_counts.get(kind, 0) != b_counts.get(kind, 0)
    }
    return {
        "identical": first is None,
        "lengths": [len(a_events), len(b_events)],
        "count_deltas": deltas,
        "first_divergence": first,
    }


def render_diff(diff: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_traces`'s dict."""
    if diff["identical"]:
        return f"traces are identical ({diff['lengths'][0]} events)"
    lines = [f"traces differ: {diff['lengths'][0]} vs {diff['lengths'][1]} events"]
    if diff["count_deltas"]:
        lines.append("event-count deltas:")
        for kind, (a_count, b_count) in diff["count_deltas"].items():
            lines.append(f"  {kind}: {a_count} vs {b_count}")
    first = diff["first_divergence"]
    lines.append(f"first divergence at event {first['index']}:")
    lines.append(f"  a: {json.dumps(first['a'], sort_keys=True)}")
    lines.append(f"  b: {json.dumps(first['b'], sort_keys=True)}")
    return "\n".join(lines)
