"""Simulation observability: event traces, metrics, and trace tooling.

``repro.obs`` is the introspection layer for every trace-driven run.
It has three parts, all **zero-overhead when disabled** (the default):

* a structured event-trace API (:mod:`repro.obs.events` defines the
  typed events; :mod:`repro.obs.tracer` the emitters) producing JSONL
  streams of job lifecycle events, policy decisions with their
  carbon/price inputs, and per-interval accounting snapshots;
* a metrics registry (:mod:`repro.obs.metrics`) of counters, gauges,
  and histograms, snapshot into ``SimulationResult.metrics`` and
  aggregated across :func:`repro.simulator.runner.run_many` batches;
* a CLI (``python -m repro.obs``) that summarizes one trace or diffs
  two -- the debugging workflow for "why did this digest change".

The engine, policies, and batch runner are instrumented behind
:data:`~repro.obs.tracer.NULL_TRACER`; enable tracing with the
``tracer=`` keyword of ``run_simulation``/``Engine``/``run_many`` or by
setting ``$REPRO_TRACE`` (see :func:`~repro.obs.tracer.tracer_from_env`).
The full telemetry contract -- every event type, field, and unit -- is
documented in ``docs/observability.md``.

This package deliberately imports nothing from the simulation layers,
and it is excluded from the result cache's code-version salt: tracing
never changes simulation outputs.
"""

from __future__ import annotations

from repro.obs.analyze import diff_traces, read_trace, summarize_trace
from repro.obs.events import EVENT_TYPES, Event, event_from_dict
from repro.obs.metrics import MetricsRegistry, aggregate_metrics, empty_snapshot
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    Tracer,
    tracer_from_env,
)

__all__ = [
    "Event",
    "EVENT_TYPES",
    "event_from_dict",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlTracer",
    "CollectingTracer",
    "tracer_from_env",
    "MetricsRegistry",
    "aggregate_metrics",
    "empty_snapshot",
    "read_trace",
    "summarize_trace",
    "diff_traces",
]
