"""Command-line interface of ``python -m repro.obs``.

Three subcommands:

* ``summarize TRACE`` -- event counts, per-policy decision counts,
  purchase-option mix, summed interval accounting, and aggregated
  metrics for one JSONL trace (``--json`` for machine-readable output);
* ``diff A B`` -- compare two traces and report the first divergence
  (exit status 1 when they differ; the digest-debugging workflow);
* ``schema`` -- list every event type and its fields, straight from the
  dataclasses in :mod:`repro.obs.events`.

Usage errors (unreadable file, malformed JSONL) exit with status 2,
mirroring ``python -m repro.lint``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.errors import ConfigError
from repro.obs.analyze import (
    diff_traces,
    read_trace,
    render_diff,
    render_summary,
    summarize_trace,
)
from repro.obs.events import EVENT_TYPES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the three subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or diff repro simulation traces (JSONL).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="aggregate one trace file into a readable report"
    )
    summarize.add_argument("trace", help="path to a JSONL trace")
    summarize.add_argument("--json", action="store_true", help="emit JSON instead of text")

    diff = commands.add_parser(
        "diff", help="compare two traces; exit 1 if they diverge"
    )
    diff.add_argument("a", help="first trace (JSONL)")
    diff.add_argument("b", help="second trace (JSONL)")
    diff.add_argument("--json", action="store_true", help="emit JSON instead of text")

    schema = commands.add_parser("schema", help="print every event type and its fields")
    schema.add_argument("--json", action="store_true", help="emit JSON instead of text")
    return parser


def _schema() -> dict[str, list[str]]:
    """Event type -> ordered field names, from the event dataclasses."""
    return {
        name: [field.name for field in dataclasses.fields(event_class)]
        for name, event_class in sorted(EVENT_TYPES.items())
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            summary = summarize_trace(read_trace(args.trace))
            print(json.dumps(summary, indent=2) if args.json else render_summary(summary))
            return 0
        if args.command == "diff":
            diff = diff_traces(read_trace(args.a), read_trace(args.b))
            print(json.dumps(diff, indent=2) if args.json else render_diff(diff))
            return 0 if diff["identical"] else 1
        if args.command == "schema":
            schema = _schema()
            if args.json:
                print(json.dumps(schema, indent=2))
            else:
                for name, fields in schema.items():
                    print(f"{name}: {', '.join(fields)}")
            return 0
    except BrokenPipeError:  # e.g. piped into `head`; not a usage error
        sys.stderr.close()
        return 0
    except (ConfigError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
