"""Carbon-aware scaling planner for malleable jobs.

Given a malleable job (total work, CPU cap, speedup curve), a deadline,
and the CI forecast, choose how many CPUs to run in each hourly slot so
the job finishes by its deadline with minimal carbon.

The allocation is greedy over *marginal* (slot, CPU) units: the j-th CPU
in slot ``h`` contributes ``marginal_rate[j] * slot_minutes`` work at a
carbon cost proportional to ``ci[h] * slot_minutes``; units are taken in
increasing carbon-per-work order until the job's work is covered, and
the final (most expensive) unit is trimmed to the integer minutes it is
actually needed.  For concave (non-increasing marginal) speedups an
exchange argument makes this allocation carbon-optimal among
slot-resolution allocations up to that one-minute rounding -- the
CarbonScaler result.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.errors import ConfigError, SchedulingError
from repro.scaling.speedup import LinearSpeedup, SpeedupModel
from repro.units import MINUTES_PER_HOUR

__all__ = ["MalleableJob", "ScalingPlan", "plan_carbon_scaling", "fixed_allocation_plan"]


@dataclass(frozen=True)
class MalleableJob:
    """A scalable batch job.

    Attributes
    ----------
    work:
        Total work in work-minutes: the wall minutes the job needs at
        one CPU (``rate(1) == 1``).
    max_cpus:
        Largest CPU allocation the job can exploit.
    arrival:
        Submission minute.
    """

    work: float
    max_cpus: int
    arrival: int = 0

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ConfigError("work must be positive")
        if self.max_cpus <= 0:
            raise ConfigError("max_cpus must be positive")
        if self.arrival < 0:
            raise ConfigError("arrival must be non-negative")


@dataclass
class ScalingPlan:
    """Per-slot CPU allocation and its accounting."""

    job: MalleableJob
    deadline: int
    #: (slot_start_minute, slot_end_minute, cpus) for every active slot.
    allocation: list[tuple[int, int, int]] = field(default_factory=list)
    carbon_g: float = 0.0
    energy_kwh: float = 0.0

    @property
    def peak_cpus(self) -> int:
        return max((cpus for _, _, cpus in self.allocation), default=0)

    @property
    def completion_minute(self) -> int:
        return max((end for _, end, _ in self.allocation), default=self.job.arrival)

    @property
    def cpu_minutes(self) -> float:
        return float(sum((end - start) * cpus for start, end, cpus in self.allocation))

    def work_done(self, speedup: SpeedupModel) -> float:
        """Work-minutes accomplished by the allocation."""
        return float(
            sum(
                speedup.rate(cpus) * (end - start)
                for start, end, cpus in self.allocation
            )
        )


def plan_carbon_scaling(
    job: MalleableJob,
    carbon: CarbonIntensityTrace,
    deadline: int,
    speedup: SpeedupModel | None = None,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> ScalingPlan:
    """Allocate CPUs to hourly slots, minimizing carbon before ``deadline``.

    Raises :class:`SchedulingError` when even the full allocation in
    every slot cannot finish the work by the deadline.
    """
    speedup = speedup if speedup is not None else LinearSpeedup()
    if deadline <= job.arrival:
        raise SchedulingError("deadline must lie after the arrival")
    if deadline > carbon.horizon_minutes:
        raise SchedulingError("deadline beyond the carbon trace")

    first_hour = job.arrival // MINUTES_PER_HOUR
    last_hour = -(-deadline // MINUTES_PER_HOUR)
    slots = []
    for hour in range(first_hour, last_hour):
        start = max(job.arrival, hour * MINUTES_PER_HOUR)
        end = min(deadline, (hour + 1) * MINUTES_PER_HOUR)
        if end > start:
            slots.append((start, end, float(carbon.hourly[hour])))

    marginals = speedup.marginal_rates(job.max_cpus)
    capacity = sum(
        speedup.rate(job.max_cpus) * (end - start) for start, end, _ in slots
    )
    if capacity + 1e-9 < job.work:
        raise SchedulingError(
            f"infeasible: {job.work:.0f} work-minutes exceed the "
            f"{capacity:.0f} attainable before the deadline"
        )

    # Greedy over marginal (slot, cpu) units, cheapest carbon-per-work
    # first.  Each heap entry is the *next* CPU to add in that slot; its
    # successor is pushed on pop, so marginals are consumed in order.
    heap: list[tuple[float, int, int]] = []  # (carbon_per_work, slot_idx, cpu_idx)
    for index, (start, end, ci) in enumerate(slots):
        if marginals[0] > 0:
            heapq.heappush(heap, (ci / marginals[0], index, 0))

    cpus_per_slot = [0] * len(slots)
    # The final (most expensive) unit is trimmed to the integer minutes
    # actually needed: (slot_idx, minutes kept at the top CPU count).
    # Carbon is constant within a slot, so the trimmed fraction matches
    # the fractional-LP optimum up to one minute of ceil rounding.
    trim: tuple[int, int] | None = None
    remaining = job.work
    while remaining > 1e-9 and heap:
        _, index, cpu_idx = heapq.heappop(heap)
        start, end, ci = slots[index]
        slot_minutes = end - start
        gained = marginals[cpu_idx] * slot_minutes
        cpus_per_slot[index] = cpu_idx + 1
        if gained >= remaining:
            kept = min(slot_minutes, math.ceil(remaining / marginals[cpu_idx]))
            if kept < slot_minutes:
                trim = (index, kept)
            remaining = 0.0
            break
        remaining -= gained
        next_cpu = cpu_idx + 1
        if next_cpu < job.max_cpus and marginals[next_cpu] > 0:
            heapq.heappush(heap, (ci / marginals[next_cpu], index, next_cpu))

    plan = ScalingPlan(job=job, deadline=deadline)
    for index, ((start, end, ci), cpus) in enumerate(zip(slots, cpus_per_slot)):
        if cpus == 0:
            continue
        segments = [(start, end, cpus)]
        if trim is not None and trim[0] == index:
            kept = trim[1]
            segments = [(start, start + kept, cpus)]
            if cpus > 1:
                segments.append((start + kept, end, cpus - 1))
        for seg_start, seg_end, seg_cpus in segments:
            minutes = seg_end - seg_start
            plan.allocation.append((seg_start, seg_end, seg_cpus))
            plan.energy_kwh += energy.energy_kwh(seg_cpus, minutes)
            plan.carbon_g += (
                ci * energy.active_kw(seg_cpus) * minutes / MINUTES_PER_HOUR
            )
    return plan


def fixed_allocation_plan(
    job: MalleableJob,
    carbon: CarbonIntensityTrace,
    cpus: int,
    energy: EnergyModel = DEFAULT_ENERGY,
    speedup: SpeedupModel | None = None,
) -> ScalingPlan:
    """Run-on-arrival at a constant allocation (the carbon-agnostic
    baseline scaling is compared against)."""
    speedup = speedup if speedup is not None else LinearSpeedup()
    if cpus <= 0 or cpus > job.max_cpus:
        raise ConfigError("cpus must be in [1, max_cpus]")
    rate = speedup.rate(cpus)
    duration = int(-(-job.work // rate))
    end = job.arrival + duration
    if end > carbon.horizon_minutes:
        raise SchedulingError("fixed plan runs past the carbon trace")
    plan = ScalingPlan(job=job, deadline=end)
    plan.allocation.append((job.arrival, end, cpus))
    plan.energy_kwh = energy.energy_kwh(cpus, duration)
    plan.carbon_g = carbon.interval_carbon(job.arrival, end) * energy.active_kw(cpus)
    return plan
