"""Carbon-aware scaling of malleable jobs (the paper's §9 future work)."""

from __future__ import annotations

from repro.scaling.planner import (
    MalleableJob,
    ScalingPlan,
    fixed_allocation_plan,
    plan_carbon_scaling,
)
from repro.scaling.reference import (
    enumerate_slots,
    exhaustive_min_carbon,
    verify_greedy_certificate,
)
from repro.scaling.spec import ScalingResult, ScalingSpec, freeze_speedup, thaw_speedup
from repro.scaling.speedup import AmdahlSpeedup, LinearSpeedup, SpeedupModel

__all__ = [
    "SpeedupModel",
    "LinearSpeedup",
    "AmdahlSpeedup",
    "MalleableJob",
    "ScalingPlan",
    "plan_carbon_scaling",
    "fixed_allocation_plan",
    "ScalingSpec",
    "ScalingResult",
    "freeze_speedup",
    "thaw_speedup",
    "enumerate_slots",
    "exhaustive_min_carbon",
    "verify_greedy_certificate",
]
