"""Carbon-aware scaling of malleable jobs (the paper's §9 future work)."""

from __future__ import annotations

from repro.scaling.planner import (
    MalleableJob,
    ScalingPlan,
    fixed_allocation_plan,
    plan_carbon_scaling,
)
from repro.scaling.speedup import AmdahlSpeedup, LinearSpeedup, SpeedupModel

__all__ = [
    "SpeedupModel",
    "LinearSpeedup",
    "AmdahlSpeedup",
    "MalleableJob",
    "ScalingPlan",
    "plan_carbon_scaling",
    "fixed_allocation_plan",
]
