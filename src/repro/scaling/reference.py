"""Naive references for the scaling planner.

Two independent oracles for :func:`repro.scaling.planner.plan_carbon_scaling`:

* :func:`exhaustive_min_carbon` -- brute-force enumeration of every
  slot-constant (full-slot) CPU allocation on small instances.  The
  greedy plan must never emit more carbon than the exhaustive minimum
  (it can emit *less*, because it additionally trims its most expensive
  unit to the minutes actually needed).
* :func:`verify_greedy_certificate` -- the exchange-argument optimality
  certificate: in a greedy plan over concave (non-increasing marginal)
  speedups, every selected marginal (slot, CPU) unit must have a
  carbon-per-work ratio no worse than every unselected unit.  Checking
  the certificate is linear, so it scales to instances enumeration
  cannot touch.
"""

from __future__ import annotations

import itertools

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.errors import ConfigError, SchedulingError
from repro.scaling.planner import MalleableJob, ScalingPlan
from repro.scaling.speedup import LinearSpeedup, SpeedupModel
from repro.units import MINUTES_PER_HOUR

__all__ = ["enumerate_slots", "exhaustive_min_carbon", "verify_greedy_certificate"]

#: Enumeration guard: (max_cpus + 1) ** num_slots states at most.
_MAX_STATES = 300_000


def enumerate_slots(
    job: MalleableJob, carbon: CarbonIntensityTrace, deadline: int
) -> list[tuple[int, int, float]]:
    """The planner's (start, end, ci) slot decomposition, re-derived."""
    if deadline <= job.arrival:
        raise SchedulingError("deadline must lie after the arrival")
    if deadline > carbon.horizon_minutes:
        raise SchedulingError("deadline beyond the carbon trace")
    slots = []
    first_hour = job.arrival // MINUTES_PER_HOUR
    last_hour = -(-deadline // MINUTES_PER_HOUR)
    for hour in range(first_hour, last_hour):
        start = max(job.arrival, hour * MINUTES_PER_HOUR)
        end = min(deadline, (hour + 1) * MINUTES_PER_HOUR)
        if end > start:
            slots.append((start, end, float(carbon.hourly[hour])))
    return slots


def exhaustive_min_carbon(
    job: MalleableJob,
    carbon: CarbonIntensityTrace,
    deadline: int,
    speedup: SpeedupModel | None = None,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> float:
    """Minimum carbon over *every* full-slot allocation, by enumeration.

    Exponential in the slot count -- guarded to small instances.  Raises
    :class:`SchedulingError` when no allocation finishes the work.
    """
    speedup = speedup if speedup is not None else LinearSpeedup()
    slots = enumerate_slots(job, carbon, deadline)
    states = (job.max_cpus + 1) ** len(slots)
    if states > _MAX_STATES:
        raise ConfigError(
            f"exhaustive search over {states} allocations is too large; "
            "use verify_greedy_certificate for big instances"
        )
    rates = [speedup.rate(c) for c in range(job.max_cpus + 1)]
    best = None
    for assignment in itertools.product(range(job.max_cpus + 1), repeat=len(slots)):
        done = sum(
            rates[cpus] * (end - start)
            for (start, end, _), cpus in zip(slots, assignment)
        )
        if done + 1e-9 < job.work:
            continue
        carbon_g = sum(
            ci * energy.active_kw(cpus) * (end - start) / MINUTES_PER_HOUR
            for (start, end, ci), cpus in zip(slots, assignment)
            if cpus
        )
        if best is None or carbon_g < best:
            best = carbon_g
    if best is None:
        raise SchedulingError("infeasible: no full-slot allocation finishes the work")
    return best


def verify_greedy_certificate(
    plan: ScalingPlan,
    carbon: CarbonIntensityTrace,
    speedup: SpeedupModel | None = None,
    tolerance: float = 1e-9,
) -> list[str]:
    """Exchange-argument violations of a greedy plan (empty when optimal).

    Reconstructs the marginal (slot, CPU) units from the plan's own slot
    decomposition and checks that no unselected unit is strictly cheaper
    (in carbon per work) than any selected unit -- if one were, swapping
    them would reduce carbon, contradicting optimality.  The trimmed top
    unit counts as selected.  Also reports feasibility violations
    (deadline, CPU cap), so the certificate is self-contained.
    """
    speedup = speedup if speedup is not None else LinearSpeedup()
    job = plan.job
    problems: list[str] = []
    if plan.completion_minute > plan.deadline:
        problems.append(
            f"plan finishes at {plan.completion_minute} after deadline {plan.deadline}"
        )
    if plan.peak_cpus > job.max_cpus:
        problems.append(f"plan peak {plan.peak_cpus} exceeds cap {job.max_cpus}")
    if plan.work_done(speedup) + 1e-6 < job.work:
        problems.append(
            f"plan accomplishes {plan.work_done(speedup):.6f} of "
            f"{job.work:.6f} work-minutes"
        )
    slots = enumerate_slots(job, carbon, plan.deadline)
    marginals = speedup.marginal_rates(job.max_cpus)

    # Top CPU level the plan ever reaches inside each slot.
    levels = [0] * len(slots)
    for start, end, cpus in plan.allocation:
        for index, (slot_start, slot_end, _) in enumerate(slots):
            if start < slot_end and end > slot_start:
                levels[index] = max(levels[index], cpus)
    max_selected = None
    min_unselected = None
    for index, (slot_start, slot_end, ci) in enumerate(slots):
        for cpu_idx in range(job.max_cpus):
            if marginals[cpu_idx] <= 0:
                continue
            ratio = ci / marginals[cpu_idx]
            if cpu_idx < levels[index]:
                if max_selected is None or ratio > max_selected:
                    max_selected = ratio
            else:
                if min_unselected is None or ratio < min_unselected:
                    min_unselected = ratio
    if (
        max_selected is not None
        and min_unselected is not None
        and min_unselected < max_selected - tolerance * max(1.0, max_selected)
    ):
        problems.append(
            f"exchange violation: unselected unit at {min_unselected:.9g} "
            f"gCO2/work beats selected unit at {max_selected:.9g}"
        )
    return problems
