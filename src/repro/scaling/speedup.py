"""Parallel speedup models for malleable jobs.

The paper's conclusion names "other carbon-saving modalities, such as
scaling" (its CarbonScaler sibling work) as future work: a *malleable*
job can vary how many CPUs it uses over time, doing more work in
low-carbon hours and less in high-carbon ones.  How much extra work an
extra CPU buys is the job's speedup curve:

* :class:`LinearSpeedup` -- embarrassingly parallel, ``S(k) = k``;
* :class:`AmdahlSpeedup` -- a serial fraction caps the returns,
  ``S(k) = 1 / ((1-p) + p/k)`` with parallel fraction ``p``.

``marginal_rates`` exposes the diminishing per-CPU contributions the
scaling planner allocates greedily.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigError

__all__ = ["SpeedupModel", "LinearSpeedup", "AmdahlSpeedup"]


class SpeedupModel(ABC):
    """Work rate (work-minutes per wall minute) as a function of CPUs."""

    @abstractmethod
    def rate(self, cpus: int) -> float:
        """Work rate at ``cpus`` CPUs; ``rate(1) == 1`` by convention."""

    def marginal_rates(self, max_cpus: int) -> np.ndarray:
        """Extra work rate contributed by CPU 1, 2, ..., max_cpus.

        Must be non-negative; for concave speedups it is non-increasing,
        which is what makes the planner's greedy allocation optimal.
        """
        if max_cpus <= 0:
            raise ConfigError("max_cpus must be positive")
        rates = np.array([self.rate(k) for k in range(max_cpus + 1)])
        marginals = np.diff(rates)
        if np.any(marginals < -1e-12):
            raise ConfigError("speedup must be non-decreasing in CPUs")
        return np.maximum(marginals, 0.0)


class LinearSpeedup(SpeedupModel):
    """Perfect scaling: ``S(k) = k``."""

    def rate(self, cpus: int) -> float:
        if cpus < 0:
            raise ConfigError("cpus must be non-negative")
        return float(cpus)


class AmdahlSpeedup(SpeedupModel):
    """Amdahl's law with parallel fraction ``p`` in (0, 1]."""

    def __init__(self, parallel_fraction: float):
        if not 0 < parallel_fraction <= 1:
            raise ConfigError("parallel fraction must be in (0, 1]")
        self.parallel_fraction = parallel_fraction

    def rate(self, cpus: int) -> float:
        if cpus < 0:
            raise ConfigError("cpus must be non-negative")
        if cpus == 0:
            return 0.0
        p = self.parallel_fraction
        return 1.0 / ((1.0 - p) + p / cpus)
