"""Declarative descriptions of malleable-scaling runs.

A :class:`ScalingSpec` captures everything that determines one scaling
plan -- the CI trace, the malleable job (work, CPU cap, arrival), the
deadline, the speedup family, and whether the plan is the greedy
carbon-aware allocation or a fixed baseline -- as a frozen, hashable,
picklable value.  Like a ``SimulationSpec``, scaling specs execute
through ``run_many`` and campaigns, deduplicate and cache by
:meth:`ScalingSpec.digest`, and participate in fault plans (process
faults sabotage the worker; input faults corrupt the carbon trace before
planning).

Speedup tags are declarative: ``("linear",)`` or ``("amdahl", p)``.
Modes are ``("greedy",)`` (the CarbonScaler-style planner) or
``("fixed", cpus)`` (run-on-arrival at a constant allocation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.errors import ConfigError
from repro.faults import FaultPlan, apply_input_faults, apply_process_faults
from repro.obs.events import ScalingPlanned
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, tracer_from_env
from repro.scaling.planner import (
    MalleableJob,
    ScalingPlan,
    fixed_allocation_plan,
    plan_carbon_scaling,
)
from repro.scaling.speedup import AmdahlSpeedup, LinearSpeedup, SpeedupModel
from repro.simulator.runner.spec import FrozenSeries

__all__ = ["ScalingSpec", "ScalingResult", "freeze_speedup", "thaw_speedup"]


def freeze_speedup(speedup: SpeedupModel | None) -> tuple:
    """Declarative tag for a speedup model (``None`` means linear)."""
    if speedup is None or isinstance(speedup, LinearSpeedup):
        return ("linear",)
    if isinstance(speedup, AmdahlSpeedup):
        return ("amdahl", float(speedup.parallel_fraction))
    raise ConfigError(
        f"speedup model {type(speedup).__name__} cannot be expressed in a "
        "ScalingSpec; call plan_carbon_scaling directly"
    )


def thaw_speedup(tag: tuple) -> SpeedupModel:
    """Rebuild a speedup model from its declarative tag."""
    if tag[0] == "linear":
        return LinearSpeedup()
    if tag[0] == "amdahl":
        return AmdahlSpeedup(tag[1])
    raise ConfigError(f"unknown speedup tag {tag!r}")


@dataclass
class ScalingResult:
    """One scaling plan's allocation and accounting, digest-able.

    The plan itself (slot allocations, carbon, energy) plus enough of
    the spec's identity to content-address the outcome; ``work_done`` is
    the work-minutes the allocation accomplishes under the spec's
    speedup curve (>= ``work`` for any feasible plan).
    """

    speedup: tuple
    mode: tuple
    work: float
    max_cpus: int
    arrival: int
    deadline: int
    carbon_name: str
    allocation: tuple[tuple[int, int, int], ...]
    carbon_g: float
    energy_kwh: float
    work_done: float
    metrics: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def peak_cpus(self) -> int:
        return max((cpus for _, _, cpus in self.allocation), default=0)

    @property
    def completion_minute(self) -> int:
        return max((end for _, end, _ in self.allocation), default=self.arrival)

    @property
    def cpu_minutes(self) -> float:
        return float(sum((end - start) * cpus for start, end, cpus in self.allocation))

    @property
    def total_carbon_kg(self) -> float:
        return self.carbon_g / 1000.0

    def digest(self) -> str:
        """SHA-256 content address of the planned outcome."""
        parts = [
            "ScalingResult",
            self.carbon_name,
            repr(self.speedup),
            repr(self.mode),
            repr(self.work),
            str(self.max_cpus),
            str(self.arrival),
            str(self.deadline),
        ]
        parts.extend(f"{s},{e},{c}" for s, e, c in self.allocation)
        parts.extend((repr(self.carbon_g), repr(self.energy_kwh), repr(self.work_done)))
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


@dataclass(frozen=True)
class ScalingSpec:
    """One scaling-plan computation as a frozen, digest-able value."""

    carbon: FrozenSeries
    work: float
    max_cpus: int
    deadline: int
    arrival: int = 0
    speedup: tuple = ("linear",)
    mode: tuple = ("greedy",)
    energy: EnergyModel = DEFAULT_ENERGY
    fault_plan: FaultPlan | None = None

    @classmethod
    def build(
        cls,
        carbon,
        job: MalleableJob,
        deadline: int,
        speedup: SpeedupModel | None = None,
        mode: tuple = ("greedy",),
        energy: EnergyModel = DEFAULT_ENERGY,
        fault_plan: FaultPlan | None = None,
    ) -> "ScalingSpec":
        """Freeze one planning call over a live trace and job.

        ``mode`` is ``("greedy",)`` or ``("fixed", cpus)``.
        """
        if mode[0] not in ("greedy", "fixed"):
            raise ConfigError(f"unknown scaling mode {mode!r}")
        if mode[0] == "fixed" and (len(mode) != 2 or int(mode[1]) <= 0):
            raise ConfigError("fixed mode needs a positive cpu count")
        return cls(
            carbon=FrozenSeries.freeze(carbon),
            work=float(job.work),
            max_cpus=job.max_cpus,
            deadline=int(deadline),
            arrival=job.arrival,
            speedup=freeze_speedup(speedup),
            mode=tuple(mode),
            energy=energy,
            fault_plan=fault_plan,
        )

    def plan(self) -> ScalingPlan:
        """Compute the plan this spec describes (no fault application)."""
        trace = self.carbon.thaw()
        job = MalleableJob(work=self.work, max_cpus=self.max_cpus, arrival=self.arrival)
        speedup = thaw_speedup(self.speedup)
        if self.mode[0] == "greedy":
            return plan_carbon_scaling(
                job, trace, self.deadline, speedup=speedup, energy=self.energy
            )
        return fixed_allocation_plan(
            job, trace, cpus=int(self.mode[1]), energy=self.energy, speedup=speedup
        )

    def run(self, tracer: Tracer | None = None) -> ScalingResult:
        """Execute this spec in-process and return the ScalingResult."""
        apply_process_faults(self.fault_plan)
        trace = apply_input_faults(self.fault_plan, self.carbon.thaw())
        job = MalleableJob(work=self.work, max_cpus=self.max_cpus, arrival=self.arrival)
        speedup = thaw_speedup(self.speedup)
        if self.mode[0] == "greedy":
            plan = plan_carbon_scaling(
                job, trace, self.deadline, speedup=speedup, energy=self.energy
            )
        else:
            plan = fixed_allocation_plan(
                job, trace, cpus=int(self.mode[1]), energy=self.energy, speedup=speedup
            )
        registry = MetricsRegistry()
        registry.counter("scaling.plans")
        registry.gauge("scaling.peak_cpus", float(plan.peak_cpus))
        result = ScalingResult(
            speedup=self.speedup,
            mode=self.mode,
            work=self.work,
            max_cpus=self.max_cpus,
            arrival=self.arrival,
            deadline=self.deadline,
            carbon_name=trace.name,
            allocation=tuple(plan.allocation),
            carbon_g=plan.carbon_g,
            energy_kwh=plan.energy_kwh,
            work_done=plan.work_done(speedup),
            metrics=registry.snapshot(),
        )
        owns_tracer = False
        if tracer is None:
            tracer = tracer_from_env()
            owns_tracer = tracer.enabled
        if tracer.enabled:
            tracer.emit(
                ScalingPlanned(
                    speedup=":".join(str(part) for part in self.speedup),
                    mode=":".join(str(part) for part in self.mode),
                    work=self.work,
                    deadline=self.deadline,
                    peak_cpus=result.peak_cpus,
                    cpu_minutes=result.cpu_minutes,
                    carbon_g=result.carbon_g,
                    energy_kwh=result.energy_kwh,
                )
            )
        if owns_tracer:
            tracer.close()
        return result

    def digest(self) -> str:
        """SHA-256 content address of this spec (inputs and every knob)."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            parts = [
                "ScalingSpec",
                self.carbon.content_digest(),
                repr(self.work),
                str(self.max_cpus),
                str(self.deadline),
                str(self.arrival),
                repr(self.speedup),
                repr(self.mode),
                repr(self.energy),
                self.fault_plan.digest() if self.fault_plan is not None else "-",
            ]
            cached = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
            self.__dict__["_digest"] = cached
        return cached
