"""Synthetic grid carbon-intensity generation.

The paper evaluates against 2022 hourly ElectricityMaps data for six cloud
regions.  That data is proprietary, so we synthesize traces with the same
structure the policies actually exploit:

* a **diurnal** cycle (solar generation depresses midday CI, evening ramps
  raise it),
* a **seasonal** cycle (e.g. South Australia's mean CI nearly doubles
  between July and December, paper Fig. 7),
* **weather noise** modelled as a mean-reverting Ornstein-Uhlenbeck
  process, so deviations persist for hours rather than flickering.

All generation is deterministic given the profile and seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ConfigError
from repro.units import HOURS_PER_DAY, HOURS_PER_YEAR

__all__ = ["RegionProfile", "generate_carbon_trace"]


@dataclass(frozen=True)
class RegionProfile:
    """Statistical description of a grid region's carbon intensity.

    Attributes
    ----------
    name:
        Region code, e.g. ``"CA-US"``.
    mean_ci:
        Annual mean carbon intensity in gCO2eq/kWh.
    diurnal_amplitude:
        Relative amplitude of the within-day cycle (0 = flat).
    seasonal_amplitude:
        Relative amplitude of the annual cycle (0 = flat).
    noise_sigma:
        Stationary standard deviation of the OU weather noise, relative to
        the mean.
    noise_half_life_hours:
        Half-life of weather-noise excursions.
    diurnal_peak_hour:
        Local hour at which the diurnal cycle peaks (typically the evening
        ramp, ~19h, for solar-heavy grids).
    seasonal_peak_day:
        Day of year at which the seasonal cycle peaks.
    floor_ci:
        Hard lower bound on CI (a grid never reaches zero).
    """

    name: str
    mean_ci: float
    diurnal_amplitude: float
    seasonal_amplitude: float
    noise_sigma: float
    noise_half_life_hours: float = 6.0
    diurnal_peak_hour: float = 19.0
    seasonal_peak_day: float = 355.0
    floor_ci: float = 5.0

    def __post_init__(self) -> None:
        if self.mean_ci <= 0:
            raise ConfigError(f"{self.name}: mean_ci must be positive")
        for field in ("diurnal_amplitude", "seasonal_amplitude", "noise_sigma"):
            value = getattr(self, field)
            if not 0 <= value < 1:
                raise ConfigError(f"{self.name}: {field} must be in [0, 1)")
        if self.noise_half_life_hours <= 0:
            raise ConfigError(f"{self.name}: noise half-life must be positive")

    @property
    def variability_label(self) -> str:
        """Coarse label matching the paper's Stable/Variable grouping."""
        total = self.diurnal_amplitude + self.noise_sigma
        return "Variable" if total >= 0.2 else "Stable"

    @property
    def level_label(self) -> str:
        """Coarse label matching the paper's Low/Medium/High grouping."""
        if self.mean_ci < 150:
            return "Low"
        if self.mean_ci < 600:
            return "Med"
        return "High"


def _ou_noise(rng: np.random.Generator, n: int, sigma: float, half_life: float) -> np.ndarray:
    """Stationary Ornstein-Uhlenbeck path sampled hourly."""
    if sigma == 0:
        return np.zeros(n)
    phi = 0.5 ** (1.0 / half_life)
    innovation_scale = sigma * np.sqrt(1.0 - phi * phi)
    shocks = rng.normal(0.0, innovation_scale, size=n)
    noise = np.empty(n)
    noise[0] = rng.normal(0.0, sigma)
    for i in range(1, n):
        noise[i] = phi * noise[i - 1] + shocks[i]
    return noise


def generate_carbon_trace(
    profile: RegionProfile,
    num_hours: int = HOURS_PER_YEAR,
    seed: int = 0,
    start_hour_of_year: int = 0,
) -> CarbonIntensityTrace:
    """Generate a synthetic hourly CI trace for ``profile``.

    Parameters
    ----------
    profile:
        Region description (see :class:`RegionProfile`).
    num_hours:
        Trace length.
    seed:
        RNG seed; combined with the region name so different regions draw
        independent weather even under the same seed.
    start_hour_of_year:
        Phase offset into the annual cycle, used e.g. to start a trace in
        February as the paper's motivating example does.
    """
    if num_hours <= 0:
        raise ConfigError("num_hours must be positive")
    name_hash = zlib.crc32(profile.name.encode("utf-8"))
    region_seed = np.random.SeedSequence([seed, name_hash])
    rng = np.random.default_rng(region_seed)

    hour = np.arange(start_hour_of_year, start_hour_of_year + num_hours, dtype=np.float64)
    hour_of_day = hour % HOURS_PER_DAY
    day_of_year = (hour / HOURS_PER_DAY) % 365.0

    diurnal = profile.diurnal_amplitude * np.cos(
        2.0 * np.pi * (hour_of_day - profile.diurnal_peak_hour) / HOURS_PER_DAY
    )
    seasonal = profile.seasonal_amplitude * np.cos(
        2.0 * np.pi * (day_of_year - profile.seasonal_peak_day) / 365.0
    )
    noise = _ou_noise(rng, num_hours, profile.noise_sigma, profile.noise_half_life_hours)

    ci = profile.mean_ci * (1.0 + seasonal) * (1.0 + diurnal + noise)
    np.clip(ci, profile.floor_ci, None, out=ci)
    return CarbonIntensityTrace(ci, name=profile.name)
