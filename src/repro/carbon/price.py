"""Electricity price series and the carbon/price conflict (paper Fig. 20).

The paper's discussion section shows ERCOT (Texas) hourly market prices
against grid CI for two days: on one day the carbon and price valleys
align, on the next they conflict, and over 2022 the two series correlate
at only ~0.16.  We synthesize a price series whose correlation with a CI
trace is a controlled parameter so the experiment can reproduce both the
aligned and the conflicting regime.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.stats import correlation
from repro.carbon.trace import CarbonIntensityTrace, HourlySeries
from repro.errors import ConfigError

__all__ = [
    "ElectricityPriceTrace",
    "correlated_price_trace",
    "carbon_price_conflict_hours",
    "realized_correlation",
]


class ElectricityPriceTrace(HourlySeries):
    """Hourly wholesale electricity price in $/MWh.

    Unlike carbon intensity, market prices may legitimately be negative
    (ERCOT regularly clears below zero during renewable surplus), so no
    sign constraint is applied.
    """


def correlated_price_trace(
    ci_trace: CarbonIntensityTrace,
    target_correlation: float = 0.16,
    mean_price: float = 60.0,
    price_sigma: float = 35.0,
    spike_probability: float = 0.01,
    spike_scale: float = 400.0,
    seed: int = 0,
) -> ElectricityPriceTrace:
    """Build a price trace with a chosen correlation to ``ci_trace``.

    The price is ``mean + sigma * (rho * z_ci + sqrt(1-rho^2) * z_ind)``
    plus rare positive spikes (scarcity pricing), where ``z_ci`` is the
    standardized CI series.  The realized correlation is close to, though
    not exactly, ``target_correlation`` because of the spikes.
    """
    if not -1.0 <= target_correlation <= 1.0:
        raise ConfigError("target correlation must lie in [-1, 1]")
    if price_sigma < 0 or spike_scale < 0:
        raise ConfigError("price sigma and spike scale must be non-negative")
    if not 0 <= spike_probability < 1:
        raise ConfigError("spike probability must lie in [0, 1)")

    ci = ci_trace.hourly
    std = ci.std()
    if std == 0:
        raise ConfigError("cannot correlate against a constant CI trace")
    z_ci = (ci - ci.mean()) / std

    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xE1EC7]))
    z_ind = rng.normal(0.0, 1.0, size=ci.size)
    spikes = rng.random(ci.size) < spike_probability
    spike_values = spikes * rng.exponential(spike_scale, size=ci.size)

    def build(rho: float) -> np.ndarray:
        mix = rho * z_ci + np.sqrt(max(0.0, 1.0 - rho * rho)) * z_ind
        return mean_price + price_sigma * mix + spike_values

    # Scarcity spikes dilute the correlation, so correct once: measure the
    # realized correlation at the target mixing weight and rescale.
    price = build(target_correlation)
    if price_sigma > 0 and target_correlation != 0:
        realized = float(np.corrcoef(ci, price)[0, 1])
        if realized != 0:
            corrected = np.clip(
                target_correlation * (target_correlation / realized), -0.99, 0.99
            )
            price = build(float(corrected))
    return ElectricityPriceTrace(price, name=f"{ci_trace.name}-price")


def carbon_price_conflict_hours(
    ci_trace: CarbonIntensityTrace,
    price_trace: ElectricityPriceTrace,
    low_percentile: float = 30.0,
) -> float:
    """Fraction of hours where carbon and cost objectives conflict.

    An hour conflicts when CI is in its lowest ``low_percentile`` percent
    (carbon-attractive) but price is *not* in its own lowest band, or vice
    versa.  Backs the qualitative claim of the paper's Fig. 20.
    """
    hours = min(ci_trace.num_hours, price_trace.num_hours)
    ci = ci_trace.hourly[:hours]
    price = price_trace.hourly[:hours]
    ci_low = ci <= np.percentile(ci, low_percentile)
    price_low = price <= np.percentile(price, low_percentile)
    return float(np.mean(ci_low != price_low))


def realized_correlation(
    ci_trace: CarbonIntensityTrace, price_trace: ElectricityPriceTrace
) -> float:
    """Pearson correlation between CI and price over their overlap."""
    return correlation(ci_trace, price_trace)
