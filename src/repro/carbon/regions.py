"""Canonical region profiles mirroring the paper's six cloud regions.

The paper (Fig. 6) groups its 2022 ElectricityMaps regions into three CI
levels (Low/Med/High) and two variability classes (Stable/Variable):

========  =============== =============== ==========================
Region    Level           Variability     Notes
========  =============== =============== ==========================
SE        Low             Stable          Swedish hydro/nuclear grid
ON-CA     Low             Variable        Ontario, Canada
SA-AU     Med             Variable        Largest relative variation;
                                          mean CI ~doubles Jul->Dec
CA-US     Med             Variable        ~3.4x diurnal swing (Fig 1)
NL        Med             Variable        Netherlands
KY-US     High            Stable          Coal-heavy, nearly flat
========  =============== =============== ==========================

``TX-US`` is included for the paper's Fig. 20 ERCOT discussion.
"""

from __future__ import annotations

from functools import lru_cache

from repro.carbon.synthetic import RegionProfile, generate_carbon_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ConfigError
from repro.units import HOURS_PER_YEAR

__all__ = [
    "REGION_PROFILES",
    "PAPER_REGIONS",
    "get_region",
    "region_trace",
]

REGION_PROFILES: dict[str, RegionProfile] = {
    profile.name: profile
    for profile in (
        RegionProfile(
            name="SE",
            mean_ci=32.0,
            diurnal_amplitude=0.06,
            seasonal_amplitude=0.08,
            noise_sigma=0.05,
        ),
        RegionProfile(
            name="ON-CA",
            mean_ci=75.0,
            diurnal_amplitude=0.30,
            seasonal_amplitude=0.08,
            noise_sigma=0.20,
        ),
        RegionProfile(
            name="SA-AU",
            mean_ci=250.0,
            diurnal_amplitude=0.50,
            seasonal_amplitude=0.33,
            noise_sigma=0.22,
            # Southern hemisphere: CI peaks in December (paper Fig. 7).
            seasonal_peak_day=350.0,
        ),
        RegionProfile(
            name="CA-US",
            mean_ci=270.0,
            diurnal_amplitude=0.45,
            seasonal_amplitude=0.12,
            noise_sigma=0.12,
            seasonal_peak_day=45.0,
        ),
        RegionProfile(
            name="NL",
            mean_ci=400.0,
            diurnal_amplitude=0.25,
            seasonal_amplitude=0.10,
            noise_sigma=0.12,
        ),
        RegionProfile(
            name="KY-US",
            mean_ci=870.0,
            diurnal_amplitude=0.03,
            seasonal_amplitude=0.04,
            noise_sigma=0.03,
        ),
        RegionProfile(
            name="TX-US",
            mean_ci=420.0,
            diurnal_amplitude=0.30,
            seasonal_amplitude=0.10,
            noise_sigma=0.15,
        ),
    )
}

#: The five regions of the paper's large-scale evaluation (Figs. 15-16)
#: ordered as in Fig. 6, plus Sweden used in the Section 3 sanity check.
PAPER_REGIONS: tuple[str, ...] = ("SE", "ON-CA", "SA-AU", "CA-US", "NL", "KY-US")


def get_region(name: str) -> RegionProfile:
    """Look up a region profile by code, raising ``ConfigError`` if unknown."""
    try:
        return REGION_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(REGION_PROFILES))
        raise ConfigError(f"unknown region {name!r}; known regions: {known}") from None


@lru_cache(maxsize=64)
def region_trace(
    name: str,
    num_hours: int = HOURS_PER_YEAR,
    seed: int = 0,
    start_hour_of_year: int = 0,
) -> CarbonIntensityTrace:
    """Deterministic canonical CI trace for a named region (cached)."""
    return generate_carbon_trace(
        get_region(name),
        num_hours=num_hours,
        seed=seed,
        start_hour_of_year=start_hour_of_year,
    )
