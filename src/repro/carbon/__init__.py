"""Carbon Information Service substrate: traces, synthesis, forecasting.

Public surface of :mod:`repro.carbon`:

* :class:`CarbonIntensityTrace` -- hourly CI with minute-exact integration.
* :class:`RegionProfile` / :func:`generate_carbon_trace` -- synthetic grids.
* :data:`REGION_PROFILES` / :func:`region_trace` -- the paper's regions.
* :class:`PerfectForecaster` / :class:`NoisyForecaster` -- CIS interface.
* :mod:`repro.carbon.stats` -- variation metrics backing Figs. 1, 6, 7.
* :func:`correlated_price_trace` -- electricity prices (Fig. 20).
"""

from __future__ import annotations

from repro.carbon.forecast import Forecaster, NoisyForecaster, PerfectForecaster
from repro.carbon.historical import HistoricalForecaster
from repro.carbon.loaders import load_electricitymaps_csv, load_watttime_json
from repro.carbon.price import (
    ElectricityPriceTrace,
    carbon_price_conflict_hours,
    correlated_price_trace,
    realized_correlation,
)
from repro.carbon.regions import PAPER_REGIONS, REGION_PROFILES, get_region, region_trace
from repro.carbon.stats import (
    coefficient_of_variation,
    correlation,
    monthly_means,
    percentile_threshold,
    spatial_variation,
    temporal_variation,
)
from repro.carbon.synthetic import RegionProfile, generate_carbon_trace
from repro.carbon.trace import CarbonIntensityTrace, HourlySeries

__all__ = [
    "CarbonIntensityTrace",
    "HourlySeries",
    "RegionProfile",
    "generate_carbon_trace",
    "REGION_PROFILES",
    "PAPER_REGIONS",
    "get_region",
    "region_trace",
    "Forecaster",
    "PerfectForecaster",
    "NoisyForecaster",
    "HistoricalForecaster",
    "load_electricitymaps_csv",
    "load_watttime_json",
    "ElectricityPriceTrace",
    "correlated_price_trace",
    "carbon_price_conflict_hours",
    "realized_correlation",
    "coefficient_of_variation",
    "correlation",
    "monthly_means",
    "percentile_threshold",
    "spatial_variation",
    "temporal_variation",
]
