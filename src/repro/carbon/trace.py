"""Hourly time series and carbon-intensity traces.

Carbon-intensity data is published hourly (e.g. by ElectricityMaps), while
the simulator runs on a minute clock.  :class:`HourlySeries` stores the
hourly values and exposes exact piecewise-constant integration over
arbitrary minute intervals via a lazily-built minute-resolution prefix sum,
so policies can evaluate thousands of candidate start times in O(1) each.
"""

from __future__ import annotations

import csv
import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import TraceError
from repro.units import MINUTES_PER_HOUR

__all__ = ["HourlySeries", "CarbonIntensityTrace", "mean_intensity", "align_horizons"]


class HourlySeries:
    """An immutable hourly time series starting at minute 0.

    Parameters
    ----------
    hourly:
        One value per hour.  Values apply piecewise-constant over the hour.
    name:
        Optional label (e.g. a region code) used in reprs and reports.
    """

    def __init__(self, hourly: Sequence[float] | np.ndarray, name: str = ""):
        values = np.asarray(hourly, dtype=np.float64)
        if values.ndim != 1 or values.size == 0:
            raise TraceError("hourly series must be a non-empty 1-D sequence")
        if not np.all(np.isfinite(values)):
            raise TraceError("hourly series contains non-finite values")
        values = values.copy()
        values.setflags(write=False)
        self._hourly = values
        self.name = name
        self._cumulative: np.ndarray | None = None
        self._window_sums: dict[int, np.ndarray] = {}
        self._content_digest: str | None = None

    @property
    def hourly(self) -> np.ndarray:
        """The underlying hourly values (read-only array)."""
        return self._hourly

    @property
    def num_hours(self) -> int:
        return int(self._hourly.size)

    @property
    def horizon_minutes(self) -> int:
        """Total coverage of the series in minutes."""
        return self.num_hours * MINUTES_PER_HOUR

    def __len__(self) -> int:
        return self.num_hours

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} hours={self.num_hours} "
            f"mean={self._hourly.mean():.1f}>"
        )

    # ------------------------------------------------------------------
    # Point and slice access
    # ------------------------------------------------------------------
    def value_at(self, minute: float) -> float:
        """Series value at an absolute minute (piecewise-constant)."""
        self._check_minute(minute)
        return float(self._hourly[int(minute) // MINUTES_PER_HOUR])

    def hour_values(self, start_hour: int, num_hours: int) -> np.ndarray:
        """Hourly values for ``num_hours`` hours starting at ``start_hour``.

        The window is clipped to the series end; at least one hour must be
        available.
        """
        if start_hour < 0 or start_hour >= self.num_hours:
            raise TraceError(
                f"start hour {start_hour} outside series of {self.num_hours} hours"
            )
        end = min(self.num_hours, start_hour + max(1, num_hours))
        return self._hourly[start_hour:end]

    # ------------------------------------------------------------------
    # Integration
    # ------------------------------------------------------------------
    def _cum(self) -> np.ndarray:
        """Prefix integral: ``cum[m]`` = integral of the series over
        ``[0, m)`` minutes, expressed in value-hours."""
        if self._cumulative is None:
            per_minute = np.repeat(self._hourly / MINUTES_PER_HOUR, MINUTES_PER_HOUR)
            cum = np.empty(per_minute.size + 1, dtype=np.float64)
            cum[0] = 0.0
            np.cumsum(per_minute, out=cum[1:])
            self._cumulative = cum
        return self._cumulative

    def integrate(self, start_minute: float, end_minute: float) -> float:
        """Integral of the series over ``[start, end)`` in value-hours.

        For a carbon-intensity trace, multiplying the result by a constant
        power draw in kW yields grams of CO2eq.
        """
        start = int(start_minute)
        end = int(end_minute)
        if start > end:
            raise TraceError(f"inverted interval [{start}, {end})")
        self._check_minute(start)
        if end > self.horizon_minutes:
            raise TraceError(
                f"interval end {end} beyond horizon {self.horizon_minutes}"
            )
        cum = self._cum()
        return float(cum[end] - cum[start])

    def integrate_many(
        self, starts: np.ndarray, duration: int | np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`integrate` over many windows.

        ``duration`` is either a scalar (equal-length candidate windows,
        the policy search case) or a per-window array (the accounting
        case: one entry per usage interval).
        """
        starts = np.asarray(starts, dtype=np.int64)
        durations = np.asarray(duration, dtype=np.int64)
        if np.any(durations < 0):
            raise TraceError("duration must be non-negative")
        ends = starts + durations
        if starts.size and (starts.min() < 0 or ends.max() > self.horizon_minutes):
            raise TraceError("candidate window extends beyond the trace horizon")
        cum = self._cum()
        return cum[ends] - cum[starts]

    def window_sums(self, duration: int) -> np.ndarray:
        """Integrals of *every* ``duration``-minute window, indexed by start.

        ``window_sums(d)[s]`` equals ``integrate(s, s + d)`` bit for bit
        (both are ``cum[s + d] - cum[s]`` over the same prefix sum), for
        every feasible start ``s`` in ``[0, horizon_minutes - d]``.  The
        array is the batched-scoring counterpart of
        :meth:`integrate_many`: policies that evaluate candidate windows
        for many jobs gather their scores from this one precomputed
        (read-only, cached per duration) array instead of re-slicing the
        prefix sum per job.
        """
        if duration < 0:
            raise TraceError("duration must be non-negative")
        if duration > self.horizon_minutes:
            raise TraceError(
                f"window duration {duration} beyond horizon {self.horizon_minutes}"
            )
        cached = self._window_sums.get(duration)
        if cached is None:
            cum = self._cum()
            cached = cum[duration:] - cum[: cum.size - duration]
            cached.setflags(write=False)
            self._window_sums[duration] = cached
        return cached

    def content_digest(self) -> str:
        """SHA-256 over the series' exact values, name, and type.

        Content-addresses the series for the simulation runner's result
        cache (see :mod:`repro.simulator.runner`): two series hash equal
        iff their float values are bit-identical and they carry the same
        name and class.  Computed once and cached.
        """
        if self._content_digest is None:
            hasher = hashlib.sha256()
            hasher.update(type(self).__name__.encode())
            hasher.update(self.name.encode())
            hasher.update(self._hourly.tobytes())
            self._content_digest = hasher.hexdigest()
        return self._content_digest

    def mean_over(self, start_minute: float, end_minute: float) -> float:
        """Time-weighted mean value over ``[start, end)``."""
        duration_hours = (end_minute - start_minute) / MINUTES_PER_HOUR
        if duration_hours <= 0:
            raise TraceError("mean_over requires a non-empty interval")
        return self.integrate(start_minute, end_minute) / duration_hours

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def slice_hours(self, start_hour: int, num_hours: int) -> "HourlySeries":
        """A new series covering ``[start_hour, start_hour + num_hours)``."""
        values = self.hour_values(start_hour, num_hours)
        if values.size < num_hours:
            raise TraceError("slice extends beyond the series")
        return type(self)(values, name=self.name)

    def tile_to(self, num_hours: int) -> "HourlySeries":
        """Repeat the series until it covers at least ``num_hours`` hours."""
        if num_hours <= self.num_hours:
            return self.slice_hours(0, num_hours)
        repeats = -(-num_hours // self.num_hours)
        values = np.tile(self._hourly, repeats)[:num_hours]
        return type(self)(values, name=self.name)

    def scaled(self, factor: float) -> "HourlySeries":
        """A copy with all values multiplied by ``factor``."""
        return type(self)(self._hourly * factor, name=self.name)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write ``hour,value`` rows to ``path``."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["hour", "value"])
            for hour, value in enumerate(self._hourly):
                writer.writerow([hour, repr(float(value))])

    @classmethod
    def from_csv(cls, path: str, name: str = "") -> "HourlySeries":
        """Read a series previously written by :meth:`to_csv`."""
        values = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or "value" not in reader.fieldnames:
                raise TraceError(f"{path}: missing 'value' column")
            for row in reader:
                values.append(float(row["value"]))
        return cls(values, name=name)

    # ------------------------------------------------------------------
    def _check_minute(self, minute: float) -> None:
        if minute < 0 or minute >= self.horizon_minutes:
            raise TraceError(
                f"minute {minute} outside series horizon "
                f"[0, {self.horizon_minutes})"
            )


class CarbonIntensityTrace(HourlySeries):
    """Grid carbon intensity in gCO2eq/kWh, hourly resolution.

    In addition to the generic :class:`HourlySeries` machinery this class
    names the domain operations used by the scheduling policies and the
    accounting layer.
    """

    def __init__(self, hourly: Sequence[float] | np.ndarray, name: str = ""):
        super().__init__(hourly, name=name)
        if np.any(self.hourly < 0):
            raise TraceError("carbon intensity cannot be negative")

    # Domain-named aliases -------------------------------------------------
    def ci_at(self, minute: float) -> float:
        """Carbon intensity (g/kWh) at an absolute minute."""
        return self.value_at(minute)

    def interval_carbon(self, start_minute: float, end_minute: float) -> float:
        """Integral of CI over ``[start, end)`` in (g/kWh)-hours.

        Multiply by a power draw in kW to obtain grams of CO2eq.
        """
        return self.integrate(start_minute, end_minute)

    def window_carbon_many(self, starts: np.ndarray, duration: int) -> np.ndarray:
        """Vectorized :meth:`interval_carbon` over equal-length windows."""
        return self.integrate_many(starts, duration)

    def daily_min_max_ratio(self) -> float:
        """Mean (max/min) ratio of CI within each full day of the trace."""
        full_days = self.num_hours // 24
        if full_days == 0:
            raise TraceError("trace shorter than one day")
        byday = self.hourly[: full_days * 24].reshape(full_days, 24)
        mins = byday.min(axis=1)
        if np.any(mins <= 0):
            return float("inf")
        return float(np.mean(byday.max(axis=1) / mins))


def mean_intensity(traces: Iterable[CarbonIntensityTrace]) -> dict[str, float]:
    """Mean CI per trace, keyed by trace name."""
    return {trace.name: float(trace.hourly.mean()) for trace in traces}


def align_horizons(
    traces: Iterable[CarbonIntensityTrace], minutes: int
) -> list[CarbonIntensityTrace]:
    """Tile every trace so each covers at least ``minutes`` minutes."""
    hours = -(-minutes // MINUTES_PER_HOUR)
    return [trace.tile_to(hours) for trace in traces]  # type: ignore[misc]
