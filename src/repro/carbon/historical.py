"""Historical (non-oracle) carbon-intensity forecasting.

The paper assumes perfect CI foresight, citing the accuracy of
production forecasters (CarbonCast and ElectricityMaps).  Those systems
are, at their core, seasonal models over recent history; this module
implements that class of forecaster so the whole evaluation can be run
**without any oracle**:

:class:`HistoricalForecaster` predicts hour ``h`` as the mean CI of the
same hour-of-day over a trailing window of days, blended with
persistence (the current observation) for short leads -- a standard
"seasonal-naive + persistence" baseline.  Only data strictly before the
query time is ever consulted.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.forecast import Forecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import TraceError
from repro.units import HOURS_PER_DAY, MINUTES_PER_HOUR

__all__ = ["HistoricalForecaster"]


class HistoricalForecaster(Forecaster):
    """Seasonal-naive forecaster over a trailing window of days.

    Parameters
    ----------
    trace:
        The true CI trace (used for *past* observations only).
    history_days:
        Trailing days averaged per hour-of-day (default 7).
    persistence_hours:
        Leads up to this many hours blend the current observation into
        the seasonal estimate, decaying linearly -- capturing the strong
        short-range autocorrelation of grid CI.
    """

    def __init__(
        self,
        trace: CarbonIntensityTrace,
        history_days: int = 7,
        persistence_hours: float = 4.0,
    ):
        super().__init__(trace)
        if history_days <= 0:
            raise TraceError("history window must be positive")
        if persistence_hours < 0:
            raise TraceError("persistence horizon must be non-negative")
        self.history_days = history_days
        self.persistence_hours = persistence_hours

    # ------------------------------------------------------------------
    def _seasonal_estimate(self, now_hour: int, target_hours: np.ndarray) -> np.ndarray:
        """Mean of the same hour-of-day over the trailing window.

        Only hours strictly before ``now_hour`` contribute; early in the
        trace the window shrinks, and with no history at all the current
        hour's observation is used (a cold-start persistence fallback).
        """
        hourly = self.trace.hourly
        estimates = np.empty(target_hours.size, dtype=np.float64)
        for i, target in enumerate(target_hours):
            phase = int(target) % HOURS_PER_DAY
            # Past hours with the same phase: target - 24k < now_hour.
            first_candidate = phase
            past = np.arange(first_candidate, min(now_hour, self.trace.num_hours), HOURS_PER_DAY)
            past = past[past < now_hour][-self.history_days:]
            if past.size:
                estimates[i] = float(hourly[past].mean())
            else:
                estimates[i] = float(hourly[min(now_hour, self.trace.num_hours - 1)])
        return estimates

    def _forecast_hours(self, now: int, start_hour: int, end_hour: int) -> np.ndarray:
        now_hour = now // MINUTES_PER_HOUR
        targets = np.arange(start_hour, end_hour)
        seasonal = self._seasonal_estimate(now_hour, targets)

        # Past (and current) hours are observed, not forecast.
        observed_mask = targets <= now_hour
        values = seasonal
        values[observed_mask] = self.trace.hourly[targets[observed_mask]]

        # Blend persistence into short leads.
        if self.persistence_hours > 0 and now_hour < self.trace.num_hours:
            current = float(self.trace.hourly[now_hour])
            leads = targets - now_hour
            blend = np.clip(1.0 - leads / self.persistence_hours, 0.0, 1.0)
            blend[observed_mask] = 0.0
            values = blend * current + (1.0 - blend) * values
        return values

    # ------------------------------------------------------------------
    # Forecaster interface
    # ------------------------------------------------------------------
    def slot_values(self, now: int, start_minute: int, num_hours: int) -> np.ndarray:
        start_hour = start_minute // MINUTES_PER_HOUR
        if start_hour >= self.trace.num_hours:
            raise TraceError("forecast window starts beyond the trace")
        end_hour = min(self.trace.num_hours, start_hour + max(1, num_hours))
        return self._forecast_hours(now, start_hour, end_hour)

    def _minute_cumulative(self, now: int, start_minute: int, end_minute: int):
        start_hour = start_minute // MINUTES_PER_HOUR
        end_hour = -(-end_minute // MINUTES_PER_HOUR)
        if end_minute > self.trace.horizon_minutes:
            raise TraceError("forecast interval beyond the trace horizon")
        hourly = self._forecast_hours(now, start_hour, end_hour)
        per_minute = np.repeat(hourly / MINUTES_PER_HOUR, MINUTES_PER_HOUR)
        cum = np.concatenate(([0.0], np.cumsum(per_minute)))
        return cum, start_hour * MINUTES_PER_HOUR

    def interval_carbon(self, now: int, start_minute: int, end_minute: int) -> float:
        if start_minute > end_minute:
            raise TraceError("inverted forecast interval")
        if start_minute == end_minute:
            return 0.0
        cum, offset = self._minute_cumulative(now, start_minute, end_minute)
        return float(cum[end_minute - offset] - cum[start_minute - offset])

    def window_carbon_many(self, now: int, starts: np.ndarray, duration: int) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        if starts.size == 0:
            return np.zeros(0)
        lo = int(starts.min())
        hi = int(starts.max()) + duration
        cum, offset = self._minute_cumulative(now, lo, hi)
        return cum[starts + duration - offset] - cum[starts - offset]

    def mean_absolute_percentage_error(
        self, issue_minute: int, lead_hours: int
    ) -> float:
        """MAPE of this forecaster at a given issue time and lead window."""
        now_hour = issue_minute // MINUTES_PER_HOUR
        end_hour = min(self.trace.num_hours, now_hour + 1 + lead_hours)
        if end_hour <= now_hour + 1:
            raise TraceError("no future hours to score")
        predicted = self._forecast_hours(issue_minute, now_hour + 1, end_hour)
        actual = self.trace.hourly[now_hour + 1 : end_hour]
        return float(np.mean(np.abs(predicted - actual) / np.maximum(actual, 1e-9)))
