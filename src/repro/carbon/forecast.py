"""Carbon Information Service (CIS) forecasters.

Policies never read the carbon trace directly; they ask a
:class:`Forecaster` for views of future carbon intensity.  The paper
assumes perfect foresight (its Section 6.1 cites the high accuracy of
production CI forecasts), which :class:`PerfectForecaster` provides.
:class:`NoisyForecaster` is an ablation: forecast error grows with lead
time, so start-time choices degrade gracefully rather than instantly.

Accounting always uses the *true* trace regardless of the forecaster.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import TraceError
from repro.units import MINUTES_PER_HOUR

__all__ = ["Forecaster", "PerfectForecaster", "NoisyForecaster"]


class Forecaster(ABC):
    """Read interface to forecast carbon intensity, anchored at a query time.

    ``now`` is the minute at which the forecast is issued; implementations
    may degrade accuracy with the lead time ``target - now``.
    """

    def __init__(self, trace: CarbonIntensityTrace):
        self.trace = trace

    @property
    def horizon_minutes(self) -> int:
        return self.trace.horizon_minutes

    @abstractmethod
    def slot_values(self, now: int, start_minute: int, num_hours: int) -> np.ndarray:
        """Forecast hourly CI values starting at the hour containing
        ``start_minute`` (clipped at the trace end)."""

    @abstractmethod
    def interval_carbon(self, now: int, start_minute: int, end_minute: int) -> float:
        """Forecast integral of CI over ``[start, end)`` in (g/kWh)-hours."""

    @abstractmethod
    def window_carbon_many(
        self, now: int, starts: np.ndarray, duration: int
    ) -> np.ndarray:
        """Vectorized :meth:`interval_carbon` over equal-length windows."""

    def window_view(self, duration: int) -> np.ndarray | None:
        """A *query-time-independent* view of every window integral, or None.

        When non-None, ``window_view(d)[s]`` must equal
        ``window_carbon_many(now, [s], d)[0]`` bit for bit for **every**
        ``now`` -- which is only possible for forecasters whose output
        does not depend on the issue time.  Batched policy scoring
        (:mod:`repro.policies.scoring`) shares one such view across jobs
        with different arrivals; forecasters that degrade with lead time
        (e.g. :class:`NoisyForecaster`) return ``None`` and scoring
        falls back to per-job queries.
        """
        return None


class PerfectForecaster(Forecaster):
    """Oracle forecaster: returns the true trace values (paper default)."""

    def slot_values(self, now: int, start_minute: int, num_hours: int) -> np.ndarray:
        return self.trace.hour_values(start_minute // MINUTES_PER_HOUR, num_hours)

    def interval_carbon(self, now: int, start_minute: int, end_minute: int) -> float:
        return self.trace.integrate(start_minute, end_minute)

    def window_carbon_many(
        self, now: int, starts: np.ndarray, duration: int
    ) -> np.ndarray:
        return self.trace.integrate_many(starts, duration)

    def window_view(self, duration: int) -> np.ndarray | None:
        return self.trace.window_sums(duration)


class NoisyForecaster(Forecaster):
    """Forecasts with multiplicative error growing with lead time.

    The forecast for target hour ``h`` issued at time ``now`` is::

        ci_hat(h) = ci(h) * max(0.05, 1 + sigma * sqrt(lead_h / 24) * z[h])

    where ``z`` is a frozen standard-normal field indexed by target hour.
    Freezing ``z`` keeps successive forecasts for the same hour coherent
    (they converge to the truth as the hour approaches), which matches how
    real forecast revisions behave.
    """

    def __init__(self, trace: CarbonIntensityTrace, sigma: float = 0.1, seed: int = 0):
        super().__init__(trace)
        if sigma < 0:
            raise TraceError("forecast sigma must be non-negative")
        self.sigma = sigma
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5CA1AB1E]))
        self._z = rng.normal(0.0, 1.0, size=trace.num_hours)

    def _perturbed_hours(self, now: int, start_hour: int, end_hour: int) -> np.ndarray:
        hours = np.arange(start_hour, end_hour)
        lead_hours = np.maximum(0.0, hours - now / MINUTES_PER_HOUR)
        scale = 1.0 + self.sigma * np.sqrt(lead_hours / 24.0) * self._z[start_hour:end_hour]
        return self.trace.hourly[start_hour:end_hour] * np.maximum(0.05, scale)

    def slot_values(self, now: int, start_minute: int, num_hours: int) -> np.ndarray:
        start_hour = start_minute // MINUTES_PER_HOUR
        end_hour = min(self.trace.num_hours, start_hour + max(1, num_hours))
        if start_hour >= self.trace.num_hours:
            raise TraceError("forecast window starts beyond the trace")
        return self._perturbed_hours(now, start_hour, end_hour)

    def _minute_cumulative(self, now: int, start_minute: int, end_minute: int):
        """Per-minute prefix integral of the perturbed CI over a local span."""
        start_hour = start_minute // MINUTES_PER_HOUR
        end_hour = -(-end_minute // MINUTES_PER_HOUR)
        if end_minute > self.trace.horizon_minutes:
            raise TraceError("forecast interval beyond the trace horizon")
        hourly = self._perturbed_hours(now, start_hour, end_hour)
        per_minute = np.repeat(hourly / MINUTES_PER_HOUR, MINUTES_PER_HOUR)
        cum = np.concatenate(([0.0], np.cumsum(per_minute)))
        offset = start_hour * MINUTES_PER_HOUR
        return cum, offset

    def interval_carbon(self, now: int, start_minute: int, end_minute: int) -> float:
        if start_minute > end_minute:
            raise TraceError("inverted forecast interval")
        if start_minute == end_minute:
            return 0.0
        cum, offset = self._minute_cumulative(now, start_minute, end_minute)
        return float(cum[end_minute - offset] - cum[start_minute - offset])

    def window_carbon_many(
        self, now: int, starts: np.ndarray, duration: int
    ) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.int64)
        if starts.size == 0:
            return np.zeros(0)
        lo = int(starts.min())
        hi = int(starts.max()) + duration
        cum, offset = self._minute_cumulative(now, lo, hi)
        return cum[starts + duration - offset] - cum[starts - offset]
