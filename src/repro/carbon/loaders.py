"""Loaders for published carbon-intensity data formats.

The paper uses hourly 2022 traces from ElectricityMaps.  Anyone holding
that data (or WattTime exports) can load it here and run every
experiment against the real grid instead of the synthetic regions.
"""

from __future__ import annotations

import csv
import json
from datetime import datetime

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import TraceError

__all__ = ["load_electricitymaps_csv", "load_watttime_json"]

_EM_VALUE_COLUMNS = (
    "carbon_intensity_avg",
    "carbon_intensity",
    "carbonIntensity",
    "value",
)
_EM_TIME_COLUMNS = ("datetime", "timestamp", "point_time")


def _parse_iso(text: str) -> datetime:
    text = text.strip().replace("Z", "+00:00")
    try:
        return datetime.fromisoformat(text)
    except ValueError as error:
        raise TraceError(f"unparseable timestamp {text!r}") from error


def load_electricitymaps_csv(path: str, name: str = "") -> CarbonIntensityTrace:
    """Load an ElectricityMaps hourly CSV export.

    Accepts the export's common column spellings (``datetime`` +
    ``carbon_intensity_avg``/``carbon_intensity``).  Rows must be
    hourly-consecutive; gaps are filled by carrying the last observation
    forward (the provider's own convention for short outages), and a gap
    longer than a day is an error.
    """
    rows: list[tuple[datetime, float]] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceError(f"{path}: empty file")
        time_column = next((c for c in _EM_TIME_COLUMNS if c in reader.fieldnames), None)
        value_column = next((c for c in _EM_VALUE_COLUMNS if c in reader.fieldnames), None)
        if time_column is None or value_column is None:
            raise TraceError(
                f"{path}: need a time column ({_EM_TIME_COLUMNS}) and a CI "
                f"column ({_EM_VALUE_COLUMNS}); found {reader.fieldnames}"
            )
        for row in reader:
            value_text = row[value_column].strip()
            if not value_text:
                continue  # provider emits blanks for missing hours
            rows.append((_parse_iso(row[time_column]), float(value_text)))
    if not rows:
        raise TraceError(f"{path}: no data rows")
    rows.sort(key=lambda item: item[0])

    values: list[float] = [rows[0][1]]
    for (prev_time, _), (this_time, this_value) in zip(rows, rows[1:]):
        gap_hours = round((this_time - prev_time).total_seconds() / 3600)
        if gap_hours < 1:
            raise TraceError(f"{path}: duplicate or sub-hourly timestamps")
        if gap_hours > 24:
            raise TraceError(f"{path}: gap of {gap_hours} hours at {this_time}")
        # Carry forward over short gaps, then append the new observation.
        values.extend([values[-1]] * (gap_hours - 1))
        values.append(this_value)
    return CarbonIntensityTrace(values, name=name or path)


def load_watttime_json(path: str, name: str = "") -> CarbonIntensityTrace:
    """Load a WattTime historical JSON export.

    Expects a list of ``{"point_time": ..., "value": ...}`` objects with
    MOER values in lbs/MWh, converted to gCO2eq/kWh (x453.592 / 1000).
    """
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, list) or not payload:
        raise TraceError(f"{path}: expected a non-empty JSON list")
    entries = []
    for item in payload:
        try:
            entries.append((_parse_iso(item["point_time"]), float(item["value"])))
        except (KeyError, TypeError) as error:
            raise TraceError(f"{path}: malformed entry {item!r}") from error
    entries.sort(key=lambda item: item[0])
    lbs_per_mwh_to_g_per_kwh = 453.592 / 1000.0
    values = [value * lbs_per_mwh_to_g_per_kwh for _, value in entries]
    return CarbonIntensityTrace(values, name=name or path)
