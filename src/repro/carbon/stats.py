"""Descriptive statistics over carbon-intensity traces.

These back the paper's characterization figures: diurnal swing (Fig. 1),
per-region level/variability (Fig. 6), and monthly means (Fig. 7).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.carbon.trace import CarbonIntensityTrace, HourlySeries
from repro.errors import TraceError
from repro.units import HOURS_PER_DAY

__all__ = [
    "temporal_variation",
    "spatial_variation",
    "monthly_means",
    "coefficient_of_variation",
    "percentile_threshold",
    "correlation",
    "mean_levels",
]

_HOURS_PER_MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def temporal_variation(trace: CarbonIntensityTrace) -> float:
    """Mean within-day max/min CI ratio (the paper reports 3.37x for CA)."""
    return trace.daily_min_max_ratio()


def spatial_variation(traces: Sequence[CarbonIntensityTrace]) -> float:
    """Ratio between the highest and lowest instantaneous CI across regions.

    The paper's Fig. 1 reports up to 9x across three regions at the same
    moment; we compute the max over aligned hours of (max region / min
    region).
    """
    if len(traces) < 2:
        raise TraceError("spatial variation needs at least two traces")
    hours = min(trace.num_hours for trace in traces)
    stacked = np.stack([trace.hourly[:hours] for trace in traces])
    lows = stacked.min(axis=0)
    if np.any(lows <= 0):
        return float("inf")
    return float(np.max(stacked.max(axis=0) / lows))


def monthly_means(trace: CarbonIntensityTrace) -> list[float]:
    """Mean CI per calendar month (non-leap year layout).

    Requires at least a full year; extra hours are ignored.
    """
    if trace.num_hours < 365 * HOURS_PER_DAY:
        raise TraceError("monthly means require a year-long trace")
    means = []
    cursor = 0
    for days in _HOURS_PER_MONTH_DAYS:
        span = days * HOURS_PER_DAY
        means.append(float(trace.hourly[cursor : cursor + span].mean()))
        cursor += span
    return means


def coefficient_of_variation(series: HourlySeries) -> float:
    """std/mean of the hourly values."""
    mean = float(series.hourly.mean())
    if mean == 0:
        raise TraceError("coefficient of variation undefined for zero mean")
    return float(series.hourly.std() / mean)


def percentile_threshold(
    values: np.ndarray | Sequence[float], percentile: float
) -> float:
    """The ``percentile``-th percentile of a value window.

    Used by the Ecovisor policy, which runs a job only when CI is below the
    30th percentile of the next 24 hours.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise TraceError("percentile of an empty window")
    if not 0 <= percentile <= 100:
        raise TraceError("percentile must be within [0, 100]")
    return float(np.percentile(values, percentile))


def correlation(a: HourlySeries, b: HourlySeries) -> float:
    """Pearson correlation between two hourly series over their overlap."""
    hours = min(a.num_hours, b.num_hours)
    if hours < 2:
        raise TraceError("correlation needs at least two overlapping hours")
    xa = a.hourly[:hours]
    xb = b.hourly[:hours]
    if xa.std() == 0 or xb.std() == 0:
        raise TraceError("correlation undefined for a constant series")
    return float(np.corrcoef(xa, xb)[0, 1])


def mean_levels(traces: Iterable[CarbonIntensityTrace]) -> dict[str, float]:
    """Mean CI per region, ordered as given (backs Fig. 6)."""
    return {trace.name: float(trace.hourly.mean()) for trace in traces}
