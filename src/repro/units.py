"""Time, energy, and carbon unit conventions used throughout the library.

The simulator operates on a discrete **minute** clock: every timestamp and
duration is an integer number of minutes since the start of the simulated
horizon.  Carbon-intensity traces are hourly (as published by services such
as ElectricityMaps) and are integrated piecewise-constant over minutes.

Conventions:

* time            -- int minutes
* carbon intensity -- gCO2eq per kWh
* energy          -- kWh
* power           -- kW
* money           -- USD
"""

from __future__ import annotations

MINUTES_PER_HOUR = 60
HOURS_PER_DAY = 24
MINUTES_PER_DAY = MINUTES_PER_HOUR * HOURS_PER_DAY
DAYS_PER_WEEK = 7
MINUTES_PER_WEEK = MINUTES_PER_DAY * DAYS_PER_WEEK
DAYS_PER_YEAR = 365
HOURS_PER_YEAR = HOURS_PER_DAY * DAYS_PER_YEAR
MINUTES_PER_YEAR = MINUTES_PER_DAY * DAYS_PER_YEAR

GRAMS_PER_KILOGRAM = 1000.0


def hours(value: float) -> int:
    """Convert a duration in hours to whole minutes (rounded to nearest)."""
    return int(round(value * MINUTES_PER_HOUR))


def days(value: float) -> int:
    """Convert a duration in days to whole minutes (rounded to nearest)."""
    return int(round(value * MINUTES_PER_DAY))


def weeks(value: float) -> int:
    """Convert a duration in weeks to whole minutes (rounded to nearest)."""
    return int(round(value * MINUTES_PER_WEEK))


def to_hours(minutes: float) -> float:
    """Convert a duration in minutes to fractional hours."""
    return minutes / MINUTES_PER_HOUR


def to_days(minutes: float) -> float:
    """Convert a duration in minutes to fractional days."""
    return minutes / MINUTES_PER_DAY


def grams_to_kg(grams: float) -> float:
    """Convert grams of CO2eq to kilograms."""
    return grams / GRAMS_PER_KILOGRAM


def format_minutes(minutes: float) -> str:
    """Render a duration in minutes as a compact human-readable string.

    >>> format_minutes(90)
    '1h30m'
    >>> format_minutes(2880)
    '2d'
    """
    minutes = int(round(minutes))
    if minutes < 0:
        return "-" + format_minutes(-minutes)
    d, rem = divmod(minutes, MINUTES_PER_DAY)
    h, m = divmod(rem, MINUTES_PER_HOUR)
    parts = []
    if d:
        parts.append(f"{d}d")
    if h:
        parts.append(f"{h}h")
    if m or not parts:
        parts.append(f"{m}m")
    return "".join(parts)
