"""Sampling primitives for synthetic workload generation.

Small, composable distribution objects with an explicit ``sample(rng, n)``
method.  Keeping the RNG external makes every generator deterministic
under a seed and lets mixtures share one stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "Distribution",
    "LogNormal",
    "Exponential",
    "Mixture",
    "DiscreteChoice",
    "Scaled",
]


class Distribution(ABC):
    """A one-dimensional sampling distribution."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` samples as a float array."""


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterized by its *median* and log-space sigma.

    ``median`` is more intuitive than mu for calibrating job lengths:
    half the jobs are shorter than it.
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ConfigError("LogNormal median must be positive")
        if self.sigma < 0:
            raise ConfigError("LogNormal sigma must be non-negative")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(mean=np.log(self.median), sigma=self.sigma, size=n)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigError("Exponential mean must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean, size=n)


class Mixture(Distribution):
    """Weighted mixture of component distributions."""

    def __init__(self, components: Sequence[tuple[float, Distribution]]):
        if not components:
            raise ConfigError("Mixture needs at least one component")
        weights = np.array([w for w, _ in components], dtype=np.float64)
        if np.any(weights <= 0):
            raise ConfigError("Mixture weights must be positive")
        self._weights = weights / weights.sum()
        self._distributions = [dist for _, dist in components]

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        choices = rng.choice(len(self._distributions), size=n, p=self._weights)
        out = np.empty(n, dtype=np.float64)
        for index, dist in enumerate(self._distributions):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = dist.sample(rng, count)
        return out


class DiscreteChoice(Distribution):
    """Weighted choice over a fixed set of values (e.g. CPU counts)."""

    def __init__(self, values: Sequence[float], weights: Sequence[float]):
        if len(values) != len(weights) or not values:
            raise ConfigError("values and weights must be equal-length and non-empty")
        w = np.array(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ConfigError("weights must be non-negative with positive sum")
        self._values = np.array(values, dtype=np.float64)
        self._weights = w / w.sum()

    @property
    def mean(self) -> float:
        """Expected value of the choice."""
        return float(np.dot(self._values, self._weights))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self._values, size=n, p=self._weights)


@dataclass(frozen=True)
class Scaled(Distribution):
    """Multiply every sample of an inner distribution by a constant.

    Used e.g. for Mustang-HPC's 24-core node granularity.
    """

    inner: Distribution
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigError("Scaled factor must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.inner.sample(rng, n) * self.factor
