"""Workload substrate: jobs, queues, traces, and synthetic families."""

from __future__ import annotations

from repro.workload.adapters import (
    LoadReport,
    load_alibaba_pai,
    load_azure_vm,
    load_mustang,
)
from repro.workload.distributions import (
    DiscreteChoice,
    Distribution,
    Exponential,
    LogNormal,
    Mixture,
    Scaled,
)
from repro.workload.job import (
    DEFAULT_QUEUES,
    Job,
    JobQueue,
    QueueSet,
    default_queue_set,
)
from repro.workload.sampling import (
    MAX_JOB_LENGTH,
    MIN_JOB_LENGTH,
    filter_lengths,
    resample_trace,
    week_long_trace,
    year_long_trace,
)
from repro.workload.stats import (
    cpu_hours_by_length_bin,
    demand_cdf,
    length_cdf,
    short_job_compute_share,
    trace_summary,
)
from repro.workload.estimation import OnlineLengthEstimator
from repro.workload.synthetic import (
    TRACE_FAMILIES,
    alibaba_like,
    azure_like,
    diurnal_arrivals,
    mustang_like,
    poisson_exponential,
)
from repro.workload.trace import WorkloadTrace

__all__ = [
    "Job",
    "JobQueue",
    "QueueSet",
    "default_queue_set",
    "DEFAULT_QUEUES",
    "WorkloadTrace",
    "Distribution",
    "LogNormal",
    "Exponential",
    "Mixture",
    "DiscreteChoice",
    "Scaled",
    "alibaba_like",
    "azure_like",
    "mustang_like",
    "poisson_exponential",
    "diurnal_arrivals",
    "TRACE_FAMILIES",
    "OnlineLengthEstimator",
    "LoadReport",
    "load_azure_vm",
    "load_mustang",
    "load_alibaba_pai",
    "filter_lengths",
    "resample_trace",
    "year_long_trace",
    "week_long_trace",
    "MIN_JOB_LENGTH",
    "MAX_JOB_LENGTH",
    "length_cdf",
    "demand_cdf",
    "cpu_hours_by_length_bin",
    "short_job_compute_share",
    "trace_summary",
]
