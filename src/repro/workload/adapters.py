"""Adapters for the public datasets the paper evaluates on.

The evaluation workloads are built from three public traces.  These
loaders accept the datasets' published schemas, so anyone with the real
data can replay the experiments on it instead of the synthetic
stand-ins:

* :func:`load_azure_vm` -- Azure Public Dataset VM table (Cortez et al.,
  SOSP '17): ``vmid, subscriptionid, deploymentid, vmcreated, vmdeleted,
  maxcpu, avgcpu, p95maxcpu, vmcategory, vmcorecountbucket,
  vmmemorybucket`` with second-resolution offsets.
* :func:`load_mustang` -- LANL Mustang release (Amvrosiadis et al.,
  ATC '18): ``user_ID, group_ID, submit_time, start_time, end_time,
  wallclock_limit, job_status, node_count, tasks_requested`` with ISO
  timestamps; each node has 24 cores.
* :func:`load_alibaba_pai` -- Alibaba PAI ``pai_task_table``
  (Weng et al., NSDI '22): ``job_name, task_name, inst_num, status,
  start_time, end_time, plan_cpu, plan_gpu, plan_mem`` with Unix-second
  timestamps and ``plan_cpu`` in percent of a core.

All loaders normalize to the library's conventions: integer minutes
relative to the trace's first arrival, at least one CPU, and at least
one minute of runtime.  Malformed or incomplete rows (missing ends,
negative durations, unparseable fields) are skipped and counted; a
loader raises :class:`TraceError` only when *nothing* usable remains.
"""

from __future__ import annotations

import csv
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from datetime import datetime, timezone

from repro.errors import TraceError
from repro.workload.job import Job
from repro.workload.trace import WorkloadTrace

__all__ = [
    "LoadReport",
    "load_azure_vm",
    "load_mustang",
    "load_alibaba_pai",
]

#: Cores per Mustang node (the paper treats a 24-core machine as a unit).
MUSTANG_CORES_PER_NODE = 24


@dataclass
class LoadReport:
    """Outcome of parsing a raw dataset file."""

    trace: WorkloadTrace
    rows_read: int
    rows_skipped: int

    @property
    def skip_fraction(self) -> float:
        return self.rows_skipped / self.rows_read if self.rows_read else 0.0


def _read_rows(path: str, required: set[str]) -> Iterator[dict]:
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            missing = required - set(reader.fieldnames or ())
            raise TraceError(f"{path}: missing columns {sorted(missing)}")
        yield from reader


def _build_trace(
    path: str,
    required: set[str],
    parse: Callable[[dict], tuple[float, float, int] | None],
    name: str,
) -> LoadReport:
    """Shared skeleton: parse rows to (arrival_s, length_s, cpus)."""
    raw: list[tuple[float, float, int]] = []
    rows_read = 0
    skipped = 0
    for row in _read_rows(path, required):
        rows_read += 1
        try:
            parsed = parse(row)
        except (ValueError, KeyError, TypeError):
            parsed = None
        if parsed is None:
            skipped += 1
            continue
        raw.append(parsed)
    if not raw:
        raise TraceError(f"{path}: no usable rows out of {rows_read}")

    origin = min(arrival for arrival, _, _ in raw)
    jobs = [
        Job(
            job_id=index,
            arrival=int((arrival - origin) // 60),
            length=max(1, int(round(length / 60))),
            cpus=max(1, cpus),
        )
        for index, (arrival, length, cpus) in enumerate(raw)
    ]
    return LoadReport(
        trace=WorkloadTrace(jobs, name=name),
        rows_read=rows_read,
        rows_skipped=skipped,
    )


# ---------------------------------------------------------------------------
# Azure Public Dataset
# ---------------------------------------------------------------------------

def load_azure_vm(path: str) -> LoadReport:
    """Load the Azure Public Dataset VM table.

    ``vmcreated``/``vmdeleted`` are offsets in seconds from the trace
    start; ``vmcorecountbucket`` is the VM's core bucket (a number, or
    ``>24`` for the top bucket, which we floor at 30 as the dataset
    documentation suggests for capacity studies).
    """

    def parse(row: dict):
        created = float(row["vmcreated"])
        deleted = float(row["vmdeleted"])
        if deleted <= created:
            return None
        bucket = row["vmcorecountbucket"].strip()
        cpus = 30 if bucket.startswith(">") else int(float(bucket))
        return created, deleted - created, cpus

    return _build_trace(
        path,
        required={"vmid", "vmcreated", "vmdeleted", "vmcorecountbucket"},
        parse=parse,
        name="azure-vm",
    )


# ---------------------------------------------------------------------------
# LANL Mustang
# ---------------------------------------------------------------------------

_MUSTANG_TIME_FORMATS = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S")


def _parse_mustang_time(text: str) -> float:
    text = text.strip()
    for fmt in _MUSTANG_TIME_FORMATS:
        try:
            return datetime.strptime(text, fmt).replace(tzinfo=timezone.utc).timestamp()
        except ValueError:
            continue
    raise ValueError(f"unparseable timestamp {text!r}")


def load_mustang(path: str, completed_only: bool = True) -> LoadReport:
    """Load the LANL Mustang job trace.

    ``node_count`` whole nodes of 24 cores each; rows without a start or
    end (cancelled before scheduling) are skipped, and by default only
    ``JOBEND`` completions are kept, as the paper replays completed work.
    """

    def parse(row: dict):
        if completed_only and row.get("job_status", "").strip() not in ("JOBEND", ""):
            return None
        submit = _parse_mustang_time(row["submit_time"])
        start = _parse_mustang_time(row["start_time"])
        end = _parse_mustang_time(row["end_time"])
        if end <= start or start < submit:
            return None
        nodes = int(float(row["node_count"]))
        if nodes <= 0:
            return None
        return submit, end - start, nodes * MUSTANG_CORES_PER_NODE

    return _build_trace(
        path,
        required={"submit_time", "start_time", "end_time", "node_count"},
        parse=parse,
        name="mustang-hpc",
    )


# ---------------------------------------------------------------------------
# Alibaba PAI
# ---------------------------------------------------------------------------

def load_alibaba_pai(path: str) -> LoadReport:
    """Load an Alibaba PAI ``pai_task_table`` export.

    ``plan_cpu`` is in percent of a core (600 = 6 cores) per instance;
    the task's demand is ``inst_num x plan_cpu / 100``.  Only rows with
    ``Terminated`` status (the dataset's successful completion) and both
    timestamps are kept.
    """

    def parse(row: dict):
        status = row.get("status", "").strip()
        if status not in ("", "Terminated"):
            return None
        start_seconds = float(row["start_time"])
        end_seconds = float(row["end_time"])
        if end_seconds <= start_seconds or start_seconds <= 0:
            return None
        plan_cpu = float(row["plan_cpu"] or 100.0)
        instances = int(float(row.get("inst_num") or 1))
        cpus = max(1, round(instances * plan_cpu / 100.0))
        return start_seconds, end_seconds - start_seconds, cpus

    return _build_trace(
        path,
        required={"job_name", "start_time", "end_time", "plan_cpu"},
        parse=parse,
        name="alibaba-pai",
    )
