"""The paper's trace-construction pipeline (Section 6.1).

From each original trace the paper builds evaluation workloads by:

1. **Filtering** -- drop jobs shorter than 5 minutes (38% of Alibaba jobs
   but 0.36% of its compute) and longer than 3 days (little to gain from
   shifting against a ~24 h CI period).
2. **Sampling** -- uniformly sample job (length, cpus) pairs: 100k jobs
   spread over a year for the simulator experiments, and 1k jobs over a
   week (capped at 4 CPUs) for the prototype experiments.
3. **Length extension** -- conceptually replicate shorter traces to cover
   a year; with synthetic families this is just sampling with
   replacement, which we use.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.errors import ConfigError
from repro.units import MINUTES_PER_YEAR, days, weeks
from repro.workload.trace import WorkloadTrace

__all__ = [
    "filter_lengths",
    "resample_trace",
    "year_long_trace",
    "week_long_trace",
    "MIN_JOB_LENGTH",
    "MAX_JOB_LENGTH",
]

#: Paper's short-job cutoff: 5 minutes.
MIN_JOB_LENGTH = 5
#: Paper's long-job cutoff: 3 days.
MAX_JOB_LENGTH = days(3)


def filter_lengths(
    trace: WorkloadTrace,
    min_length: int = MIN_JOB_LENGTH,
    max_length: int = MAX_JOB_LENGTH,
) -> WorkloadTrace:
    """Drop very short and very long jobs, as the paper does."""
    if min_length > max_length:
        raise ConfigError("min_length exceeds max_length")
    return trace.filtered(
        lambda job: min_length <= job.length <= max_length,
        name=f"{trace.name}-filtered",
    )


def resample_trace(
    trace: WorkloadTrace,
    num_jobs: int,
    horizon: int,
    seed: int = 0,
    max_cpus: int | None = None,
    name: str | None = None,
    arrival_peak_hour: float | None = None,
) -> WorkloadTrace:
    """Uniformly sample (length, cpus) pairs and spread them over ``horizon``.

    Matches the paper's construction: arrivals are fresh uniform draws
    over the target horizon (the shape information retained from the
    original trace is its length/demand distribution, not its arrival
    process).  ``max_cpus`` applies the paper's 4-CPU cap *by exclusion*
    (jobs needing more CPUs are not eligible), as done for the prototype
    week trace.
    """
    if num_jobs <= 0:
        raise ConfigError("num_jobs must be positive")
    if horizon <= 0:
        raise ConfigError("horizon must be positive")
    eligible = [job for job in trace.jobs if max_cpus is None or job.cpus <= max_cpus]
    if not eligible:
        raise ConfigError(f"no jobs within the {max_cpus}-CPU cap to sample from")
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, zlib.crc32((trace.name or "trace").encode())])
    )
    picks = rng.integers(0, len(eligible), size=num_jobs)
    if arrival_peak_hour is None:
        arrivals = np.sort(rng.integers(0, horizon, size=num_jobs))
    else:
        from repro.workload.synthetic import diurnal_arrivals

        arrivals = diurnal_arrivals(rng, num_jobs, horizon, peak_hour=arrival_peak_hour)
    lengths = np.array([eligible[i].length for i in picks], dtype=np.int64)
    cpus = np.array([eligible[i].cpus for i in picks], dtype=np.int64)
    return WorkloadTrace.from_arrays(
        arrivals,
        lengths,
        cpus,
        name=name if name is not None else f"{trace.name}-sampled",
        horizon=horizon,
    )


def year_long_trace(
    raw: WorkloadTrace,
    num_jobs: int = 100_000,
    horizon: int = MINUTES_PER_YEAR,
    seed: int = 0,
) -> WorkloadTrace:
    """The paper's year-long 100k-job simulator workload."""
    filtered = filter_lengths(raw)
    return resample_trace(
        filtered, num_jobs, horizon, seed=seed, name=f"{raw.name}-year"
    )


def week_long_trace(
    raw: WorkloadTrace,
    num_jobs: int = 1_000,
    horizon: int = weeks(1),
    seed: int = 0,
    max_cpus: int = 4,
    arrival_peak_hour: float | None = None,
) -> WorkloadTrace:
    """The paper's week-long 1k-job prototype workload (<=4 CPUs/job)."""
    filtered = filter_lengths(raw)
    return resample_trace(
        filtered, num_jobs, horizon, seed=seed, max_cpus=max_cpus,
        name=f"{raw.name}-week", arrival_peak_hour=arrival_peak_hour,
    )
