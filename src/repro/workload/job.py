"""Job model and length-based queues.

Following the paper (Section 4.2), users submit jobs to a *queue* that
bounds how long the job may run (e.g. a short queue of up to 2 hours and a
long queue).  The scheduler knows the queue's bound and, optionally, the
queue-wide historical average length -- but never the job's true length.
Each queue also carries the system-wide maximum waiting time ``W`` the
scheduler may impose on its jobs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigError, TraceError
from repro.units import days, hours

__all__ = ["Job", "JobQueue", "QueueSet", "DEFAULT_QUEUES", "default_queue_set"]


@dataclass(frozen=True)
class Job:
    """A batch job as submitted by a user.

    Attributes
    ----------
    job_id:
        Unique id within its trace.
    arrival:
        Submission minute.
    length:
        True execution length in minutes.  Policies must not read this
        unless they explicitly model job-length knowledge (Wait Awhile).
    cpus:
        Number of CPUs held for the entire execution.
    queue:
        Name of the length queue the job was submitted to ("" until
        assigned by a :class:`QueueSet`).
    """

    job_id: int
    arrival: int
    length: int
    cpus: int = 1
    queue: str = ""

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise TraceError(f"job {self.job_id}: negative arrival {self.arrival}")
        if self.length <= 0:
            raise TraceError(f"job {self.job_id}: non-positive length {self.length}")
        if self.cpus <= 0:
            raise TraceError(f"job {self.job_id}: non-positive cpus {self.cpus}")

    @property
    def cpu_minutes(self) -> float:
        """Total compute demand of the job in CPU-minutes."""
        return float(self.length * self.cpus)

    def with_queue(self, queue_name: str) -> "Job":
        """A copy of the job assigned to ``queue_name``."""
        return replace(self, queue=queue_name)


@dataclass(frozen=True)
class JobQueue:
    """A length queue with its scheduling parameters.

    Attributes
    ----------
    name:
        Queue label, e.g. ``"short"``.
    max_length:
        Upper bound (minutes) on job length; jobs longer than this are
        terminated by the cluster, so users submit to a queue whose bound
        covers their job.
    max_wait:
        System-wide maximum waiting time ``W`` (minutes) for this queue;
        the scheduler guarantees execution starts no later than ``W``
        after arrival.
    avg_length:
        Historical queue-wide average job length (minutes), the coarse
        length estimate available to Lowest-Window and Carbon-Time.
        ``None`` until computed from a trace.
    """

    name: str
    max_length: int
    max_wait: int
    avg_length: float | None = None

    def __post_init__(self) -> None:
        if self.max_length <= 0:
            raise ConfigError(f"queue {self.name}: max_length must be positive")
        if self.max_wait < 0:
            raise ConfigError(f"queue {self.name}: max_wait must be non-negative")

    def length_estimate(self) -> float:
        """The scheduler's working estimate of a job's length.

        Uses the historical average when available, otherwise falls back
        to the queue bound (the only guaranteed knowledge).
        """
        return self.avg_length if self.avg_length is not None else float(self.max_length)


@dataclass(frozen=True)
class QueueSet:
    """An ordered collection of length queues.

    Queues are kept sorted by ``max_length``; a job is routed to the first
    queue whose bound covers its length (the paper assumes users assign
    their jobs to the appropriate queue).
    """

    queues: tuple[JobQueue, ...] = field(default_factory=tuple)
    #: Derived lookup caches, rebuilt in ``__post_init__``: name lookup is
    #: on the engine's per-decision path and length routing is on the
    #: workload-preparation path, so both are O(1)/vectorized.
    _by_name: dict[str, JobQueue] = field(init=False, repr=False, compare=False)
    _length_bounds: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.queues:
            raise ConfigError("a QueueSet needs at least one queue")
        ordered = tuple(sorted(self.queues, key=lambda q: q.max_length))
        object.__setattr__(self, "queues", ordered)
        names = [q.name for q in ordered]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate queue names: {names}")
        object.__setattr__(self, "_by_name", {q.name: q for q in ordered})
        object.__setattr__(
            self,
            "_length_bounds",
            np.asarray([q.max_length for q in ordered], dtype=np.int64),
        )

    def __iter__(self):
        return iter(self.queues)

    def __getitem__(self, name: str) -> JobQueue:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(name) from None

    @property
    def longest(self) -> JobQueue:
        return self.queues[-1]

    @property
    def max_wait(self) -> int:
        """The largest W over all queues (bounds scheduler look-ahead)."""
        return max(queue.max_wait for queue in self.queues)

    def queue_for_length(self, length: int) -> JobQueue:
        """The queue a job of ``length`` minutes is submitted to."""
        for queue in self.queues:
            if length <= queue.max_length:
                return queue
        raise ConfigError(
            f"job length {length} min exceeds the longest queue bound "
            f"{self.longest.max_length} min"
        )

    def _route_indices(self, lengths: np.ndarray) -> np.ndarray:
        """Queue index for each job length, via one ``searchsorted``.

        The first queue whose ``max_length`` covers the job is the first
        insertion point into the sorted bounds, so this reproduces
        :meth:`queue_for_length` for every length at once -- including
        raising the same error for the first over-long job.
        """
        indices = np.searchsorted(self._length_bounds, lengths, side="left")
        overflow = indices == len(self.queues)
        if overflow.any():
            length = int(lengths[int(np.argmax(overflow))])
            raise ConfigError(
                f"job length {length} min exceeds the longest queue bound "
                f"{self.longest.max_length} min"
            )
        return indices

    def assign(self, jobs: Iterable[Job]) -> list[Job]:
        """Route each job to its queue, returning re-labelled copies.

        Routing is batched through :meth:`_route_indices`.  Jobs already
        carrying the right label are returned as-is (they are frozen, so
        sharing is safe); the rest are rebuilt with a direct constructor
        call, which is several times cheaper than ``dataclasses.replace``
        on this hot preparation path.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        lengths = np.fromiter((job.length for job in jobs), np.int64, count=len(jobs))
        names = [self.queues[i].name for i in self._route_indices(lengths).tolist()]
        routed = []
        for job, name in zip(jobs, names):
            if job.queue == name:
                routed.append(job)
            else:
                routed.append(
                    Job(
                        job_id=job.job_id,
                        arrival=job.arrival,
                        length=job.length,
                        cpus=job.cpus,
                        queue=name,
                    )
                )
        return routed

    def with_averages(self, jobs: Sequence[Job]) -> "QueueSet":
        """A copy whose queues carry per-queue historical average lengths.

        Jobs are routed by length; queues with no jobs keep their previous
        estimate.  Lengths are integer minutes, so the vectorized
        per-queue sums are exact and the averages match the old
        one-job-at-a-time accumulation bit for bit.
        """
        new_queues = list(self.queues)
        if jobs:
            lengths = np.fromiter(
                (job.length for job in jobs), np.int64, count=len(jobs)
            )
            indices = self._route_indices(lengths)
            num_queues = len(self.queues)
            sums = np.bincount(indices, weights=lengths, minlength=num_queues)
            counts = np.bincount(indices, minlength=num_queues)
            for position, queue in enumerate(new_queues):
                if counts[position]:
                    new_queues[position] = replace(
                        queue, avg_length=float(sums[position]) / int(counts[position])
                    )
        return QueueSet(tuple(new_queues))


def default_queue_set(
    short_max: int | None = None,
    long_max: int | None = None,
    short_wait: int | None = None,
    long_wait: int | None = None,
) -> QueueSet:
    """The paper's two-queue configuration.

    Short queue: jobs up to 2 h, W = 6 h.  Long queue: jobs up to 3 days
    (the trace-construction cap), W = 24 h.
    """
    return QueueSet(
        (
            JobQueue(
                name="short",
                max_length=short_max if short_max is not None else hours(2),
                max_wait=short_wait if short_wait is not None else hours(6),
            ),
            JobQueue(
                name="long",
                max_length=long_max if long_max is not None else days(3),
                max_wait=long_wait if long_wait is not None else hours(24),
            ),
        )
    )


#: Module-level instance of the paper's default queue configuration.
DEFAULT_QUEUES = default_queue_set()
