"""Workload-trace descriptive statistics (paper Figs. 5 and 9 inputs)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TraceError
from repro.units import MINUTES_PER_HOUR
from repro.workload.trace import WorkloadTrace

__all__ = [
    "length_cdf",
    "demand_cdf",
    "cpu_hours_by_length_bin",
    "short_job_compute_share",
    "trace_summary",
]


def length_cdf(trace: WorkloadTrace, thresholds: Sequence[int]) -> list[float]:
    """Fraction of jobs whose length is <= each threshold (minutes)."""
    lengths = trace.lengths()
    return [float(np.mean(lengths <= t)) for t in thresholds]


def demand_cdf(trace: WorkloadTrace, thresholds: Sequence[int]) -> list[float]:
    """Fraction of jobs whose CPU count is <= each threshold."""
    cpus = trace.cpu_counts()
    return [float(np.mean(cpus <= t)) for t in thresholds]


def cpu_hours_by_length_bin(
    trace: WorkloadTrace, edges: Sequence[int]
) -> list[float]:
    """Total CPU-hours contributed by jobs in each length bin.

    ``edges`` are bin boundaries in minutes; jobs land in the bin
    ``(edges[i-1], edges[i]]`` with an implicit leading 0 and trailing
    infinity.  Backs the Fig. 9 observation that medium (3-12 h) jobs
    dominate the cluster's compute cycles.
    """
    if list(edges) != sorted(edges):
        raise TraceError("length bin edges must be sorted")
    lengths = trace.lengths().astype(np.float64)
    work = lengths * trace.cpu_counts() / MINUTES_PER_HOUR
    bounds = [0, *edges, np.inf]
    totals = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        mask = (lengths > lo) & (lengths <= hi)
        totals.append(float(work[mask].sum()))
    return totals


def short_job_compute_share(trace: WorkloadTrace, cutoff: int = 5) -> tuple[float, float]:
    """(job fraction, compute fraction) of jobs at or under ``cutoff`` minutes.

    The paper notes 38% of Alibaba jobs are under 5 minutes yet contribute
    0.36% of the compute cycles -- the justification for filtering them.
    """
    lengths = trace.lengths().astype(np.float64)
    work = lengths * trace.cpu_counts()
    short = lengths <= cutoff
    total_work = work.sum()
    if total_work == 0:
        raise TraceError("trace has no compute")
    return float(short.mean()), float(work[short].sum() / total_work)


def trace_summary(trace: WorkloadTrace) -> dict[str, float]:
    """One-line quantitative summary used by reports and benchmarks."""
    lengths = trace.lengths().astype(np.float64)
    cpus = trace.cpu_counts().astype(np.float64)
    return {
        "jobs": float(len(trace)),
        "horizon_hours": trace.horizon / MINUTES_PER_HOUR,
        "mean_length_hours": float(lengths.mean()) / MINUTES_PER_HOUR,
        "median_length_hours": float(np.median(lengths)) / MINUTES_PER_HOUR,
        "max_length_hours": float(lengths.max()) / MINUTES_PER_HOUR,
        "mean_cpus": float(cpus.mean()),
        "mean_demand": trace.mean_demand,
        "demand_cov": trace.demand_cov(),
        "total_cpu_hours": trace.total_cpu_hours,
    }
