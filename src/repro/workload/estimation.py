"""Online estimation of queue-average job lengths.

The paper's Lowest-Window and Carbon-Time consume the "queue-wide
historical average" job length.  The experiments (like the paper's) take
that average from the trace itself -- an offline oracle.  Real batch
schedulers (the paper cites Slurm's accounting database) learn it
*online* from completed jobs.  :class:`OnlineLengthEstimator` does so
with an exponentially weighted moving average per queue, cold-starting
from the only guaranteed knowledge: the queue's length bound.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workload.job import QueueSet

__all__ = ["OnlineLengthEstimator"]


class OnlineLengthEstimator:
    """Per-queue EWMA of completed job lengths.

    Parameters
    ----------
    queues:
        The cluster's queue configuration; estimates cold-start at each
        queue's ``max_length`` (its conservative bound).
    alpha:
        EWMA weight of each new observation.  The default 0.05 averages
        roughly the last 40 completions.
    warmup:
        Number of observations during which a plain running mean is used
        instead of the EWMA, so early estimates are not dominated by the
        conservative prior.
    """

    def __init__(self, queues: QueueSet, alpha: float = 0.05, warmup: int = 20):
        if not 0 < alpha <= 1:
            raise ConfigError("alpha must be in (0, 1]")
        if warmup < 0:
            raise ConfigError("warmup must be non-negative")
        self.alpha = alpha
        self.warmup = warmup
        self._estimates: dict[str, float] = {
            queue.name: float(queue.max_length) for queue in queues
        }
        self._counts: dict[str, int] = {queue.name: 0 for queue in queues}
        self._sums: dict[str, float] = {queue.name: 0.0 for queue in queues}

    def observe(self, queue_name: str, length: float) -> None:
        """Record one completed job's length."""
        if queue_name not in self._estimates:
            raise ConfigError(f"unknown queue {queue_name!r}")
        if length <= 0:
            raise ConfigError("observed length must be positive")
        count = self._counts[queue_name] + 1
        self._counts[queue_name] = count
        self._sums[queue_name] += length
        if count <= self.warmup:
            self._estimates[queue_name] = self._sums[queue_name] / count
        else:
            previous = self._estimates[queue_name]
            self._estimates[queue_name] = (
                (1.0 - self.alpha) * previous + self.alpha * length
            )

    def estimate(self, queue_name: str) -> float:
        """Current length estimate for a queue (bound until first data)."""
        if queue_name not in self._estimates:
            raise ConfigError(f"unknown queue {queue_name!r}")
        return self._estimates[queue_name]

    def observations(self, queue_name: str) -> int:
        """Completions recorded for a queue."""
        return self._counts[queue_name]
