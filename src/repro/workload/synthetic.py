"""Synthetic workload families shaped like the paper's production traces.

The paper builds its evaluation workloads from three public traces:

* **Alibaba-PAI** -- ML platform jobs: a large mass of very short jobs
  (38% under 5 minutes, contributing only 0.36% of compute), medians in
  the tens of minutes, and a tail out to days; small CPU counts.
* **Azure-VM** -- VM lifetimes: longer, highly variable lengths (many jobs
  span multiple diurnal CI cycles) but a *smooth* aggregate demand
  (demand CoV ~0.3).
* **Mustang-HPC** (LANL) -- parallel MPI jobs: lengths capped at 16 hours,
  CPU counts in whole 24-core nodes, *lumpy* demand (CoV ~0.8).

Those identities matter to the evaluation only through the length and
demand distributions, which these generators are calibrated to.  Each
generator produces a **raw** trace including the very short / very long
jobs that the paper's sampling pipeline (:mod:`repro.workload.sampling`)
subsequently filters, mirroring the paper's own methodology.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigError
from repro.units import MINUTES_PER_YEAR, days, hours
from repro.workload.distributions import DiscreteChoice, Distribution, LogNormal, Mixture
from repro.workload.trace import WorkloadTrace

__all__ = [
    "diurnal_arrivals",
    "alibaba_like",
    "azure_like",
    "mustang_like",
    "poisson_exponential",
    "TRACE_FAMILIES",
]


def _rng_for(name: str, seed: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([seed, zlib.crc32(name.encode("utf-8"))])
    )


def _uniform_arrivals(rng: np.random.Generator, n: int, horizon: int) -> np.ndarray:
    """Arrival minutes of a (conditioned) Poisson process over the horizon."""
    arrivals = np.sort(rng.integers(0, horizon, size=n))
    return arrivals


def diurnal_arrivals(
    rng: np.random.Generator,
    n: int,
    horizon: int,
    peak_hour: float = 14.0,
    amplitude: float = 0.6,
) -> np.ndarray:
    """Arrivals of an inhomogeneous Poisson process with a daily cycle.

    Real clusters see submissions peak during working hours; whether that
    peak aligns with the grid's midday solar valley or its evening carbon
    ramp changes how much temporal shifting can save.  Intensity is
    ``1 + amplitude * cos(2*pi*(hour - peak_hour)/24)``, sampled by
    thinning against the peak rate.
    """
    if not 0 <= amplitude <= 1:
        raise ConfigError("arrival amplitude must be in [0, 1]")
    if amplitude == 0:
        return _uniform_arrivals(rng, n, horizon)
    accepted: list[int] = []
    peak_rate = 1.0 + amplitude
    while len(accepted) < n:
        batch = rng.integers(0, horizon, size=max(256, n))
        hours_of_day = (batch / 60.0) % 24.0
        intensity = 1.0 + amplitude * np.cos(
            2.0 * np.pi * (hours_of_day - peak_hour) / 24.0
        )
        keep = batch[rng.random(batch.size) < intensity / peak_rate]
        accepted.extend(int(v) for v in keep[: n - len(accepted)])
    return np.sort(np.array(accepted, dtype=np.int64))


def _build(
    name: str,
    num_jobs: int,
    horizon: int,
    seed: int,
    length_dist: Distribution,
    cpu_dist: Distribution,
    min_length: int = 1,
    max_length: int | None = None,
    max_cpus: int | None = None,
    arrival_peak_hour: float | None = None,
    arrival_amplitude: float = 0.6,
) -> WorkloadTrace:
    if num_jobs <= 0:
        raise ConfigError("num_jobs must be positive")
    if horizon <= 0:
        raise ConfigError("horizon must be positive")
    rng = _rng_for(name, seed)
    if arrival_peak_hour is None:
        arrivals = _uniform_arrivals(rng, num_jobs, horizon)
    else:
        arrivals = diurnal_arrivals(
            rng, num_jobs, horizon,
            peak_hour=arrival_peak_hour, amplitude=arrival_amplitude,
        )
    lengths = np.maximum(min_length, np.rint(length_dist.sample(rng, num_jobs))).astype(np.int64)
    if max_length is not None:
        np.minimum(lengths, max_length, out=lengths)
    cpus = np.maximum(1, np.rint(cpu_dist.sample(rng, num_jobs))).astype(np.int64)
    if max_cpus is not None:
        np.minimum(cpus, max_cpus, out=cpus)
    return WorkloadTrace.from_arrays(arrivals, lengths, cpus, name=name, horizon=horizon)


def alibaba_like(
    num_jobs: int = 100_000,
    horizon: int = MINUTES_PER_YEAR,
    seed: int = 0,
    max_cpus: int | None = None,
    arrival_peak_hour: float | None = None,
) -> WorkloadTrace:
    """Alibaba-PAI-shaped trace (raw; includes sub-5-minute job mass).

    Length mixture: ~40% of jobs land under 5 minutes (matching the 38%
    the paper reports), a working mass of minutes-to-hours jobs, and a
    multi-hour tail.  CPU demand is small and skewed toward 1-4.
    """
    length_dist = Mixture(
        [
            (0.40, LogNormal(median=2.5, sigma=0.7)),     # the <5 min mass
            (0.30, LogNormal(median=hours(0.5), sigma=0.9)),
            (0.22, LogNormal(median=hours(4), sigma=0.8)),
            (0.08, LogNormal(median=hours(18), sigma=0.6)),
        ]
    )
    cpu_dist = DiscreteChoice(
        values=[1, 2, 4, 8, 16, 32, 64, 100],
        weights=[0.42, 0.22, 0.14, 0.10, 0.07, 0.035, 0.012, 0.003],
    )
    return _build(
        "alibaba",
        num_jobs,
        horizon,
        seed,
        length_dist,
        cpu_dist,
        max_length=days(6),
        max_cpus=max_cpus,
        arrival_peak_hour=arrival_peak_hour,
    )


def azure_like(
    num_jobs: int = 100_000,
    horizon: int = MINUTES_PER_YEAR,
    seed: int = 0,
    max_cpus: int | None = None,
    arrival_peak_hour: float | None = None,
) -> WorkloadTrace:
    """Azure-VM-shaped trace: long, variable lifetimes, smooth demand.

    Lengths are a wide log-normal whose tail spans several days (so long
    jobs straddle diurnal CI cycles, limiting temporal-shifting savings as
    in the paper's Fig. 13).  Small per-job CPU buckets keep the aggregate
    demand smooth (CoV ~0.3).
    """
    length_dist = Mixture(
        [
            (0.15, LogNormal(median=3.0, sigma=0.8)),      # short-lived VMs
            (0.55, LogNormal(median=hours(5), sigma=1.1)),
            (0.30, LogNormal(median=hours(30), sigma=0.9)),
        ]
    )
    cpu_dist = DiscreteChoice(values=[1, 2, 4, 8], weights=[0.48, 0.27, 0.17, 0.08])
    return _build(
        "azure",
        num_jobs,
        horizon,
        seed,
        length_dist,
        cpu_dist,
        max_length=days(8),
        max_cpus=max_cpus,
        arrival_peak_hour=arrival_peak_hour,
    )


def mustang_like(
    num_jobs: int = 100_000,
    horizon: int = MINUTES_PER_YEAR,
    seed: int = 0,
    max_cpus: int | None = None,
    arrival_peak_hour: float | None = None,
) -> WorkloadTrace:
    """Mustang-HPC-shaped trace: <=16 h jobs on whole 24-core nodes.

    The 16-hour cap means queue averages represent jobs well (high
    temporal-shifting savings, paper Fig. 13); node-granular CPU counts
    with a heavy tail make the demand lumpy (CoV ~0.8, paper Fig. 17).
    """
    length_dist = Mixture(
        [
            (0.25, LogNormal(median=4.0, sigma=0.9)),      # debug/test jobs
            (0.50, LogNormal(median=hours(1.5), sigma=1.0)),
            (0.25, LogNormal(median=hours(8), sigma=0.6)),
        ]
    )
    cpu_dist = DiscreteChoice(
        values=[24 * nodes for nodes in (1, 2, 4, 8, 16, 32, 64)],
        weights=[0.46, 0.24, 0.14, 0.08, 0.05, 0.02, 0.01],
    )
    return _build(
        "mustang",
        num_jobs,
        horizon,
        seed,
        length_dist,
        cpu_dist,
        max_length=hours(16),
        max_cpus=max_cpus,
        arrival_peak_hour=arrival_peak_hour,
    )


def poisson_exponential(
    mean_interarrival: int = 48,
    mean_length: int = hours(4),
    cpus: int = 1,
    horizon: int = days(3),
    seed: int = 0,
    name: str = "poisson",
) -> WorkloadTrace:
    """The paper's Section 3 motivating workload.

    Exponential inter-arrivals (mean 48 minutes) and exponential lengths
    (mean 4 hours) at 1 CPU per job over three days, for an average
    cluster demand of ~5 CPUs.
    """
    if mean_interarrival <= 0 or mean_length <= 0:
        raise ConfigError("means must be positive")
    rng = _rng_for(name, seed)
    arrivals = []
    t = 0.0
    while True:
        t += rng.exponential(mean_interarrival)
        if t >= horizon:
            break
        arrivals.append(int(t))
    if not arrivals:
        raise ConfigError("horizon too short: no arrivals generated")
    n = len(arrivals)
    lengths = np.maximum(1, np.rint(rng.exponential(mean_length, size=n))).astype(np.int64)
    return WorkloadTrace.from_arrays(
        arrivals, lengths, np.full(n, cpus), name=name, horizon=horizon
    )


#: Generator registry keyed by the paper's trace names.
TRACE_FAMILIES: dict[str, Callable[..., WorkloadTrace]] = {
    "alibaba": alibaba_like,
    "azure": azure_like,
    "mustang": mustang_like,
}
