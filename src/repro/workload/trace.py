"""Workload traces: ordered collections of jobs plus demand analytics."""

from __future__ import annotations

import csv
import hashlib
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.errors import TraceError
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, QueueSet

__all__ = ["WorkloadTrace"]


class WorkloadTrace:
    """An immutable, arrival-ordered sequence of jobs.

    Parameters
    ----------
    jobs:
        Jobs in any order; stored sorted by (arrival, job_id).
    name:
        Label used in reports, e.g. ``"alibaba-week"``.
    horizon:
        Optional nominal trace horizon in minutes.  Defaults to the last
        arrival plus that job's length.
    """

    def __init__(self, jobs: Iterable[Job], name: str = "", horizon: int | None = None):
        ordered = tuple(sorted(jobs, key=lambda job: (job.arrival, job.job_id)))
        ids = [job.job_id for job in ordered]
        if len(set(ids)) != len(ids):
            raise TraceError("duplicate job ids in trace")
        self._jobs = ordered
        self.name = name
        # A zero-job trace is legal (an idle cluster is a valid scenario);
        # its inferred horizon is 0.
        inferred = max((job.arrival + job.length for job in ordered), default=0)
        if horizon is not None and ordered and horizon < ordered[-1].arrival:
            raise TraceError("horizon ends before the last arrival")
        self.horizon = horizon if horizon is not None else inferred
        self._content_digest: str | None = None
        self._prep_cache: dict = {}

    @classmethod
    def _from_sorted(
        cls, ordered: tuple[Job, ...], name: str, horizon: int
    ) -> "WorkloadTrace":
        """Trusted constructor for jobs already in canonical order.

        Callers guarantee ``ordered`` is sorted by (arrival, job_id) with
        unique ids and that ``horizon`` is valid for it -- true whenever
        the jobs come from an existing trace (re-routing queues preserves
        order, thawing a frozen snapshot restores it).  Skipping the
        sort, duplicate check, and horizon inference makes rebuilds of
        large traces cheap on the sweep hot path.
        """
        trace = cls.__new__(cls)
        trace._jobs = tuple(ordered)
        trace.name = name
        trace.horizon = horizon
        trace._content_digest = None
        trace._prep_cache = {}
        return trace

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> tuple[Job, ...]:
        return self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<WorkloadTrace{label} jobs={len(self)} horizon={self.horizon}m>"

    def content_digest(self) -> str:
        """SHA-256 over every job field plus the trace name and horizon.

        Content-addresses the workload for the simulation runner's result
        cache (see :mod:`repro.simulator.runner`).  Computed once and
        cached; the trace is immutable so the digest never goes stale.
        """
        if self._content_digest is None:
            hasher = hashlib.sha256()
            hasher.update(f"WorkloadTrace:{self.name}:{self.horizon}".encode())
            for job in self._jobs:
                hasher.update(
                    f"{job.job_id},{job.arrival},{job.length},{job.cpus},{job.queue};".encode()
                )
            self._content_digest = hasher.hexdigest()
        return self._content_digest

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_cpu_minutes(self) -> float:
        return float(sum(job.cpu_minutes for job in self._jobs))

    @property
    def total_cpu_hours(self) -> float:
        return self.total_cpu_minutes / MINUTES_PER_HOUR

    @property
    def mean_demand(self) -> float:
        """Average cluster-wide CPU demand if every job ran on arrival."""
        if self.horizon <= 0:
            raise TraceError("trace horizon must be positive")
        return self.total_cpu_minutes / self.horizon

    @property
    def max_length(self) -> int:
        """Longest job length in the trace (0 when empty), cached.

        Every simulation run needs it twice (queue-bound check and
        carbon-trace coverage), so the scan over an immutable trace runs
        once.
        """
        cached = self._prep_cache.get("max_length")
        if cached is None:
            cached = int(max((job.length for job in self._jobs), default=0))
            self._prep_cache["max_length"] = cached
        return cached

    def lengths(self) -> np.ndarray:
        """Job lengths in minutes as an array."""
        return np.array([job.length for job in self._jobs], dtype=np.int64)

    def cpu_counts(self) -> np.ndarray:
        """Per-job CPU counts as an array."""
        return np.array([job.cpus for job in self._jobs], dtype=np.int64)

    def demand_profile(self, horizon: int | None = None) -> np.ndarray:
        """Per-minute CPU demand of the run-on-arrival schedule.

        Jobs running past the horizon are clipped; the profile backs the
        reserved-capacity discussion of the paper's Fig. 4.
        """
        horizon = horizon if horizon is not None else self.horizon
        delta = np.zeros(horizon + 1, dtype=np.float64)
        for job in self._jobs:
            start = job.arrival
            end = min(horizon, job.arrival + job.length)
            if start >= horizon:
                continue
            delta[start] += job.cpus
            delta[end] -= job.cpus
        return np.cumsum(delta[:-1])

    def demand_cov(self) -> float:
        """Coefficient of variation of the run-on-arrival demand profile.

        The paper reports ~0.8 for Mustang-HPC and ~0.3 for Azure-VM and
        ties it to how much reserved capacity helps (Fig. 17).
        """
        profile = self.demand_profile()
        mean = profile.mean()
        if mean == 0:
            raise TraceError("demand CoV undefined for an empty profile")
        return float(profile.std() / mean)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def filtered(
        self, predicate: Callable[[Job], bool], name: str | None = None
    ) -> "WorkloadTrace":
        """Jobs satisfying ``predicate`` (horizon preserved)."""
        kept = [job for job in self._jobs if predicate(job)]
        if not kept:
            raise TraceError("filter removed every job")
        return WorkloadTrace(
            kept, name=name if name is not None else self.name, horizon=self.horizon
        )

    def renumbered(self) -> "WorkloadTrace":
        """A copy whose job ids are consecutive from zero."""
        jobs = [
            Job(job_id=i, arrival=j.arrival, length=j.length, cpus=j.cpus, queue=j.queue)
            for i, j in enumerate(self._jobs)
        ]
        return WorkloadTrace(jobs, name=self.name, horizon=self.horizon)

    def with_queues(self, queue_set) -> "WorkloadTrace":
        """A copy with every job routed to its queue.

        Routing rewrites only the queue label, so the canonical
        (arrival, job_id) order of this trace carries over unchanged.
        Memoized per queue set (by value): sweeps route the same trace
        through the same queues once per spec, and both sides are
        immutable, so re-routing is a dictionary hit.
        """
        cached = self._prep_cache.get(("with_queues", queue_set))
        if cached is None:
            cached = WorkloadTrace._from_sorted(
                tuple(queue_set.assign(self._jobs)), name=self.name, horizon=self.horizon
            )
            self._prep_cache[("with_queues", queue_set)] = cached
        return cached

    def queues_with_averages(self, queue_set: "QueueSet") -> "QueueSet":
        """``queue_set.with_averages(self.jobs)``, memoized per queue set.

        The historical averages depend only on this immutable trace and
        the (immutable) input queues, so every simulation of the same
        workload shares one computation.
        """
        cached = self._prep_cache.get(("averaged", queue_set))
        if cached is None:
            cached = queue_set.with_averages(self._jobs)
            self._prep_cache[("averaged", queue_set)] = cached
        return cached

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write jobs as ``job_id,arrival,length,cpus,queue`` rows."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["job_id", "arrival", "length", "cpus", "queue"])
            for job in self._jobs:
                writer.writerow([job.job_id, job.arrival, job.length, job.cpus, job.queue])

    @classmethod
    def from_csv(cls, path: str, name: str = "", horizon: int | None = None) -> "WorkloadTrace":
        """Read a trace previously written by :meth:`to_csv`."""
        jobs = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            required = {"job_id", "arrival", "length", "cpus"}
            if reader.fieldnames is None or not required <= set(reader.fieldnames):
                raise TraceError(f"{path}: missing columns {required}")
            for row in reader:
                jobs.append(
                    Job(
                        job_id=int(row["job_id"]),
                        arrival=int(row["arrival"]),
                        length=int(row["length"]),
                        cpus=int(row["cpus"]),
                        queue=row.get("queue", "") or "",
                    )
                )
        return cls(jobs, name=name, horizon=horizon)

    @staticmethod
    def from_arrays(
        arrivals: Sequence[int],
        lengths: Sequence[int],
        cpus: Sequence[int],
        name: str = "",
        horizon: int | None = None,
    ) -> "WorkloadTrace":
        """Build a trace from parallel arrays (used by the generators)."""
        if not (len(arrivals) == len(lengths) == len(cpus)):
            raise TraceError("arrival/length/cpu arrays must have equal length")
        jobs = [
            Job(job_id=i, arrival=int(a), length=int(l), cpus=int(c))
            for i, (a, l, c) in enumerate(zip(arrivals, lengths, cpus))
        ]
        return WorkloadTrace(jobs, name=name, horizon=horizon)
