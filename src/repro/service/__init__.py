"""GAIA as an always-on service: online scheduling over the engine.

The package layers an asyncio service on the incremental-stepping
engine session (:meth:`repro.simulator.engine.Engine.open`):

* :class:`ServiceConfig` -- deployment knobs and engine construction
  (the single source of engine parameters on both sides of the
  batch-equivalence guarantee);
* :class:`SchedulerService` -- admission control, bounded-queue
  backpressure, cancellation, live accounting and metrics;
* :class:`ServiceServer` / :data:`ROUTES` -- the JSON-over-HTTP
  transport and its introspectable route table;
* :class:`ServiceClient` -- the stdlib async client used by tests and
  ``examples/service_demo.py``.

Run it with ``python -m repro.service``; the API is documented
endpoint-by-endpoint in ``docs/service.md``.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.http import ROUTES, Route, ServiceServer, route_table
from repro.service.scheduler import AdmissionError, JobView, SchedulerService

__all__ = [
    "AdmissionError",
    "JobView",
    "ROUTES",
    "Route",
    "route_table",
    "SchedulerService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
]
