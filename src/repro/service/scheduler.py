"""The always-on scheduler: admission control, backpressure, stepping.

:class:`SchedulerService` wraps one :class:`~repro.simulator.session.
EngineSession` behind an asyncio front door.  All engine stepping
happens on a single worker task consuming a command queue, so the
engine -- which is single-threaded by design -- never sees concurrent
mutation; concurrency lives entirely in the transport.

Flow of one submission::

    client --> admission control --> command queue --> worker --> engine
               (sync, rejects       (bounded: the      (session.submit)
                bad requests)        backpressure
                                     limit)

Admission control rejects structurally bad requests *before* they cost
anything: unknown queues, over-long or over-wide jobs, arrivals in the
simulated past or beyond the service horizon, duplicate ids, capacity
caps.  Backpressure bounds the number of admitted-but-unprocessed
submissions at ``ServiceConfig.max_pending``; past the bound, ``submit``
either waits (optionally with a timeout) or rejects immediately.

Cancellation is only possible while a job is still in the command queue:
once the worker hands an arrival to the engine the decision is made and
the simulation's determinism guarantee forbids unwinding it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.obs.events import (
    ServiceClockAdvanced,
    ServiceDrained,
    ServiceJobAdmitted,
    ServiceJobCancelled,
    ServiceJobRejected,
    ServiceStarted,
    ServiceStopped,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.service.config import ServiceConfig
from repro.simulator.results import SimulationResult
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job

__all__ = ["AdmissionError", "JobView", "SchedulerService"]


class AdmissionError(ReproError):
    """A submission (or control request) the service refuses.

    ``reason`` is a stable machine-readable code; ``status`` the HTTP
    status the API layer maps it to (422 validation, 409 conflict,
    404 unknown, 429 capacity, 503 backpressure).
    """

    def __init__(self, reason: str, message: str, status: int = 422):
        super().__init__(message)
        self.reason = reason
        self.status = status


@dataclass
class JobView:
    """The service's record of one admitted job.

    ``run`` is the engine-internal run state, set once the worker hands
    the arrival to the engine; until then the job is cancellable.
    """

    job: Job
    cancelled: bool = False
    run: Any = None  # _RunState once the engine has seen the arrival

    @property
    def state(self) -> str:
        """Lifecycle state: queued -> waiting -> running -> finished."""
        if self.cancelled:
            return "cancelled"
        if self.run is None:
            return "queued"
        if self.run.finished:
            return "finished"
        if self.run.started:
            return "running"
        return "waiting"


@dataclass
class _Command:
    kind: str  # "submit" | "advance" | "drain"
    future: asyncio.Future
    job_id: int = -1
    job: Job | None = None
    minute: int = 0


_STOP = object()


class SchedulerService:
    """One always-on scheduler over one engine session.

    Lifecycle: construct, :meth:`start`, serve (submit / advance /
    cancel / accounting), :meth:`drain` for the authoritative result,
    :meth:`stop`.  All methods must be called from the event loop that
    ran :meth:`start`.
    """

    def __init__(self, config: ServiceConfig, tracer: Tracer | None = None):
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._engine = None
        self._session = None
        self._commands: asyncio.Queue[Any] | None = None
        self._worker: asyncio.Task[None] | None = None
        self._paused: asyncio.Event | None = None
        self._slot_free: asyncio.Event | None = None
        self._pending_submissions = 0
        self._views: dict[int, JobView] = {}
        self._auto_id = 0
        self._arrival_cursor = 0
        self._admitted = 0
        self._rejected = 0
        self._cancelled = 0
        self._result: SimulationResult | None = None
        self.state = "created"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the engine session and start the worker task."""
        if self.state != "created":
            raise AdmissionError(
                "bad_state", f"cannot start a {self.state} service", 409
            )
        self._engine = self.config.engine(tracer=self.tracer)
        self._session = self._engine.open()
        self._commands = asyncio.Queue()
        self._paused = asyncio.Event()
        self._paused.set()
        self._slot_free = asyncio.Event()
        self._slot_free.set()
        self._worker = asyncio.create_task(self._run(), name="repro-service-worker")
        self.state = "running"
        self.tracer.emit(
            ServiceStarted(
                policy=self._engine.policy.name,
                region=self._engine.carbon.name,
                reserved_cpus=self.config.reserved_cpus,
                max_pending=self.config.max_pending,
                horizon=self.config.horizon_minutes,
            )
        )

    async def stop(self) -> None:
        """Stop the worker and close the service (idempotent).

        Stopping does not drain: an undrained stop discards in-flight
        simulation state.  Call :meth:`drain` first for the result.
        """
        if self.state == "stopped":
            return
        if self._worker is not None:
            assert self._commands is not None
            self._commands.put_nowait(_STOP)
            self.resume()  # a paused worker must still see the sentinel
            await self._worker
            self._worker = None
        self.tracer.emit(
            ServiceStopped(
                jobs_submitted=self._admitted,
                jobs_rejected=self._rejected,
                drained=self._result is not None,
            )
        )
        self.state = "stopped"

    def pause(self) -> None:
        """Suspend the worker between commands (maintenance / tests).

        Admission and enqueueing continue; engine stepping stops, so
        the command queue fills and backpressure becomes observable.
        """
        if self._paused is not None:
            self._paused.clear()

    def resume(self) -> None:
        """Resume a paused worker."""
        if self._paused is not None:
            self._paused.set()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._commands is not None and self._paused is not None
        while True:
            command = await self._commands.get()
            if command is _STOP:
                break
            if not self._paused.is_set():
                await self._paused.wait()
            try:
                payload = self._handle(command)
            except Exception as exc:
                if not command.future.done():
                    command.future.set_exception(exc)
            else:
                if not command.future.done():
                    command.future.set_result(payload)
            finally:
                if command.kind == "submit":
                    self._pending_submissions -= 1
                    assert self._slot_free is not None
                    self._slot_free.set()

    def _handle(self, command: _Command) -> dict[str, Any]:
        session = self._session
        assert session is not None
        if command.kind == "submit":
            view = self._views[command.job_id]
            if view.cancelled:
                return self._job_payload(view)
            assert command.job is not None
            view.run = session.submit(command.job)
            return self._job_payload(view)
        if command.kind == "advance":
            before = session.now
            session.advance_to(command.minute)
            self.tracer.emit(
                ServiceClockAdvanced(
                    time=session.now,
                    from_time=before,
                    pending=session.pending_events,
                )
            )
            return {
                "now": session.now,
                "from": before,
                "pending_events": session.pending_events,
            }
        if command.kind == "drain":
            already_drained = self._result is not None
            result = session.drain()
            self._result = result
            self.state = "drained"
            if not already_drained:
                self.tracer.emit(
                    ServiceDrained(
                        time=session.now,
                        jobs=len(result.records),
                        carbon_g=result.total_carbon_g,
                        cost_usd=result.total_cost,
                        digest=result.digest(),
                    )
                )
            return self._drain_payload()
        raise AdmissionError("bad_command", f"unknown command {command.kind!r}", 500)

    def _drain_payload(self) -> dict[str, Any]:
        assert self._result is not None and self._session is not None
        return {
            "now": self._session.now,
            "jobs": len(self._result.records),
            "digest": self._result.digest(),
            "summary": self._result.summary(),
        }

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _reject(
        self, reason: str, message: str, status: int, job_id: int = -1
    ) -> AdmissionError:
        self._rejected += 1
        self.tracer.emit(
            ServiceJobRejected(
                time=self._now(), job_id=job_id, reason=reason, status=status
            )
        )
        return AdmissionError(reason, message, status)

    def _now(self) -> int:
        return self._session.now if self._session is not None else 0

    def _admit(
        self,
        length: int,
        cpus: int,
        queue: str,
        arrival: int | None,
        job_id: int | None,
    ) -> Job:
        """Validate one submission and mint its :class:`Job` (sync).

        Raises :class:`AdmissionError` with a stable reason code; on
        success the arrival cursor and id counter have advanced and the
        returned job is ready to enqueue.
        """
        if self.state != "running":
            raise self._reject(
                "not_running", f"service is {self.state}, not accepting jobs", 409
            )
        if self._admitted >= self.config.max_jobs:
            raise self._reject(
                "capacity",
                f"service accepted its maximum of {self.config.max_jobs} jobs",
                429,
            )
        if not isinstance(length, int) or length < 1:
            raise self._reject("bad_length", "length must be a positive integer", 422)
        if not isinstance(cpus, int) or cpus < 1:
            raise self._reject("bad_cpus", "cpus must be a positive integer", 422)
        if cpus > self.config.max_cpus:
            raise self._reject(
                "too_wide",
                f"cpus {cpus} exceeds the per-job limit {self.config.max_cpus}",
                422,
            )
        queues = self._engine.queues if self._engine is not None else None
        assert queues is not None
        if queue:
            routed = next((q for q in queues if q.name == queue), None)
            if routed is None:
                known = ", ".join(q.name for q in queues)
                raise self._reject(
                    "unknown_queue", f"unknown queue {queue!r}; queues: {known}", 422
                )
            if length > routed.max_length:
                raise self._reject(
                    "too_long",
                    f"length {length} exceeds queue {queue!r} bound "
                    f"{routed.max_length}",
                    422,
                )
        else:
            if length > queues.longest.max_length:
                raise self._reject(
                    "too_long",
                    f"length {length} exceeds the longest queue bound "
                    f"{queues.longest.max_length}",
                    422,
                )
            routed = queues.queue_for_length(length)
        cursor = max(self._arrival_cursor, self._now())
        if arrival is None:
            arrival = cursor
        elif arrival < cursor:
            raise self._reject(
                "arrival_past",
                f"arrival {arrival} is before the service clock {cursor}",
                409,
            )
        if arrival > self.config.horizon_minutes:
            raise self._reject(
                "beyond_horizon",
                f"arrival {arrival} is past the service horizon "
                f"{self.config.horizon_minutes}",
                422,
            )
        if job_id is None:
            while self._auto_id in self._views:
                self._auto_id += 1
            job_id = self._auto_id
            self._auto_id += 1
        elif job_id in self._views:
            raise self._reject(
                "duplicate_id", f"job id {job_id} already submitted", 409, job_id
            )
        self._arrival_cursor = arrival
        return Job(
            job_id=job_id, arrival=arrival, length=length, cpus=cpus, queue=routed.name
        )

    async def _acquire_slot(self) -> None:
        assert self._slot_free is not None
        while self._pending_submissions >= self.config.max_pending:
            self._slot_free.clear()
            await self._slot_free.wait()

    # ------------------------------------------------------------------
    # Public API (one method per endpoint)
    # ------------------------------------------------------------------
    async def submit(
        self,
        length: int,
        cpus: int = 1,
        queue: str = "",
        arrival: int | None = None,
        job_id: int | None = None,
        wait: bool = True,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Admit one job and return its scheduling outcome.

        Backpressure first: with ``wait`` (the default) the call blocks
        until the command queue has room, up to ``timeout`` seconds;
        without it a full queue rejects immediately.  Then admission
        control, then the worker round-trip -- the returned payload
        includes the policy's planned start.
        """
        if wait:
            try:
                await asyncio.wait_for(self._acquire_slot(), timeout)
            except asyncio.TimeoutError:  # noqa: UP041  (builtin alias only on 3.11+)
                raise self._reject(
                    "queue_full",
                    f"command queue held {self.config.max_pending} submissions "
                    f"for {timeout}s",
                    503,
                ) from None
        elif self._pending_submissions >= self.config.max_pending:
            raise self._reject(
                "queue_full",
                f"command queue full ({self.config.max_pending} submissions pending)",
                503,
            )
        # No await between admission and enqueue: the slot acquired
        # above cannot be stolen, and the arrival cursor cannot move.
        job = self._admit(length, cpus, queue, arrival, job_id)
        self._pending_submissions += 1
        self._admitted += 1
        view = JobView(job=job)
        self._views[job.job_id] = view
        self.tracer.emit(
            ServiceJobAdmitted(
                time=job.arrival,
                job_id=job.job_id,
                queue=job.queue,
                cpus=job.cpus,
                length=job.length,
            )
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        assert self._commands is not None
        self._commands.put_nowait(
            _Command(kind="submit", future=future, job_id=job.job_id, job=job)
        )
        return await future

    def status(self, job_id: int) -> dict[str, Any]:
        """One job's current state and scheduling outcome."""
        view = self._views.get(job_id)
        if view is None:
            raise AdmissionError("unknown_job", f"unknown job id {job_id}", 404)
        return self._job_payload(view)

    def jobs(self, state: str | None = None, limit: int = 100) -> dict[str, Any]:
        """List jobs in submission order, optionally filtered by state."""
        views = list(self._views.values())
        if state is not None:
            views = [view for view in views if view.state == state]
        total = len(views)
        return {
            "total": total,
            "jobs": [self._job_payload(view) for view in views[:limit]],
        }

    def cancel(self, job_id: int) -> dict[str, Any]:
        """Cancel a still-queued job (idempotent for cancelled jobs).

        Jobs the engine has scheduled are immutable history -- the
        decision is part of the deterministic simulation -- so only
        jobs still in the command queue can be cancelled (409 after).
        """
        view = self._views.get(job_id)
        if view is None:
            raise AdmissionError("unknown_job", f"unknown job id {job_id}", 404)
        if view.cancelled:
            return self._job_payload(view)
        if view.run is not None:
            raise AdmissionError(
                "already_scheduled",
                f"job {job_id} is {view.state}; only queued jobs can be cancelled",
                409,
            )
        view.cancelled = True
        self._cancelled += 1
        self.tracer.emit(ServiceJobCancelled(time=self._now(), job_id=job_id))
        return self._job_payload(view)

    async def advance_to(self, minute: int) -> dict[str, Any]:
        """Let simulated time pass to ``minute`` (fires due events)."""
        if self.state != "running":
            raise AdmissionError(
                "not_running", f"service is {self.state}", 409
            )
        if minute < self._now():
            raise AdmissionError(
                "time_travel",
                f"cannot advance to {minute}: clock already at {self._now()}",
                409,
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        assert self._commands is not None
        self._commands.put_nowait(_Command(kind="advance", future=future, minute=minute))
        return await future

    async def drain(self) -> dict[str, Any]:
        """Run the session dry and build the authoritative result.

        After drain the service stops admitting; accounting switches to
        the drained :class:`SimulationResult`, whose digest is the
        batch-equivalence guarantee (see ``docs/service.md``).
        """
        if self.state == "drained":
            return self._drain_payload()
        if self.state != "running":
            raise AdmissionError("not_running", f"service is {self.state}", 409)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        assert self._commands is not None
        self._commands.put_nowait(_Command(kind="drain", future=future))
        return await future

    @property
    def result(self) -> SimulationResult | None:
        """The drained result, or ``None`` before :meth:`drain`."""
        return self._result

    # ------------------------------------------------------------------
    # Read models
    # ------------------------------------------------------------------
    def _job_payload(self, view: JobView) -> dict[str, Any]:
        job = view.job
        payload: dict[str, Any] = {
            "job_id": job.job_id,
            "queue": job.queue,
            "arrival": job.arrival,
            "length": job.length,
            "cpus": job.cpus,
            "state": view.state,
        }
        run = view.run
        if run is not None:
            payload["planned_start"] = run.decision.start_time
            payload["use_spot"] = run.decision.use_spot
            payload["first_start"] = run.first_start
            payload["finish"] = run.finish
            payload["evictions"] = run.evictions
            if run.finished and run.finish is not None:
                payload["waiting_minutes"] = run.finish - job.arrival - job.length
        return payload

    def _live_accounting(self) -> tuple[list[dict[str, Any]], dict[str, float]]:
        """Per-job accounting over finished runs, engine formulas.

        Uses the same ``integrate_many * active_kw_many`` expressions as
        the engine's final accounting (the service engine has no boot
        overhead, so per-interval sums are the whole story); values for
        a finished job equal its eventual :class:`JobRecord` fields.
        """
        engine = self._engine
        assert engine is not None
        finished = [
            view for view in self._views.values()
            if view.run is not None and view.run.finished
        ]
        rows: list[dict[str, Any]] = []
        totals = {
            "jobs": 0.0, "carbon_g": 0.0, "energy_kwh": 0.0,
            "cost_usd": 0.0, "waiting_minutes": 0.0,
        }
        for view in finished:
            run = view.run
            carbon_g = 0.0
            energy_kwh = 0.0
            cost_usd = 0.0
            for interval in run.usage:
                duration = interval.end - interval.start
                kw = engine.energy.active_kw(interval.cpus)
                carbon_g += engine.carbon.integrate(interval.start, interval.end) * kw
                energy_kwh += kw * duration / MINUTES_PER_HOUR
                cost_usd += engine.pricing.usage_cost(
                    interval.option, duration * interval.cpus
                )
            waiting = run.finish - view.job.arrival - view.job.length
            rows.append(
                {
                    "job_id": view.job.job_id,
                    "queue": view.job.queue,
                    "arrival": view.job.arrival,
                    "finish": run.finish,
                    "waiting_minutes": waiting,
                    "carbon_g": carbon_g,
                    "energy_kwh": energy_kwh,
                    "cost_usd": cost_usd,
                    "evictions": run.evictions,
                }
            )
            totals["jobs"] += 1
            totals["carbon_g"] += carbon_g
            totals["energy_kwh"] += energy_kwh
            totals["cost_usd"] += cost_usd
            totals["waiting_minutes"] += waiting
        return rows, totals

    def accounting(
        self,
        queue: str | None = None,
        since: int | None = None,
        limit: int = 100,
        detail: bool = False,
    ) -> dict[str, Any]:
        """Read-only accounting over finished jobs.

        Before drain: live values computed from closed usage intervals
        with the engine's own formulas.  After drain: the authoritative
        result records, plus the accounting ``digest``.  Filters:
        ``queue`` (exact name), ``since`` (finish minute >= since),
        ``limit`` rows; ``detail`` adds the carbon/energy/cost columns.
        """
        if self._result is not None:
            rows = [
                {
                    "job_id": record.job_id,
                    "queue": record.queue,
                    "arrival": record.arrival,
                    "finish": record.finish,
                    "waiting_minutes": record.waiting_time,
                    "carbon_g": record.carbon_g,
                    "energy_kwh": record.energy_kwh,
                    "cost_usd": record.usage_cost,
                    "evictions": record.evictions,
                }
                for record in self._result.records
            ]
            totals = {
                "jobs": float(len(rows)),
                "carbon_g": self._result.total_carbon_g,
                "energy_kwh": self._result.total_energy_kwh,
                "cost_usd": self._result.metered_cost,
                "waiting_minutes": float(
                    sum(row["waiting_minutes"] for row in rows)
                ),
            }
        else:
            rows, totals = self._live_accounting()
        if queue is not None:
            rows = [row for row in rows if row["queue"] == queue]
        if since is not None:
            rows = [row for row in rows if row["finish"] >= since]
        rows.sort(key=lambda row: (row["finish"], row["job_id"]))
        if not detail:
            keep = ("job_id", "queue", "arrival", "finish", "waiting_minutes")
            rows = [{key: row[key] for key in keep} for row in rows]
        payload: dict[str, Any] = {
            "drained": self._result is not None,
            "now": self._now(),
            "totals": totals,
            "total_rows": len(rows),
            "jobs": rows[:limit],
        }
        if self._result is not None:
            payload["digest"] = self._result.digest()
        return payload

    def metrics(self) -> dict[str, Any]:
        """Live metrics snapshot (``MetricsRegistry.snapshot`` shape)."""
        registry = MetricsRegistry()
        registry.counter("service.jobs_admitted", self._admitted)
        registry.counter("service.jobs_rejected", self._rejected)
        registry.counter("service.jobs_cancelled", self._cancelled)
        states = {"queued": 0, "waiting": 0, "running": 0, "finished": 0, "cancelled": 0}
        for view in self._views.values():
            states[view.state] += 1
        for name, count in states.items():
            registry.gauge(f"service.jobs_{name}", float(count))
        registry.gauge("service.clock_minute", float(self._now()))
        registry.gauge("service.pending_submissions", float(self._pending_submissions))
        session = self._session
        registry.gauge(
            "service.pending_events",
            float(session.pending_events) if session is not None else 0.0,
        )
        _, totals = (
            ([], {
                "jobs": float(len(self._result.records)),
                "carbon_g": self._result.total_carbon_g,
                "energy_kwh": self._result.total_energy_kwh,
                "cost_usd": self._result.metered_cost,
                "waiting_minutes": float(
                    sum(r.waiting_time for r in self._result.records)
                ),
            })
            if self._result is not None
            else self._live_accounting()
        )
        registry.gauge("service.carbon_g", totals["carbon_g"])
        registry.gauge("service.energy_kwh", totals["energy_kwh"])
        registry.gauge("service.cost_usd", totals["cost_usd"])
        finished_jobs = totals["jobs"]
        registry.gauge(
            "service.mean_wait_minutes",
            totals["waiting_minutes"] / finished_jobs if finished_jobs else 0.0,
        )
        return registry.snapshot()

    def health(self) -> dict[str, Any]:
        """Liveness payload: state, clock, config identity."""
        return {
            "state": self.state,
            "now": self._now(),
            "policy": self.config.policy,
            "region": self.config.region,
            "jobs_admitted": self._admitted,
            "jobs_rejected": self._rejected,
            "pending_submissions": self._pending_submissions,
            "horizon": self.config.horizon_minutes,
        }
