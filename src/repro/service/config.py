"""Service configuration and engine-session construction.

:class:`ServiceConfig` captures everything the always-on scheduler needs
to build its engine: the policy and region, the queue waiting bounds,
the submission horizon, and the admission/backpressure limits.  The
config is the *single* source of engine parameters on both sides of the
batch-equivalence guarantee: the live service builds its engine via
:meth:`ServiceConfig.engine` with no workload, and the parity tests
build the batch reference via the same method with a real trace --
identical knobs in, so only the arrival transport differs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.carbon.regions import REGION_PROFILES, region_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.spot import HourlyHazard, NoEvictions
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.obs.tracer import Tracer
from repro.simulator.engine import Engine
from repro.simulator.simulation import build_engine
from repro.units import MINUTES_PER_DAY, MINUTES_PER_HOUR, hours
from repro.workload.job import QueueSet, default_queue_set
from repro.workload.trace import WorkloadTrace

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one scheduler-service deployment.

    Attributes
    ----------
    policy:
        Policy spec string (same grammar as the batch CLI), e.g.
        ``"carbon-time"`` or ``"res-first:lowest-window"``.
    region:
        Carbon region code (see ``repro.carbon.regions``) or a CSV path
        written by ``HourlySeries.to_csv``.
    reserved_cpus:
        Pre-paid reserved pool size.
    short_wait_hours / long_wait_hours:
        Queue waiting bounds W, mirroring the artifact's ``-w 6x24``.
    granularity:
        Candidate start-time spacing in minutes.
    horizon_days:
        Submission horizon: arrivals after this simulated time are
        rejected at admission (the service refuses open-ended growth of
        its carbon coverage).
    max_pending:
        Bound of the command queue between the HTTP layer and the
        engine worker -- the backpressure limit.
    max_jobs:
        Admission cap on total jobs accepted over the service lifetime.
    max_cpus:
        Admission cap on a single job's CPU request.
    eviction_rate:
        Hourly spot eviction probability (0 disables the spot market
        hazard).
    spot_seed:
        Seed of the engine's per-job spot RNG streams.
    workload_name:
        Name stamped on the session's (empty) workload trace; part of
        the accounting digest, so parity tests use the same name on
        their batch trace.
    fault_plan:
        Optional deterministic fault plan applied to the live engine
        (see ``docs/robustness.md``).
    """

    policy: str = "carbon-time"
    region: str = "SA-AU"
    reserved_cpus: int = 0
    short_wait_hours: float = 6.0
    long_wait_hours: float = 24.0
    granularity: int = 5
    horizon_days: float = 7.0
    max_pending: int = 64
    max_jobs: int = 100_000
    max_cpus: int = 64
    eviction_rate: float = 0.0
    spot_seed: int = 0
    workload_name: str = "service"
    fault_plan: FaultPlan | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.horizon_days <= 0:
            raise ConfigError("horizon_days must be positive")
        if self.max_pending < 1:
            raise ConfigError("max_pending must be at least 1")
        if self.max_jobs < 1:
            raise ConfigError("max_jobs must be at least 1")
        if self.max_cpus < 1:
            raise ConfigError("max_cpus must be at least 1")
        if not 0.0 <= self.eviction_rate < 1.0:
            raise ConfigError("eviction_rate must be in [0, 1)")

    # ------------------------------------------------------------------
    # Derived pieces
    # ------------------------------------------------------------------
    @property
    def horizon_minutes(self) -> int:
        """The last admissible arrival minute."""
        return int(self.horizon_days * MINUTES_PER_DAY)

    def queues(self) -> QueueSet:
        """The service's queue set (paper defaults with configured W)."""
        return default_queue_set(
            short_wait=hours(self.short_wait_hours),
            long_wait=hours(self.long_wait_hours),
        )

    def carbon(self) -> CarbonIntensityTrace:
        """The region's CI trace, tiled to cover every admissible job.

        Coverage is workload-independent by design: the slack covers a
        job arriving at the horizon, waiting its full W on the longest
        queue, and being fully redone after a last-minute eviction --
        so the live engine and any batch reference built from this
        config see identical carbon values over every queried window.
        """
        if os.path.exists(self.region):
            series = CarbonIntensityTrace.from_csv(
                self.region, name=os.path.basename(self.region)
            )
        elif self.region in REGION_PROFILES:
            series = region_trace(self.region)
        else:
            raise ConfigError(
                f"unknown region {self.region!r}: not a file and not one of "
                f"{sorted(REGION_PROFILES)}"
            )
        queues = self.queues()
        slack = 2 * queues.longest.max_length + queues.max_wait + MINUTES_PER_HOUR
        required = self.horizon_minutes + slack
        hours_needed = -(-required // MINUTES_PER_HOUR)
        if series.num_hours >= hours_needed:
            return series
        return series.tile_to(hours_needed)

    def engine(
        self,
        workload: WorkloadTrace | None = None,
        tracer: Tracer | None = None,
    ) -> Engine:
        """Build the configured engine over ``workload``.

        With no workload (the service case) the engine wraps an empty
        trace carrying the configured name and horizon -- jobs stream
        in through :meth:`Engine.open`.  With a workload (the parity
        tests' batch reference) the same knobs produce the batch
        engine, so ``config.engine(trace).run().digest()`` is the value
        the online path must reproduce.

        Queue-average length estimation is always online: an always-on
        service has no trace to take oracle averages from, and the
        estimator's state evolves identically on both sides given the
        same completion order.
        """
        if workload is None:
            workload = WorkloadTrace(
                [], name=self.workload_name, horizon=self.horizon_minutes
            )
        eviction = (
            HourlyHazard(self.eviction_rate)
            if self.eviction_rate > 0
            else NoEvictions()
        )
        return build_engine(
            workload,
            self.carbon(),
            self.policy,
            reserved_cpus=self.reserved_cpus,
            queues=self.queues(),
            eviction_model=eviction,
            granularity=self.granularity,
            spot_seed=self.spot_seed,
            online_estimation=True,
            tracer=tracer,
            fault_plan=self.fault_plan,
            fast_path=False,
        )
