"""Async client for the scheduler service's JSON API (stdlib only).

One thin method per endpoint, mirroring the route table in
:mod:`repro.service.http`.  Connections are one-shot (the server sends
``Connection: close``), so the client holds no state beyond the
address; error responses raise :class:`ServiceError` carrying the
server's status, reason code, and message.

Used by the end-to-end tests and ``examples/service_demo.py``::

    client = ServiceClient(host, port)
    await client.submit(length=120, cpus=2)
    await client.drain()
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import urlencode

from repro.errors import ReproError

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(ReproError):
    """An error response from the service API."""

    def __init__(self, status: int, reason: str, message: str):
        super().__init__(f"[{status} {reason}] {message}")
        self.status = status
        self.reason = reason

    @classmethod
    def from_payload(cls, status: int, payload: dict[str, Any]) -> "ServiceError":
        return cls(
            status,
            str(payload.get("error", "unknown")),
            str(payload.get("message", "")),
        )


class ServiceClient:
    """Async HTTP client for one service address."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    async def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        params: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        if params:
            filtered = {key: value for key, value in params.items() if value is not None}
            if filtered:
                path = f"{path}?{urlencode(filtered)}"
        payload = json.dumps(body).encode() if body is not None else b""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + payload)
            await writer.drain()
            status_line = (await reader.readline()).decode("latin-1")
            try:
                status = int(status_line.split(" ", 2)[1])
            except (IndexError, ValueError):
                raise ServiceError(0, "protocol", f"bad status line {status_line!r}") from None
            content_length = 0
            while True:
                line = (await reader.readline()).decode("latin-1").strip()
                if not line:
                    break
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            raw = await reader.readexactly(content_length) if content_length else b"{}"
            parsed = json.loads(raw)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - server-side close race
                pass
        if status >= 400:
            raise ServiceError.from_payload(status, parsed)
        return parsed

    # ------------------------------------------------------------------
    # One method per endpoint
    # ------------------------------------------------------------------
    async def health(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return await self._request("GET", "/healthz")

    async def submit(
        self,
        length: int,
        cpus: int = 1,
        queue: str = "",
        arrival: int | None = None,
        job_id: int | None = None,
        wait: bool = True,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """``POST /jobs``: submit one job, returning its schedule."""
        body: dict[str, Any] = {"length": length, "cpus": cpus, "wait": wait}
        if queue:
            body["queue"] = queue
        if arrival is not None:
            body["arrival"] = arrival
        if job_id is not None:
            body["job_id"] = job_id
        if timeout is not None:
            body["timeout"] = timeout
        return await self._request("POST", "/jobs", body=body)

    async def jobs(self, state: str | None = None, limit: int = 100) -> dict[str, Any]:
        """``GET /jobs``: list jobs, optionally filtered by state."""
        return await self._request("GET", "/jobs", params={"state": state, "limit": limit})

    async def status(self, job_id: int) -> dict[str, Any]:
        """``GET /jobs/{job_id}``: one job's state and schedule."""
        return await self._request("GET", f"/jobs/{job_id}")

    async def cancel(self, job_id: int) -> dict[str, Any]:
        """``DELETE /jobs/{job_id}``: cancel a still-queued job."""
        return await self._request("DELETE", f"/jobs/{job_id}")

    async def advance_to(self, minute: int) -> dict[str, Any]:
        """``POST /clock/advance``: let simulated time pass."""
        return await self._request("POST", "/clock/advance", body={"minute": minute})

    async def drain(self) -> dict[str, Any]:
        """``POST /drain``: run the session dry; returns the digest."""
        return await self._request("POST", "/drain")

    async def accounting(
        self,
        queue: str | None = None,
        since: int | None = None,
        limit: int = 100,
        detail: bool = False,
    ) -> dict[str, Any]:
        """``GET /accounting``: read-only per-job accounting."""
        return await self._request(
            "GET",
            "/accounting",
            params={
                "queue": queue,
                "since": since,
                "limit": limit,
                "detail": "1" if detail else None,
            },
        )

    async def metrics(self) -> dict[str, Any]:
        """``GET /metrics``: live metrics snapshot."""
        return await self._request("GET", "/metrics")

    async def shutdown(self) -> dict[str, Any]:
        """``POST /shutdown``: stop the service cleanly."""
        return await self._request("POST", "/shutdown")
