"""``python -m repro.service``: run the scheduler service.

Example::

    python -m repro.service --policy carbon-time --region SA-AU --port 8765

The flags mirror the batch CLI where they overlap; the service-only
flags (admission and backpressure limits) map one-to-one onto
:class:`~repro.service.config.ServiceConfig` fields.  The parser is
introspected by ``tools/check_docs.py`` to keep ``docs/service.md``'s
flag reference in sync.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.carbon.regions import REGION_PROFILES
from repro.errors import ReproError
from repro.obs.tracer import tracer_from_env
from repro.service.config import ServiceConfig
from repro.service.http import ServiceServer
from repro.service.scheduler import SchedulerService

__all__ = ["main", "build_parser", "serve"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="GAIA online scheduler service (JSON over HTTP)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port (0 picks an ephemeral port)")
    parser.add_argument("--policy", default="carbon-time",
                        help="policy spec, e.g. carbon-time or res-first:carbon-time")
    parser.add_argument(
        "--region", default="SA-AU",
        help=f"carbon region ({', '.join(sorted(REGION_PROFILES))}) or a CSV path",
    )
    parser.add_argument("--reserved", type=int, default=0, help="reserved CPUs")
    parser.add_argument(
        "-w", "--waiting", default="6x24", metavar="SHORTxLONG",
        help="max waiting hours as SHORTxLONG (artifact syntax), e.g. 6x24",
    )
    parser.add_argument("--granularity", type=int, default=5,
                        help="candidate start-time spacing in minutes")
    parser.add_argument("--horizon-days", type=float, default=7.0,
                        help="submission horizon; later arrivals are rejected")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="backpressure bound on queued submissions")
    parser.add_argument("--max-jobs", type=int, default=100_000,
                        help="admission cap on total accepted jobs")
    parser.add_argument("--max-cpus", type=int, default=64,
                        help="admission cap on a single job's CPUs")
    parser.add_argument("--eviction-rate", type=float, default=0.0,
                        help="hourly spot eviction probability (0-1)")
    parser.add_argument("--spot-seed", type=int, default=0,
                        help="seed for the per-job spot RNG streams")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="inject deterministic faults into the live engine "
                             "(see docs/robustness.md)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="seed for the fault plan's RNG streams "
                             "(requires --fault-plan; default 0)")
    return parser


def _config_from_args(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> ServiceConfig:
    from repro.cli import _parse_waiting

    short_wait, long_wait = _parse_waiting(args.waiting)
    fault_plan = None
    if args.fault_plan:
        from repro.faults import parse_fault_plan

        seed = args.fault_seed if args.fault_seed is not None else 0
        fault_plan = parse_fault_plan(args.fault_plan, seed=seed)
    elif args.fault_seed is not None:
        parser.error("--fault-seed requires --fault-plan")
    return ServiceConfig(
        policy=args.policy,
        region=args.region,
        reserved_cpus=args.reserved,
        short_wait_hours=short_wait / 60,
        long_wait_hours=long_wait / 60,
        granularity=args.granularity,
        horizon_days=args.horizon_days,
        max_pending=args.max_pending,
        max_jobs=args.max_jobs,
        max_cpus=args.max_cpus,
        eviction_rate=args.eviction_rate,
        spot_seed=args.spot_seed,
        fault_plan=fault_plan,
    )


async def serve(config: ServiceConfig, host: str, port: int) -> None:
    """Start the service and serve until ``POST /shutdown``."""
    tracer = tracer_from_env()
    service = SchedulerService(config, tracer=tracer)
    await service.start()
    server = ServiceServer(service, host=host, port=port)
    bound_host, bound_port = await server.start()
    print(
        f"repro.service: {config.policy} on {config.region} "
        f"listening on http://{bound_host}:{bound_port}",
        flush=True,
    )
    try:
        await server.serve_until_shutdown()
    finally:
        await server.stop()
        tracer.close()
    print("repro.service: stopped", flush=True)


def main(argv: list[str] | None = None) -> int:
    """Run the service from CLI arguments; return a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = _config_from_args(args, parser)
        asyncio.run(serve(config, args.host, args.port))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
