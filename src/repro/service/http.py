"""JSON-over-HTTP transport for the scheduler service (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio.start_server``: every
request is parsed by hand, dispatched through the :data:`ROUTES` table,
and answered with a JSON body and ``Connection: close``.  No framework,
no new dependencies -- the service's API surface is exactly the route
table, which ``tools/check_docs.py`` introspects to keep
``docs/service.md`` honest.

Error mapping: :class:`~repro.service.scheduler.AdmissionError` carries
its own HTTP status (422 validation, 409 conflict, 404 unknown, 429
capacity, 503 backpressure); any other :class:`~repro.errors.ReproError`
maps to 500.  Error bodies are ``{"error": reason, "message": text}``.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ReproError
from repro.service.scheduler import AdmissionError, SchedulerService

__all__ = ["Route", "ROUTES", "route_table", "ServiceServer"]

#: Cap on accepted request bodies; a submission is a few hundred bytes.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class Route:
    """One API endpoint: the unit of the documented surface.

    ``pattern`` uses ``{name}`` placeholders for path parameters;
    ``handler`` names the :class:`ServiceServer` method that serves it.
    """

    method: str
    pattern: str
    handler: str
    summary: str


ROUTES: tuple[Route, ...] = (
    Route("GET", "/healthz", "handle_healthz", "liveness and service state"),
    Route("POST", "/jobs", "handle_submit", "submit one job (admission + backpressure)"),
    Route("GET", "/jobs", "handle_jobs", "list jobs, filterable by state"),
    Route("GET", "/jobs/{job_id}", "handle_status", "one job's state and schedule"),
    Route("DELETE", "/jobs/{job_id}", "handle_cancel", "cancel a still-queued job"),
    Route("POST", "/clock/advance", "handle_advance", "advance the simulated clock"),
    Route("POST", "/drain", "handle_drain", "run the session dry; authoritative result"),
    Route("GET", "/accounting", "handle_accounting", "read-only per-job accounting"),
    Route("GET", "/metrics", "handle_metrics", "live metrics snapshot"),
    Route("POST", "/shutdown", "handle_shutdown", "stop the service cleanly"),
)


def route_table() -> tuple[Route, ...]:
    """The service's full API surface (introspected by check_docs)."""
    return ROUTES


def _match(route: Route, path: str) -> dict[str, str] | None:
    """Path parameters if ``path`` matches the route pattern, else None."""
    pattern_parts = route.pattern.strip("/").split("/")
    path_parts = path.strip("/").split("/")
    if len(pattern_parts) != len(path_parts):
        return None
    params: dict[str, str] = {}
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


class _HttpError(Exception):
    def __init__(self, status: int, reason: str, message: str):
        super().__init__(message)
        self.status = status
        self.reason = reason


_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ServiceServer:
    """The HTTP front end of one :class:`SchedulerService`.

    Usage::

        server = ServiceServer(service, host="127.0.0.1", port=0)
        host, port = await server.start()
        await server.serve_until_shutdown()   # returns after POST /shutdown

    ``port=0`` binds an ephemeral port (tests); :meth:`start` returns
    the bound address.  Shutdown -- via endpoint or :meth:`stop` --
    closes the listener and stops the scheduler's worker task, leaving
    no tasks behind.
    """

    def __init__(self, service: SchedulerService, host: str = "127.0.0.1", port: int = 8765):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`stop`), then clean up."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and stop the scheduler (idempotent)."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except _HttpError as error:
            status = error.status
            payload = {"error": error.reason, "message": str(error)}
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            payload = {"error": "internal", "message": str(error)}
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "bad_request", "empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(
                400, "bad_request", f"malformed request line {request_line!r}"
            ) from None
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        content_length = int(headers.get("content-length", "0") or "0")
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "too_large", "request body too large")
        raw = await reader.readexactly(content_length) if content_length else b""
        body: dict[str, Any] = {}
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as error:
                raise _HttpError(400, "bad_json", f"invalid JSON body: {error}") from None
            if not isinstance(body, dict):
                raise _HttpError(400, "bad_json", "JSON body must be an object")
        split = urlsplit(target)
        params = dict(parse_qsl(split.query))
        return await self._dispatch(method.upper(), split.path, params, body)

    async def _dispatch(
        self, method: str, path: str, params: dict[str, str], body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        path_exists = False
        for route in ROUTES:
            path_params = _match(route, path)
            if path_params is None:
                continue
            path_exists = True
            if route.method != method:
                continue
            handler: Callable[..., Awaitable[tuple[int, dict[str, Any]]]]
            handler = getattr(self, route.handler)
            try:
                return await handler(path_params, params, body)
            except AdmissionError as error:
                return error.status, {"error": error.reason, "message": str(error)}
            except ReproError as error:
                return 500, {"error": "internal", "message": str(error)}
        if path_exists:
            raise _HttpError(405, "method_not_allowed", f"{method} not allowed on {path}")
        raise _HttpError(404, "not_found", f"no route for {path}")

    # ------------------------------------------------------------------
    # Handlers (one per route; names are part of the route table)
    # ------------------------------------------------------------------
    async def handle_healthz(self, _path, _params, _body) -> tuple[int, dict[str, Any]]:
        return 200, self.service.health()

    async def handle_submit(self, _path, _params, body) -> tuple[int, dict[str, Any]]:
        if "length" not in body:
            raise AdmissionError("bad_length", "submission requires a length", 422)
        payload = await self.service.submit(
            length=body["length"],
            cpus=body.get("cpus", 1),
            queue=body.get("queue", ""),
            arrival=body.get("arrival"),
            job_id=body.get("job_id"),
            wait=bool(body.get("wait", True)),
            timeout=body.get("timeout"),
        )
        return 201, payload

    async def handle_jobs(self, _path, params, _body) -> tuple[int, dict[str, Any]]:
        return 200, self.service.jobs(
            state=params.get("state"),
            limit=_int_param(params, "limit", 100),
        )

    async def handle_status(self, path_params, _params, _body) -> tuple[int, dict[str, Any]]:
        return 200, self.service.status(_job_id(path_params))

    async def handle_cancel(self, path_params, _params, _body) -> tuple[int, dict[str, Any]]:
        return 200, self.service.cancel(_job_id(path_params))

    async def handle_advance(self, _path, _params, body) -> tuple[int, dict[str, Any]]:
        minute = body.get("minute")
        if not isinstance(minute, int):
            raise AdmissionError("bad_minute", "advance requires an integer minute", 422)
        return 200, await self.service.advance_to(minute)

    async def handle_drain(self, _path, _params, _body) -> tuple[int, dict[str, Any]]:
        return 200, await self.service.drain()

    async def handle_accounting(self, _path, params, _body) -> tuple[int, dict[str, Any]]:
        since = params.get("since")
        return 200, self.service.accounting(
            queue=params.get("queue"),
            since=int(since) if since is not None else None,
            limit=_int_param(params, "limit", 100),
            detail=params.get("detail", "") in ("1", "true", "yes"),
        )

    async def handle_metrics(self, _path, _params, _body) -> tuple[int, dict[str, Any]]:
        return 200, self.service.metrics()

    async def handle_shutdown(self, _path, _params, _body) -> tuple[int, dict[str, Any]]:
        # Respond first; serve_until_shutdown tears the listener down.
        self._shutdown.set()
        return 200, {"state": "stopping"}


def _job_id(path_params: dict[str, str]) -> int:
    try:
        return int(path_params["job_id"])
    except (KeyError, ValueError):
        raise AdmissionError("bad_job_id", "job id must be an integer", 422) from None


def _int_param(params: dict[str, str], name: str, default: int) -> int:
    value = params.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise AdmissionError(f"bad_{name}", f"{name} must be an integer", 422) from None
