"""Trade-off sweeps and operating-regime analysis (paper Figs. 4, 11, 19).

The carbon-cost trade-off is navigated by the size of the pre-paid
reserved pool.  :func:`reserved_sweep` replays a workload across pool
sizes; :func:`classify_regimes` labels each point with the paper's
Fig. 4 regimes; :func:`knee_point` finds the cost-minimizing pool size
operators anchor on.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.carbon.trace import CarbonIntensityTrace
from repro.errors import ReproError
from repro.simulator.runner import SimulationSpec, run_many
from repro.workload.trace import WorkloadTrace

__all__ = ["SweepPoint", "reserved_sweep", "knee_point", "classify_regimes"]


@dataclass(frozen=True)
class SweepPoint:
    """One reserved-pool size in a sweep, normalized to the sweep baseline."""

    reserved_cpus: int
    cost: float
    carbon_kg: float
    mean_wait_hours: float
    normalized_cost: float
    normalized_carbon: float
    reserved_utilization: float


def reserved_sweep(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy_spec: str,
    reserved_values: Sequence[int],
    baseline_spec: str = "nowait",
    jobs: int | None = None,
    **sim_kwargs,
) -> list[SweepPoint]:
    """Run ``policy_spec`` across reserved pool sizes.

    Normalization follows the paper's Fig. 11: every point is relative to
    the ``baseline_spec`` policy on a pure on-demand cluster (0 reserved).
    The baseline and every pool size go through the batch runner in one
    submission, so sweep points are cached, deduplicated, and spread over
    ``jobs`` (or ``$REPRO_JOBS``) workers.
    """
    if not reserved_values:
        raise ReproError("reserved_values must be non-empty")
    specs = [
        SimulationSpec.build(workload, carbon, baseline_spec, reserved_cpus=0, **sim_kwargs)
    ]
    specs.extend(
        SimulationSpec.build(
            workload, carbon, policy_spec, reserved_cpus=int(reserved), **sim_kwargs
        )
        for reserved in reserved_values
    )
    baseline, *results = run_many(specs, jobs=jobs)
    return [
        SweepPoint(
            reserved_cpus=int(reserved),
            cost=result.total_cost,
            carbon_kg=result.total_carbon_kg,
            mean_wait_hours=result.mean_waiting_hours,
            normalized_cost=result.total_cost / baseline.total_cost,
            normalized_carbon=result.total_carbon_kg / baseline.total_carbon_kg,
            reserved_utilization=result.reserved_utilization,
        )
        for reserved, result in zip(reserved_values, results)
    ]


def knee_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The cost-minimizing point of a sweep (paper: "lowest cost" pool)."""
    if not points:
        raise ReproError("empty sweep")
    return min(points, key=lambda point: point.cost)


def classify_regimes(points: Sequence[SweepPoint], breakeven_utilization: float) -> list[str]:
    """Label sweep points with the paper's Fig. 4 operating regimes.

    * ``"1-no-tradeoff"`` -- below the base demand: adding reserved
      capacity cuts cost while retaining (>=90% of) the zero-reserved
      carbon savings.
    * ``"2-tradeoff"`` -- between base and mean demand: cheaper but
      dirtier; the operator picks a point.
    * ``"3-excess"`` -- pool so large its utilization falls below the
      cost break-even (reserved price / on-demand price); always
      dominated, never operate here.

    The first point must be the zero-reserved anchor the savings are
    measured against.
    """
    if not points:
        raise ReproError("empty sweep")
    if points[0].reserved_cpus != 0:
        raise ReproError("regime classification needs the 0-reserved anchor first")
    # Savings relative to the carbon-agnostic baseline the sweep was
    # normalized against (normalized_carbon of 1.0 = no savings).
    full_savings = 1.0 - points[0].normalized_carbon
    labels = []
    for point in points:
        savings = 1.0 - point.normalized_carbon
        if point.reserved_cpus > 0 and point.reserved_utilization < breakeven_utilization:
            labels.append("3-excess")
        elif full_savings <= 0 or savings >= 0.9 * full_savings:
            labels.append("1-no-tradeoff")
        else:
            labels.append("2-tradeoff")
    return labels
