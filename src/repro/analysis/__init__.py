"""Analysis layer: normalization, trade-off metrics, sweeps, reporting."""

from __future__ import annotations

from repro.analysis.metrics import (
    carbon_savings_fraction,
    cost_increase_fraction,
    energy_cost_usd,
    mean_waiting_reduction,
    saved_carbon_per_waiting_hour,
    savings_cdf_by_length,
    savings_per_cost_percent,
    slo_violations,
    stretch_percentiles,
)
from repro.analysis.normalize import normalize_to_baseline, normalize_to_max
from repro.analysis.report import format_value, render_kv, render_table, sparkline
from repro.analysis.stats import (
    PolicyComparison,
    bootstrap_ci,
    compare_policies,
    replicate,
)
from repro.analysis.tradeoff import (
    SweepPoint,
    classify_regimes,
    knee_point,
    reserved_sweep,
)

__all__ = [
    "carbon_savings_fraction",
    "cost_increase_fraction",
    "savings_per_cost_percent",
    "saved_carbon_per_waiting_hour",
    "savings_cdf_by_length",
    "mean_waiting_reduction",
    "energy_cost_usd",
    "stretch_percentiles",
    "slo_violations",
    "normalize_to_max",
    "normalize_to_baseline",
    "render_table",
    "render_kv",
    "format_value",
    "sparkline",
    "replicate",
    "bootstrap_ci",
    "compare_policies",
    "PolicyComparison",
    "SweepPoint",
    "reserved_sweep",
    "knee_point",
    "classify_regimes",
]
