"""Statistical utilities for policy comparisons across seeds.

The paper reports point estimates from single trace replays.  For a
library release we also want error bars: :func:`replicate` reruns an
experiment across workload seeds and :func:`bootstrap_ci` puts a
confidence interval on any statistic of the replicated metric, so claims
like "policy A saves more carbon than policy B" can be checked for
seed-robustness.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["replicate", "bootstrap_ci", "compare_policies", "PolicyComparison"]


def replicate(metric: Callable[[int], float], seeds: Sequence[int]) -> list[float]:
    """Evaluate ``metric(seed)`` for every seed, in order."""
    if not seeds:
        raise ReproError("need at least one seed")
    return [float(metric(seed)) for seed in seeds]


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval of ``statistic(values)``."""
    data = np.asarray(values, dtype=np.float64)
    if data.size < 2:
        raise ReproError("bootstrap needs at least two observations")
    if not 0 < confidence < 1:
        raise ReproError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    resamples = rng.integers(0, data.size, size=(n_resamples, data.size))
    stats = np.array([statistic(data[idx]) for idx in resamples])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.percentile(stats, 100 * alpha)),
        float(np.percentile(stats, 100 * (1 - alpha))),
    )


@dataclass(frozen=True)
class PolicyComparison:
    """Seed-replicated comparison of two policies on one metric."""

    metric_name: str
    values_a: tuple[float, ...]
    values_b: tuple[float, ...]
    ci_difference: tuple[float, float]

    @property
    def mean_a(self) -> float:
        return float(np.mean(self.values_a))

    @property
    def mean_b(self) -> float:
        return float(np.mean(self.values_b))

    @property
    def mean_difference(self) -> float:
        """mean(a) - mean(b)."""
        return self.mean_a - self.mean_b

    @property
    def significant(self) -> bool:
        """True when the CI of the paired difference excludes zero."""
        low, high = self.ci_difference
        return low > 0 or high < 0


def compare_policies(
    metric_a: Callable[[int], float],
    metric_b: Callable[[int], float],
    seeds: Sequence[int],
    metric_name: str = "metric",
    confidence: float = 0.95,
    n_resamples: int = 2_000,
) -> PolicyComparison:
    """Paired seed-level comparison with a bootstrap CI on the difference.

    The same seed drives both policies (paired design), so workload
    randomness cancels out of the difference.
    """
    values_a = replicate(metric_a, seeds)
    values_b = replicate(metric_b, seeds)
    differences = [a - b for a, b in zip(values_a, values_b)]
    ci = bootstrap_ci(
        differences, confidence=confidence, n_resamples=n_resamples
    )
    return PolicyComparison(
        metric_name=metric_name,
        values_a=tuple(values_a),
        values_b=tuple(values_b),
        ci_difference=ci,
    )
