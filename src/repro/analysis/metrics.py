"""Derived trade-off metrics used across the evaluation.

Two of these are the paper's headline quantities:

* **carbon savings per percent cost increase** -- the efficiency of
  buying carbon reductions with money (GAIA "doubles" it vs. prior
  carbon-aware policies);
* **saved carbon per waiting hour** -- the efficiency of buying carbon
  reductions with time (Fig. 14), which motivates the Carbon-Time
  policy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.simulator.results import JobRecord, SimulationResult
from repro.units import MINUTES_PER_HOUR

__all__ = [
    "carbon_savings_fraction",
    "cost_increase_fraction",
    "savings_per_cost_percent",
    "saved_carbon_per_waiting_hour",
    "savings_cdf_by_length",
    "energy_cost_usd",
    "stretch_percentiles",
    "slo_violations",
    "mean_waiting_reduction",
]


def carbon_savings_fraction(result: SimulationResult, baseline: SimulationResult) -> float:
    """Fraction of the baseline's carbon avoided (0.2 = 20% less carbon)."""
    return result.carbon_savings_vs(baseline)


def cost_increase_fraction(result: SimulationResult, baseline: SimulationResult) -> float:
    """Fractional cost increase over the baseline (may be negative)."""
    return result.cost_increase_vs(baseline)


def savings_per_cost_percent(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Percent carbon saved per percent cost added (the headline metric).

    Infinite when the policy saves carbon at no extra cost; negative
    values mean the policy *wastes* both.
    """
    saving = carbon_savings_fraction(result, baseline) * 100.0
    extra_cost = cost_increase_fraction(result, baseline) * 100.0
    if extra_cost <= 0:
        return float("inf") if saving > 0 else 0.0
    return saving / extra_cost


def saved_carbon_per_waiting_hour(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Grams of CO2eq saved per hour of user-visible waiting (Fig. 14)."""
    saved_g = baseline.total_carbon_g - result.total_carbon_g
    waiting_hours = result.total_waiting_hours
    if waiting_hours <= 0:
        return float("inf") if saved_g > 0 else 0.0
    return saved_g / waiting_hours


def savings_cdf_by_length(
    records: tuple[JobRecord, ...] | list[JobRecord],
    length_points: list[int],
) -> list[float]:
    """Cumulative share of total carbon savings from jobs up to each length.

    Backs Fig. 9: the paper finds <1 h jobs contribute ~10% of savings,
    3-12 h jobs ~50%, and >24 h jobs only ~7.5%.  Negative per-job
    savings (jobs that got unlucky) are included, so the CDF can locally
    exceed 1.
    """
    if not records:
        raise ReproError("no records to analyse")
    total = float(sum(record.carbon_saving_g for record in records))
    if total <= 0:
        raise ReproError("no aggregate carbon savings; CDF undefined")
    lengths = np.array([record.length for record in records], dtype=np.float64)
    savings = np.array([record.carbon_saving_g for record in records], dtype=np.float64)
    cdf = []
    for point in length_points:
        cdf.append(float(savings[lengths <= point].sum() / total))
    return cdf


def stretch_percentiles(
    result: SimulationResult, percentiles=(50, 90, 99)
) -> dict[int, float]:
    """Percentiles of per-job *stretch* (completion time / length).

    Stretch is the user-visible slowdown factor: 1.0 means ran on
    arrival.  Carbon-aware waiting hits short jobs hardest (a 6-hour
    wait is stretch 73 for a 5-minute job but 1.5 for a 12-hour one),
    which is the Fig. 14 rationale for small W_short.
    """
    stretches = np.array(
        [record.completion_time / record.length for record in result.records]
    )
    return {int(p): float(np.percentile(stretches, p)) for p in percentiles}


def slo_violations(result: SimulationResult, max_stretch: float = 2.0) -> float:
    """Fraction of jobs whose stretch exceeds ``max_stretch``."""
    if max_stretch < 1.0:
        raise ReproError("max_stretch below 1 is unsatisfiable")
    stretches = np.array(
        [record.completion_time / record.length for record in result.records]
    )
    return float(np.mean(stretches > max_stretch))


def energy_cost_usd(
    result: SimulationResult,
    price_trace,
    kw_per_cpu: float = 0.01,
) -> float:
    """Wholesale energy cost of the realized schedule (paper Section 7).

    ``price_trace`` is an hourly $/MWh series (see
    :func:`repro.carbon.correlated_price_trace`); the result is the sum
    over every executed interval of price x power, in dollars.  This is
    the private-cloud operator's energy bill, distinct from the cloud
    customer's instance bill in :attr:`SimulationResult.total_cost`.
    """
    if kw_per_cpu <= 0:
        raise ReproError("kw_per_cpu must be positive")
    last_finish = max(record.finish for record in result.records)
    hours_needed = -(-last_finish // MINUTES_PER_HOUR)
    covering = price_trace.tile_to(hours_needed)
    total = 0.0
    for record in result.records:
        kw = kw_per_cpu * record.cpus
        for interval in record.usage:
            # integrate() yields ($/MWh)-hours; x kW / 1000 -> dollars.
            total += covering.integrate(interval.start, interval.end) * kw / 1000.0
    return total


def mean_waiting_reduction(
    result: SimulationResult, reference: SimulationResult
) -> float:
    """Fractional reduction in mean waiting time vs. a reference policy."""
    ref = reference.mean_waiting_minutes
    if ref <= 0:
        raise ReproError("reference policy has zero waiting time")
    return 1.0 - result.mean_waiting_minutes / ref
