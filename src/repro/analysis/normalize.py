"""Normalization helpers matching the paper's reporting conventions.

The paper reports almost everything normalized: either *to the highest
value of each metric across policies* (Figs. 8, 10, 13) or *to the NoWait
baseline* (Figs. 11, 15, 18, 19).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ReproError

__all__ = ["normalize_to_max", "normalize_to_baseline"]


def normalize_to_max(values: Mapping[str, float]) -> dict[str, float]:
    """Scale a metric so its largest entry is 1.0 (paper Figs. 8/10/13)."""
    if not values:
        raise ReproError("nothing to normalize")
    peak = max(values.values())
    if peak <= 0:
        raise ReproError("normalize_to_max needs a positive maximum")
    return {key: value / peak for key, value in values.items()}


def normalize_to_baseline(values: Mapping[str, float], baseline: float) -> dict[str, float]:
    """Scale a metric by a baseline value (paper Figs. 11/15/18/19)."""
    if baseline <= 0:
        raise ReproError("baseline must be positive")
    return {key: value / baseline for key, value in values.items()}
