"""Plain-text table rendering for experiment output.

The benchmark harness regenerates the paper's tables and figure series as
text; this module renders row dictionaries into aligned ASCII tables so
``pytest benchmarks/ --benchmark-only -s`` output reads like the paper's
result tables.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ReproError

__all__ = ["format_value", "render_table", "render_kv", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_value(value) -> str:
    """Render one cell: floats to 3 significant decimals, rest via str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    ``columns`` selects and orders the columns; by default the keys of
    the first row are used.
    """
    if not rows:
        raise ReproError("no rows to render")
    columns = list(columns) if columns is not None else list(rows[0].keys())
    table = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    rule = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in table
    )
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.extend([header, rule, body])
    return "\n".join(parts)


def sparkline(values, width: int = 72) -> str:
    """Render a numeric series as a unicode sparkline.

    Values are bucket-averaged down to ``width`` characters and mapped
    onto eight block heights -- enough to eyeball a CI trace's diurnal
    dips or a demand profile's spikes in terminal output.
    """
    data = [float(v) for v in values]
    if not data:
        raise ReproError("nothing to sparkline")
    if len(data) > width:
        bucket = len(data) / width
        data = [
            sum(data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, int((i + 1) * bucket) - int(i * bucket))
            for i in range(width)
        ]
    low, high = min(data), max(data)
    if high == low:
        return _SPARK_LEVELS[0] * len(data)
    span = high - low
    return "".join(
        _SPARK_LEVELS[min(7, int((value - low) / span * 8))] for value in data
    )


def render_kv(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    if not values:
        raise ReproError("no values to render")
    width = max(len(key) for key in values)
    lines = [f"{key.ljust(width)} : {format_value(value)}" for key, value in values.items()]
    if title:
        lines = [title, "-" * len(title), *lines]
    return "\n".join(lines)
