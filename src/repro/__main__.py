"""``python -m repro`` entry point (see :mod:`repro.cli`)."""

from __future__ import annotations

from repro.cli import main

raise SystemExit(main())
