"""Carbon-Time policy (paper Section 4.2.2): carbon savings per delay.

Purely carbon-aware policies chase any reduction in footprint, no matter
how long the job must wait for it.  Carbon-Time instead maximizes the
**Carbon Savings per Completion Time** of the delayed start::

    CST(ts) = (C(t) - C(ts)) / (ts + J - t)

where ``C(t)`` is the footprint of starting immediately.  The numerator
is the saving from waiting; the denominator is the resulting completion
time, so a long wait must buy proportionally more carbon.  As with
Lowest-Window, the queue average Ĵ stands in for the unknown length.
Starting immediately yields CST = 0; if no candidate beats that, the job
runs now.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.workload.job import Job

__all__ = ["CarbonTime"]


class CarbonTime(Policy):
    """Maximize carbon saving per unit of completion time."""

    name = "Carbon-Time"
    carbon_aware = True
    performance_aware = True
    length_knowledge = "average"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        arrival = job.arrival
        candidates = ctx.candidate_starts(arrival, queue.max_wait, estimate)
        if candidates.size == 1:
            return Decision(start_time=int(candidates[0]))

        footprints = ctx.forecaster.window_carbon_many(arrival, candidates, estimate)
        immediate = footprints[0]  # candidates[0] == arrival by construction
        savings = immediate - footprints
        completion = candidates + estimate - arrival
        cst = savings / completion

        # Savings below float noise are no savings: run now rather than
        # chase prefix-sum rounding artifacts; ties break earliest.
        tolerance = 1e-9 * max(1.0, float(immediate))
        best = int(np.flatnonzero(cst >= cst.max() - tolerance / completion[0])[0])
        if savings[best] <= tolerance:
            return Decision(start_time=arrival)
        return Decision(start_time=int(candidates[best]))
