"""Carbon-Time policy (paper Section 4.2.2): carbon savings per delay.

Purely carbon-aware policies chase any reduction in footprint, no matter
how long the job must wait for it.  Carbon-Time instead maximizes the
**Carbon Savings per Completion Time** of the delayed start::

    CST(ts) = (C(t) - C(ts)) / (ts + J - t)

where ``C(t)`` is the footprint of starting immediately.  The numerator
is the saving from waiting; the denominator is the resulting completion
time, so a long wait must buy proportionally more carbon.  As with
Lowest-Window, the queue average Ĵ stands in for the unknown length.
Starting immediately yields CST = 0; if no candidate beats that, the job
runs now.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import cast

import numpy as np

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.policies.scoring import (
    candidate_batch,
    group_jobs_by_queue,
    segment_first_where,
    segment_max,
)
from repro.workload.job import Job

__all__ = ["CarbonTime"]


class CarbonTime(Policy):
    """Maximize carbon saving per unit of completion time."""

    name = "Carbon-Time"
    carbon_aware = True
    performance_aware = True
    length_knowledge = "average"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        arrival = job.arrival
        candidates = ctx.candidate_starts(arrival, queue.max_wait, estimate)
        if candidates.size == 1:
            return Decision(start_time=int(candidates[0]))

        footprints = ctx.forecaster.window_carbon_many(arrival, candidates, estimate)
        immediate = footprints[0]  # candidates[0] == arrival by construction
        savings = immediate - footprints
        completion = candidates + estimate - arrival
        cst = savings / completion

        # Savings below float noise are no savings: run now rather than
        # chase prefix-sum rounding artifacts; ties break earliest.
        tolerance = 1e-9 * max(1.0, float(immediate))
        best = int(np.flatnonzero(cst >= cst.max() - tolerance / completion[0])[0])
        if savings[best] <= tolerance:
            return Decision(start_time=arrival)
        return Decision(start_time=int(candidates[best]))

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        if ctx.estimator is not None:
            # Online estimates can drift between queries; batching would
            # freeze them at precompute time.
            return None
        decisions: list[Decision | None] = [None] * len(jobs)
        for queue, positions in group_jobs_by_queue(jobs, ctx):
            estimate = max(1, int(round(ctx.length_estimate(queue))))
            arrivals = np.fromiter(
                (jobs[i].arrival for i in positions), np.int64, count=len(positions)
            )
            batch = candidate_batch(
                arrivals, queue.max_wait, estimate, ctx.carbon_horizon, ctx.granularity
            )
            chosen = arrivals.copy()
            if batch.index.size:
                view = ctx.forecaster.window_view(estimate)
                if view is None:
                    return None
                footprints = view[batch.starts]
                # First candidate of each job is its arrival, so the
                # per-job immediate footprint sits at the slice offsets.
                immediate = footprints[batch.offsets]
                savings = batch.expand(immediate) - footprints
                completion = batch.starts + estimate - batch.expand(batch.arrivals)
                cst = savings / completion
                # completion[0] in the scalar path is exactly `estimate`.
                tolerance = 1e-9 * np.maximum(1.0, immediate)
                threshold = segment_max(cst, batch) - tolerance / estimate
                best = segment_first_where(cst >= batch.expand(threshold), batch)
                chosen[batch.index] = np.where(
                    savings[best] <= tolerance, batch.arrivals, batch.starts[best]
                )
            for slot, position in enumerate(positions):
                decisions[position] = Decision(start_time=int(chosen[slot]))
        return cast(list[Decision], decisions)
