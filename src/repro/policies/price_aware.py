"""Electricity-price-aware scheduling (paper Section 7 / Fig. 20).

The paper's discussion notes that private-cloud operators face the same
trade-off through *dynamic energy pricing*: a carbon-aware schedule is
only sometimes a cost-aware one (ERCOT's price/CI correlation is ~0.16).
These policies make that concrete:

* :class:`PriceAware` is Lowest-Window against the **price** series --
  what a purely cost-driven operator runs.
* :class:`WeightedCarbonPrice` minimizes a weighted blend of normalized
  window carbon and window energy cost, tracing the carbon/cost frontier
  the discussion describes; ``weight=1`` degrades to Lowest-Window,
  ``weight=0`` to PriceAware.

Both consume a price series through :class:`SchedulingContext`'s
``price_forecaster`` -- a :class:`PerfectForecaster` over an
:class:`ElectricityPriceTrace` works directly, since prices (unlike CI)
are typically published day-ahead.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import cast

import numpy as np

from repro.errors import SchedulingError
from repro.policies.base import Decision, Policy, SchedulingContext
from repro.policies.scoring import (
    CandidateBatch,
    candidate_batch,
    group_jobs_by_queue,
    segment_first_where,
    segment_max,
    segment_min,
)
from repro.workload.job import Job

__all__ = ["PriceAware", "WeightedCarbonPrice"]


def _price_forecaster(ctx: SchedulingContext):
    forecaster = getattr(ctx, "price_forecaster", None)
    if forecaster is None:
        raise SchedulingError(
            "price-aware policies need ctx.price_forecaster (a Forecaster "
            "over an ElectricityPriceTrace)"
        )
    return forecaster


class PriceAware(Policy):
    """Start where the estimated-length *energy cost* integral is smallest."""

    name = "Price-Aware"
    carbon_aware = False
    performance_aware = False
    length_knowledge = "average"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        candidates = ctx.candidate_starts(job.arrival, queue.max_wait, estimate)
        if candidates.size == 1:
            return Decision(start_time=int(candidates[0]))
        prices = _price_forecaster(ctx).window_carbon_many(
            job.arrival, candidates, estimate
        )
        tolerance = 1e-9 * max(1.0, float(np.max(np.abs(prices))))
        best = int(np.flatnonzero(prices <= prices.min() + tolerance)[0])
        return Decision(start_time=int(candidates[best]))

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        if ctx.estimator is not None:
            return None
        decisions: list[Decision | None] = [None] * len(jobs)
        for queue, positions in group_jobs_by_queue(jobs, ctx):
            estimate = max(1, int(round(ctx.length_estimate(queue))))
            arrivals = np.fromiter(
                (jobs[i].arrival for i in positions), np.int64, count=len(positions)
            )
            batch = candidate_batch(
                arrivals, queue.max_wait, estimate, ctx.carbon_horizon, ctx.granularity
            )
            chosen = arrivals.copy()
            if batch.index.size:
                view = _price_forecaster(ctx).window_view(estimate)
                if view is None:
                    return None
                prices = view[batch.starts]
                # Price series can be negative: bound the tolerance by the
                # largest magnitude, exactly as the scalar path does.
                tolerance = 1e-9 * np.maximum(1.0, segment_max(np.abs(prices), batch))
                within = prices <= batch.expand(segment_min(prices, batch) + tolerance)
                best = segment_first_where(within, batch)
                chosen[batch.index] = batch.starts[best]
            for slot, position in enumerate(positions):
                decisions[position] = Decision(start_time=int(chosen[slot]))
        return cast(list[Decision], decisions)


class WeightedCarbonPrice(Policy):
    """Minimize ``w * carbon + (1 - w) * energy_cost`` over the window.

    Both objectives are normalized by their value at the immediate start
    so the weight is unitless; ``carbon_weight`` in [0, 1].
    """

    carbon_aware = True
    performance_aware = False
    length_knowledge = "average"

    def __init__(self, carbon_weight: float = 0.5):
        if not 0.0 <= carbon_weight <= 1.0:
            raise SchedulingError("carbon_weight must lie in [0, 1]")
        self.carbon_weight = carbon_weight
        self.name = f"Carbon-Price({carbon_weight:.2f})"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        arrival = job.arrival
        candidates = ctx.candidate_starts(arrival, queue.max_wait, estimate)
        if candidates.size == 1:
            return Decision(start_time=int(candidates[0]))

        window_carbon_g = ctx.forecaster.window_carbon_many(
            arrival, candidates, estimate
        )
        window_cost = _price_forecaster(ctx).window_carbon_many(
            arrival, candidates, estimate
        )

        def normalized(series: np.ndarray) -> np.ndarray:
            anchor = abs(float(series[0]))
            return series / anchor if anchor > 1e-12 else series

        blended = (
            self.carbon_weight * normalized(window_carbon_g)
            + (1.0 - self.carbon_weight) * normalized(window_cost)
        )
        tolerance = 1e-9 * max(1.0, float(np.max(np.abs(blended))))
        best = int(np.flatnonzero(blended <= blended.min() + tolerance)[0])
        return Decision(start_time=int(candidates[best]))

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        if ctx.estimator is not None:
            return None
        decisions: list[Decision | None] = [None] * len(jobs)
        for queue, positions in group_jobs_by_queue(jobs, ctx):
            estimate = max(1, int(round(ctx.length_estimate(queue))))
            arrivals = np.fromiter(
                (jobs[i].arrival for i in positions), np.int64, count=len(positions)
            )
            batch = candidate_batch(
                arrivals, queue.max_wait, estimate, ctx.carbon_horizon, ctx.granularity
            )
            chosen = arrivals.copy()
            if batch.index.size:
                carbon_view = ctx.forecaster.window_view(estimate)
                price_view = _price_forecaster(ctx).window_view(estimate)
                if carbon_view is None or price_view is None:
                    return None

                def normalized(series: np.ndarray, batch: CandidateBatch) -> np.ndarray:
                    # Division by 1.0 is exact, so folding the scalar
                    # path's `if anchor > 1e-12` branch into a divisor of
                    # 1.0 keeps the bits identical.
                    anchor = np.abs(series[batch.offsets])
                    divisor = np.where(anchor > 1e-12, anchor, 1.0)
                    return series / batch.expand(divisor)

                blended = (
                    self.carbon_weight * normalized(carbon_view[batch.starts], batch)
                    + (1.0 - self.carbon_weight)
                    * normalized(price_view[batch.starts], batch)
                )
                tolerance = 1e-9 * np.maximum(1.0, segment_max(np.abs(blended), batch))
                within = blended <= batch.expand(segment_min(blended, batch) + tolerance)
                best = segment_first_where(within, batch)
                chosen[batch.index] = batch.starts[best]
            for slot, position in enumerate(positions):
                decisions[position] = Decision(start_time=int(chosen[slot]))
        return cast(list[Decision], decisions)
