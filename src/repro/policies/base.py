"""Policy interface shared by all GAIA scheduling policies.

A policy sees a job **only at its arrival** and returns a
:class:`Decision`: either a single start time (uninterruptible execution,
the GAIA model) or an explicit list of execution segments (suspend-resume
baselines such as Wait Awhile and Ecovisor).  The decision may also mark
the job as eligible for *work-conserving reserved pickup* (RES-First) or
as preferring *spot* capacity (Spot-First).

Knowledge discipline: policies receive the job's queue (bounding its
length and waiting time) and may use the queue's historical average
length, but must not read ``job.length`` unless the class explicitly sets
``requires_job_length = True`` (only Wait Awhile does, mirroring the
paper's Table 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.carbon.forecast import Forecaster
from repro.errors import SchedulingError
from repro.obs.events import CandidateWindow
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, JobQueue, QueueSet

__all__ = ["Decision", "SchedulingContext", "Policy", "validate_decision"]


@dataclass(frozen=True)
class Decision:
    """A policy's scheduling decision for one job.

    Attributes
    ----------
    start_time:
        Minute at which execution (first) begins; must lie within
        ``[arrival, arrival + W]`` for the job's queue.
    segments:
        Explicit ``(start, end)`` execution intervals for suspend-resume
        policies; their total duration must equal the job's true length.
        ``None`` means contiguous execution of the whole job from
        ``start_time``.
    use_spot:
        Prefer a spot instance for the initial execution.
    reserved_pickup:
        Work-conserving flag: the job may start *early* (before
        ``start_time``) whenever a reserved instance frees up.
    """

    start_time: int
    segments: tuple[tuple[int, int], ...] | None = None
    use_spot: bool = False
    reserved_pickup: bool = False


@dataclass
class SchedulingContext:
    """Everything a policy may consult when deciding.

    Attributes
    ----------
    forecaster:
        The Carbon Information Service view (perfect by default).
    queues:
        The cluster's queue configuration (bounds and averages).
    carbon_horizon:
        Last minute covered by the CI data; candidate windows are clipped
        so planned executions stay inside it.
    granularity:
        Spacing in minutes between candidate start times considered by
        window-optimizing policies.  1 is exact; the default 5 is within
        a fraction of a percent of exact at a fifth of the cost (see the
        granularity ablation benchmark).
    """

    forecaster: Forecaster
    queues: QueueSet
    carbon_horizon: int = field(default=0)
    granularity: int = 5
    #: Optional online length estimator; when set it supersedes the
    #: queues' static historical averages (see workload.estimation).
    estimator: object | None = None
    #: Optional Forecaster over an electricity-price series, consumed by
    #: the price-aware policies (paper Section 7).
    price_forecaster: Forecaster | None = None
    #: Observability sink shared with the engine (``docs/observability.md``);
    #: the no-op null tracer by default, so emission sites cost one
    #: attribute check when tracing is off.
    tracer: Tracer = NULL_TRACER

    def __post_init__(self) -> None:
        if self.carbon_horizon <= 0:
            self.carbon_horizon = self.forecaster.horizon_minutes
        if self.granularity <= 0:
            raise SchedulingError("candidate granularity must be positive")

    def queue_of(self, job: Job) -> JobQueue:
        """The queue the job was submitted to."""
        if job.queue:
            return self.queues[job.queue]
        return self.queues.queue_for_length(job.length)

    def length_estimate(self, queue: JobQueue) -> float:
        """The scheduler's current length estimate for a queue's jobs.

        Prefers the online estimator when configured, then the queue's
        static historical average, then the queue bound.
        """
        if self.estimator is not None:
            return self.estimator.estimate(queue.name)
        return queue.length_estimate()

    def candidate_starts(self, arrival: int, max_wait: int, hold: int) -> np.ndarray:
        """Candidate start minutes in ``[arrival, arrival + max_wait]``.

        ``hold`` is how long the job is expected to occupy its start
        window; candidates whose window would overrun the CI horizon are
        dropped (the job must be *plannable* within known carbon data).
        The arrival itself is always a candidate.
        """
        latest = min(arrival + max_wait, self.carbon_horizon - hold)
        if latest <= arrival:
            candidates = np.array([arrival], dtype=np.int64)
        else:
            candidates = np.arange(arrival, latest + 1, self.granularity, dtype=np.int64)
            if candidates[-1] != latest:
                candidates = np.append(candidates, latest)
        if self.tracer.enabled:
            self.tracer.emit(
                CandidateWindow(
                    time=arrival,
                    latest=max(latest, arrival),
                    num_candidates=len(candidates),
                    hold_minutes=hold,
                )
            )
        return candidates


class Policy(ABC):
    """Base class for scheduling policies.

    Class attributes mirror the paper's Table 1: whether the policy knows
    job lengths, is carbon-aware, and is performance-aware.
    """

    #: Human-readable policy name used in reports and the registry.
    name: str = "policy"
    #: True only for policies that read the job's exact length.
    requires_job_length: bool = False
    #: Whether the policy consults carbon-intensity forecasts.
    carbon_aware: bool = False
    #: Whether the policy weighs carbon savings against waiting time.
    performance_aware: bool = False
    #: Knowledge of job length: "none", "average", or "exact" (Table 1).
    length_knowledge: str = "none"
    #: True when :meth:`decide` is a pure function of the (arrival, queue,
    #: cpus, length-estimate) tuple given a fixed context — i.e. the policy
    #: keeps no per-run mutable state.  The engine memoizes decisions for
    #: stateless policies (see ``Engine`` ``memoize_decisions``).
    stateless: bool = True

    @abstractmethod
    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        """Return the scheduling decision for ``job`` at its arrival."""

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        """Batched :meth:`decide` over many jobs, or ``None`` to opt out.

        When a policy returns a list, entry ``i`` must equal
        ``decide(jobs[i], ctx)`` **bit for bit** -- the engine's fast
        path substitutes batched decisions for scalar ones and the
        simulation digest must not move.  Returning ``None`` (the
        default) makes the engine fall back to per-arrival ``decide``
        calls; implementations must also return ``None`` whenever they
        cannot guarantee exact equality (e.g. the forecaster has no
        query-time-independent :meth:`~repro.carbon.forecast.Forecaster.window_view`).

        Batched scoring bypasses ``SchedulingContext.candidate_starts``
        and therefore emits no per-job ``CandidateWindow`` trace events;
        the engine only batches when tracing is disabled.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def validate_decision(job: Job, decision: Decision, ctx: SchedulingContext) -> None:
    """Raise :class:`SchedulingError` if a decision violates the contract.

    Checks: start not before arrival; start within the queue's maximum
    waiting time; segments (if any) ordered, disjoint, starting at
    ``start_time`` and summing to the job's exact length.
    """
    queue = ctx.queue_of(job)
    if decision.start_time < job.arrival:
        raise SchedulingError(
            f"job {job.job_id}: start {decision.start_time} before arrival {job.arrival}"
        )
    # +granularity of one hour of tolerance: a clipped window may push the
    # start to the last feasible slot boundary just past W.
    if decision.start_time > job.arrival + queue.max_wait + MINUTES_PER_HOUR:
        raise SchedulingError(
            f"job {job.job_id}: start {decision.start_time} exceeds waiting bound "
            f"{job.arrival + queue.max_wait}"
        )
    if decision.segments is None:
        return
    segments = decision.segments
    if not segments:
        raise SchedulingError(f"job {job.job_id}: empty segment plan")
    if segments[0][0] != decision.start_time:
        raise SchedulingError(
            f"job {job.job_id}: first segment starts at {segments[0][0]}, "
            f"not at start_time {decision.start_time}"
        )
    total = 0
    previous_end = None
    for start, end in segments:
        if end <= start:
            raise SchedulingError(f"job {job.job_id}: empty segment ({start}, {end})")
        if previous_end is not None and start < previous_end:
            raise SchedulingError(f"job {job.job_id}: overlapping segments")
        total += end - start
        previous_end = end
    if total != job.length:
        raise SchedulingError(
            f"job {job.job_id}: segments cover {total} minutes, "
            f"job length is {job.length}"
        )
