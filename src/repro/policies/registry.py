"""Policy registry and the paper's Table 1.

``make_policy`` builds any policy (including wrapped variants) from a
spec string such as ``"carbon-time"``, ``"res-first:carbon-time"`` or
``"spot-res:lowest-window"``, which the experiment layer and examples use
for configuration.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigError
from repro.policies.base import Policy
from repro.policies.carbon_agnostic import AllWaitThreshold, NoWait
from repro.policies.carbon_time import CarbonTime
from repro.policies.ecovisor import Ecovisor
from repro.policies.lowest_slot import LowestSlot
from repro.policies.lowest_window import LowestWindow
from repro.policies.price_aware import PriceAware, WeightedCarbonPrice
from repro.policies.suspend_resume import GaiaSuspendResume
from repro.policies.wait_awhile import WaitAwhile
from repro.policies.wrappers import ResFirst, SpotFirst, SpotRes

__all__ = ["TIMING_POLICIES", "WRAPPERS", "make_policy", "policy_table"]

#: Factories for the timing policies of the paper's Table 1.
TIMING_POLICIES: dict[str, Callable[[], Policy]] = {
    "nowait": NoWait,
    "allwait-threshold": AllWaitThreshold,
    "wait-awhile": WaitAwhile,
    "ecovisor": Ecovisor,
    "lowest-slot": LowestSlot,
    "lowest-window": LowestWindow,
    "carbon-time": CarbonTime,
    # Extension beyond the paper: suspend-resume with queue-average
    # knowledge only (the paper's Section 4.1 future work).
    "gaia-sr": GaiaSuspendResume,
    # Electricity-price-aware policies (paper Section 7 / Fig. 20); they
    # need a ctx.price_forecaster at decision time (pass price_trace to
    # run_simulation).
    "price-aware": PriceAware,
    "carbon-price": WeightedCarbonPrice,
}

#: Purchase-option wrappers (Section 4.2.3-4.2.4).
WRAPPERS: dict[str, Callable[[Policy], Policy]] = {
    "res-first": ResFirst,
    "spot-first": SpotFirst,
    "spot-res": SpotRes,
}


def make_policy(spec: str, **wrapper_kwargs) -> Policy:
    """Build a policy from a spec like ``"res-first:carbon-time"``.

    The spec is ``[wrapper:]timing``; wrapper kwargs (e.g.
    ``spot_max_length``) are forwarded to the wrapper constructor.
    """
    spec = spec.strip().lower()
    if ":" in spec:
        wrapper_name, _, timing_name = spec.partition(":")
        wrapper = WRAPPERS.get(wrapper_name)
        if wrapper is None:
            raise ConfigError(
                f"unknown wrapper {wrapper_name!r}; known: {sorted(WRAPPERS)}"
            )
    else:
        wrapper, timing_name = None, spec
    factory = TIMING_POLICIES.get(timing_name)
    if factory is None:
        raise ConfigError(
            f"unknown policy {timing_name!r}; known: {sorted(TIMING_POLICIES)}"
        )
    policy = factory()
    if wrapper is None:
        if wrapper_kwargs:
            raise ConfigError("wrapper kwargs given without a wrapper")
        return policy
    return wrapper(policy, **wrapper_kwargs)


def policy_table() -> list[dict[str, str]]:
    """Rows of the paper's Table 1 (policy capability summary)."""
    rows = []
    for name in (
        "nowait",
        "allwait-threshold",
        "wait-awhile",
        "ecovisor",
        "lowest-slot",
        "lowest-window",
        "carbon-time",
    ):
        policy = TIMING_POLICIES[name]()
        rows.append(
            {
                "policy": policy.name,
                "job_length": {
                    "none": "-",
                    "average": "J_avg",
                    "exact": "Yes",
                }[policy.length_knowledge],
                "carbon_aware": "Yes" if policy.carbon_aware else "-",
                "performance_aware": "Yes" if policy.performance_aware else "-",
            }
        )
    return rows
