"""GAIA suspend-resume extension (the paper's Section 4.1 future work).

GAIA's released policies are uninterruptible: "Adding suspend-resume
capability to the scheduler is part of future work.  Such a capability
can further increase carbon savings ... albeit at the expense of
increasing completion times."  This module implements that extension
while keeping GAIA's knowledge model: the scheduler still knows only the
**queue-wide average length** Ĵ, never the job's true length.

:class:`GaiaSuspendResume` plans like Wait Awhile but against Ĵ: it
selects the cheapest-carbon hourly slots summing to Ĵ within the
deadline ``t + Ĵ + W`` and runs the job in them.  Because the true
length J may differ from Ĵ, the plan is *materialized* by walking time:

* run during selected slots, pause outside them;
* if the job finishes before the plan is exhausted (J < Ĵ), stop early;
* if the plan is exhausted and the job is unfinished (J > Ĵ), keep
  running contiguously to completion (no further pausing -- the waiting
  budget was provisioned for Ĵ).

Total pausing is bounded by W by construction, so the decision always
validates against the queue contract.  The true length is used only as
the walk's stopping condition, exactly as a real suspend-resume executor
would discover it at runtime.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.policies.wait_awhile import merge_segments
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job

__all__ = ["GaiaSuspendResume"]


class GaiaSuspendResume(Policy):
    """Suspend-resume in the cheapest slots, knowing only queue averages."""

    name = "GAIA-SR"
    carbon_aware = True
    performance_aware = False
    length_knowledge = "average"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        arrival = job.arrival
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        deadline = min(arrival + estimate + queue.max_wait, ctx.carbon_horizon)

        run_windows = self._planned_windows(ctx, arrival, estimate, deadline)
        segments = self._materialize(run_windows, arrival, job.length, deadline)
        plan = merge_segments(segments)
        return Decision(start_time=plan[0][0], segments=plan)

    # ------------------------------------------------------------------
    def _planned_windows(
        self, ctx: SchedulingContext, arrival: int, estimate: int, deadline: int
    ) -> list[tuple[int, int]]:
        """Cheapest slot windows summing to ``estimate`` before ``deadline``.

        Mirrors Wait Awhile's greedy selection, but sized by the queue
        average rather than the true length.
        """
        if deadline - arrival <= estimate:
            return [(arrival, deadline)]

        first_hour = arrival // MINUTES_PER_HOUR
        last_hour = -(-deadline // MINUTES_PER_HOUR)
        values = ctx.forecaster.slot_values(arrival, arrival, last_hour - first_hour)
        slot_ids = np.arange(first_hour, first_hour + values.size)
        avail_start = np.maximum(arrival, slot_ids * MINUTES_PER_HOUR)
        avail_end = np.minimum(deadline, (slot_ids + 1) * MINUTES_PER_HOUR)
        durations = avail_end - avail_start

        order = np.lexsort((slot_ids, values))
        chosen: dict[int, int] = {}
        remaining = estimate
        for index in order:
            index = int(index)
            if durations[index] <= 0:
                continue
            take = int(min(durations[index], remaining))
            chosen[index] = take
            remaining -= take
            if remaining == 0:
                break

        windows = []
        for index, take in chosen.items():
            if take == durations[index]:
                windows.append((int(avail_start[index]), int(avail_end[index])))
            elif index + 1 in chosen:
                windows.append((int(avail_end[index]) - take, int(avail_end[index])))
            else:
                windows.append((int(avail_start[index]), int(avail_start[index]) + take))
        windows.sort()
        return windows

    @staticmethod
    def _materialize(
        run_windows: list[tuple[int, int]], arrival: int, length: int, deadline: int
    ) -> list[tuple[int, int]]:
        """Walk the planned windows against the job's actual length."""
        segments: list[tuple[int, int]] = []
        remaining = length
        for start, end in run_windows:
            if remaining <= 0:
                break
            run = min(end - start, remaining)
            segments.append((start, start + run))
            remaining -= run
        if remaining > 0:
            # Plan exhausted (J > Ĵ): keep running from the last planned
            # minute (or the arrival if no window was planned).
            resume_at = segments[-1][1] if segments else arrival
            segments.append((resume_at, resume_at + remaining))
        return segments
