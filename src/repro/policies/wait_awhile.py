"""Wait Awhile baseline (Wiesner et al., Middleware '21; paper Table 1).

The strongest carbon-aware baseline: it knows each job's **exact** length
``J`` and may **suspend and resume** execution.  Within the deadline
``t + J + W`` it executes the job in the hourly slots with the lowest
carbon intensity whose durations sum to ``J``.

Slot selection is greedy by forecast CI (ties to the earlier slot); the
single marginally-used slot is aligned against an adjacent chosen slot
when possible so the plan stays as contiguous as the optimum allows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.policies.base import Decision, Policy, SchedulingContext
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job

__all__ = ["WaitAwhile", "merge_segments"]


def merge_segments(segments: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Sort segments and merge the ones that touch."""
    if not segments:
        raise SchedulingError("cannot merge an empty segment list")
    ordered = sorted(segments)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start < last_end:
            raise SchedulingError("overlapping segments in plan")
        if start == last_end:
            merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return tuple(merged)


class WaitAwhile(Policy):
    """Suspend-resume execution in the lowest-carbon slots before J + W."""

    name = "Wait Awhile"
    requires_job_length = True
    carbon_aware = True
    performance_aware = False
    length_knowledge = "exact"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        arrival = job.arrival
        length = job.length  # exact-length knowledge is this policy's premise
        deadline = min(arrival + length + queue.max_wait, ctx.carbon_horizon)
        if deadline - arrival <= length:
            # No slack (or clipped at the horizon): run contiguously now.
            return Decision(
                start_time=arrival, segments=((arrival, arrival + length),)
            )

        first_hour = arrival // MINUTES_PER_HOUR
        last_hour = -(-deadline // MINUTES_PER_HOUR)
        values = ctx.forecaster.slot_values(arrival, arrival, last_hour - first_hour)

        # Available execution window of each hourly slot, clipped to
        # [arrival, deadline).
        slot_ids = np.arange(first_hour, first_hour + values.size)
        avail_start = np.maximum(arrival, slot_ids * MINUTES_PER_HOUR)
        avail_end = np.minimum(deadline, (slot_ids + 1) * MINUTES_PER_HOUR)
        durations = avail_end - avail_start

        order = np.lexsort((slot_ids, values))  # by CI, ties to earlier slot
        chosen: dict[int, int] = {}  # local slot index -> minutes taken
        remaining = length
        for index in order:
            index = int(index)
            if durations[index] <= 0:
                continue
            take = int(min(durations[index], remaining))
            chosen[index] = take
            remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            raise SchedulingError(
                f"job {job.job_id}: deadline window cannot fit length {length}"
            )

        segments = []
        for index, take in chosen.items():
            if take == durations[index]:
                segments.append((int(avail_start[index]), int(avail_end[index])))
            else:
                # The single partial slot: butt it against a chosen
                # neighbour to minimize fragmentation.
                if index + 1 in chosen:
                    segments.append((int(avail_end[index]) - take, int(avail_end[index])))
                else:
                    segments.append((int(avail_start[index]), int(avail_start[index]) + take))
        plan = merge_segments(segments)
        return Decision(start_time=plan[0][0], segments=plan)
