"""Carbon-agnostic baseline policies (paper Table 1, citing Ambati et al.).

* **NoWait** runs every job the moment it arrives -- the carbon- and
  cost-agnostic baseline all normalized results are measured against.
* **AllWait-Threshold** is the cost-aware baseline: a job waits for a
  reserved instance to free up, falling back to on-demand only once its
  queue's maximum waiting time expires.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.workload.job import Job

__all__ = ["NoWait", "AllWaitThreshold"]


class NoWait(Policy):
    """Run jobs as they arrive (FCFS onto reserved-if-free, else on-demand)."""

    name = "NoWait"
    carbon_aware = False
    performance_aware = False
    length_knowledge = "none"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        return Decision(start_time=job.arrival)

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        return [Decision(start_time=job.arrival) for job in jobs]


class AllWaitThreshold(Policy):
    """Wait for reserved capacity up to the queue's W, then go on-demand.

    Implemented via the engine's work-conserving reserved pickup: the job
    is queued with a fallback start at ``arrival + W``; any reserved
    instance freeing up earlier starts it immediately.
    """

    name = "AllWait-Threshold"
    carbon_aware = False
    performance_aware = False
    length_knowledge = "none"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        start = job.arrival + queue.max_wait
        # Never plan past the end of carbon data (clip by the queue bound,
        # the only length knowledge this policy has).
        start = min(start, max(job.arrival, ctx.carbon_horizon - queue.max_length))
        start = max(start, job.arrival)
        return Decision(start_time=start, reserved_pickup=True)
