"""Lowest Carbon Window policy (paper Section 4.2.1).

Choose the start time ``t_start`` in ``[t, t + W)`` minimizing the job's
total forecast carbon over ``[t_start, t_start + J]``.  The true length
``J`` is unknown, so the queue-wide historical average Ĵ stands in for
it -- the paper's key "coarse length knowledge" assumption.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.workload.job import Job

__all__ = ["LowestWindow"]


class LowestWindow(Policy):
    """Start where the estimated-length carbon integral is smallest."""

    name = "Lowest-Window"
    carbon_aware = True
    performance_aware = False
    length_knowledge = "average"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        candidates = ctx.candidate_starts(job.arrival, queue.max_wait, estimate)
        if candidates.size == 1:
            return Decision(start_time=int(candidates[0]))
        footprints = ctx.forecaster.window_carbon_many(job.arrival, candidates, estimate)
        # Break near-ties toward the earliest start: the prefix-sum
        # integration carries float noise, and a carbon-equal later start
        # only costs waiting time.
        tolerance = 1e-9 * max(1.0, float(np.max(footprints)))
        best = int(np.flatnonzero(footprints <= footprints.min() + tolerance)[0])
        return Decision(start_time=int(candidates[best]))
