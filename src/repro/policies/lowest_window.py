"""Lowest Carbon Window policy (paper Section 4.2.1).

Choose the start time ``t_start`` in ``[t, t + W)`` minimizing the job's
total forecast carbon over ``[t_start, t_start + J]``.  The true length
``J`` is unknown, so the queue-wide historical average Ĵ stands in for
it -- the paper's key "coarse length knowledge" assumption.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import cast

import numpy as np

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.policies.scoring import (
    candidate_batch,
    group_jobs_by_queue,
    segment_first_where,
    segment_max,
    segment_min,
)
from repro.workload.job import Job

__all__ = ["LowestWindow"]


class LowestWindow(Policy):
    """Start where the estimated-length carbon integral is smallest."""

    name = "Lowest-Window"
    carbon_aware = True
    performance_aware = False
    length_knowledge = "average"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        estimate = max(1, int(round(ctx.length_estimate(queue))))
        candidates = ctx.candidate_starts(job.arrival, queue.max_wait, estimate)
        if candidates.size == 1:
            return Decision(start_time=int(candidates[0]))
        footprints = ctx.forecaster.window_carbon_many(job.arrival, candidates, estimate)
        # Break near-ties toward the earliest start: the prefix-sum
        # integration carries float noise, and a carbon-equal later start
        # only costs waiting time.
        tolerance = 1e-9 * max(1.0, float(np.max(footprints)))
        best = int(np.flatnonzero(footprints <= footprints.min() + tolerance)[0])
        return Decision(start_time=int(candidates[best]))

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        if ctx.estimator is not None:
            # Online estimates can drift between queries; batching would
            # freeze them at precompute time.
            return None
        decisions: list[Decision | None] = [None] * len(jobs)
        for queue, positions in group_jobs_by_queue(jobs, ctx):
            estimate = max(1, int(round(ctx.length_estimate(queue))))
            arrivals = np.fromiter(
                (jobs[i].arrival for i in positions), np.int64, count=len(positions)
            )
            batch = candidate_batch(
                arrivals, queue.max_wait, estimate, ctx.carbon_horizon, ctx.granularity
            )
            chosen = arrivals.copy()
            if batch.index.size:
                view = ctx.forecaster.window_view(estimate)
                if view is None:
                    return None
                footprints = view[batch.starts]
                tolerance = 1e-9 * np.maximum(1.0, segment_max(footprints, batch))
                within = footprints <= batch.expand(
                    segment_min(footprints, batch) + tolerance
                )
                best = segment_first_where(within, batch)
                chosen[batch.index] = batch.starts[best]
            for slot, position in enumerate(positions):
                decisions[position] = Decision(start_time=int(chosen[slot]))
        return cast(list[Decision], decisions)
