"""GAIA scheduling policies (the paper's core contribution)."""

from __future__ import annotations

from repro.policies.base import Decision, Policy, SchedulingContext, validate_decision
from repro.policies.carbon_agnostic import AllWaitThreshold, NoWait
from repro.policies.carbon_time import CarbonTime
from repro.policies.ecovisor import Ecovisor
from repro.policies.lowest_slot import LowestSlot
from repro.policies.lowest_window import LowestWindow
from repro.policies.price_aware import PriceAware, WeightedCarbonPrice
from repro.policies.registry import TIMING_POLICIES, WRAPPERS, make_policy, policy_table
from repro.policies.suspend_resume import GaiaSuspendResume
from repro.policies.wait_awhile import WaitAwhile, merge_segments
from repro.policies.wrappers import ResFirst, SpotFirst, SpotRes

__all__ = [
    "Policy",
    "Decision",
    "SchedulingContext",
    "validate_decision",
    "NoWait",
    "AllWaitThreshold",
    "WaitAwhile",
    "Ecovisor",
    "LowestSlot",
    "LowestWindow",
    "CarbonTime",
    "GaiaSuspendResume",
    "PriceAware",
    "WeightedCarbonPrice",
    "ResFirst",
    "SpotFirst",
    "SpotRes",
    "make_policy",
    "policy_table",
    "TIMING_POLICIES",
    "WRAPPERS",
    "merge_segments",
]
