"""Batched candidate-window scoring for the engine's decision fast path.

The window-optimizing policies (Lowest-Window, Carbon-Time, the
price-aware pair) all evaluate the same shape of search: for each job,
an arithmetic grid of candidate start minutes inside the waiting window,
scored by a window integral over the carbon (or price) prefix sum.  The
scalar path runs that search once per ``decide()`` call; this module
runs it once per *job batch*, over one flat ragged array of candidates,
so a whole workload's decisions cost a handful of numpy passes instead
of tens of thousands of small allocations.

Bit-exactness contract: every helper reproduces the scalar search's
float operations element for element.  Candidate grids match
:meth:`~repro.policies.base.SchedulingContext.candidate_starts`, scores
gather from :meth:`~repro.carbon.trace.HourlySeries.window_sums` (the
same ``cum[s + d] - cum[s]`` as ``integrate_many``), and per-job
min/max/first-index reductions are exact regardless of evaluation
order, so batched and scalar decisions agree bit for bit --
``tests/simulator/test_fast_path.py`` holds this with a hypothesis
property.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.policies.base import SchedulingContext
from repro.workload.job import Job, JobQueue

__all__ = [
    "CandidateBatch",
    "candidate_batch",
    "group_jobs_by_queue",
    "segment_min",
    "segment_max",
    "segment_first_where",
]

#: Sentinel for "no candidate selected yet" in first-index reductions.
_NO_INDEX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class CandidateBatch:
    """The flattened candidate grids of one job group.

    Jobs whose window collapses to the arrival alone (``latest <=
    arrival``, the scalar path's size-1 case) are split out via
    ``single``; the remaining jobs' candidates are concatenated into
    ``starts`` with per-job ``offsets``/``counts`` bookkeeping.
    """

    #: Boolean mask over the group: True where the arrival is the only
    #: candidate and the decision is ``Decision(arrival)``.
    single: np.ndarray
    #: Indices (into the group) of the jobs with a real candidate grid.
    index: np.ndarray
    #: Arrival minutes of the ``index`` jobs.
    arrivals: np.ndarray
    #: Flat candidate start minutes of all ``index`` jobs, job-major.
    starts: np.ndarray
    #: Start position of each job's slice inside ``starts``.
    offsets: np.ndarray
    #: Candidates per job; ``starts[offsets[j]:offsets[j] + counts[j]]``.
    counts: np.ndarray
    #: Flat job index per candidate (``np.repeat(arange(n), counts)``),
    #: computed once so every broadcast is a gather, not a fresh repeat.
    positions: np.ndarray

    def expand(self, per_job: np.ndarray) -> np.ndarray:
        """Broadcast one value per job across its candidate slice.

        A gather through the precomputed ``positions`` -- value-identical
        to ``np.repeat(per_job, self.counts)`` (same elements, no float
        arithmetic) at a fraction of the cost per call.
        """
        return per_job[self.positions]

    @property
    def first_positions(self) -> np.ndarray:
        """Flat positions of each job's first candidate (its arrival)."""
        return self.offsets


def candidate_batch(
    arrivals: np.ndarray,
    max_wait: int,
    hold: int,
    horizon: int,
    granularity: int,
) -> CandidateBatch:
    """Build every job's candidate grid in one pass.

    Replicates ``SchedulingContext.candidate_starts`` exactly: candidates
    are ``arange(arrival, latest + 1, granularity)`` with ``latest``
    appended when the grid does not land on it, where ``latest =
    min(arrival + max_wait, horizon - hold)``; jobs with ``latest <=
    arrival`` keep the arrival as their only candidate (``single``).
    """
    arrivals = np.asarray(arrivals, dtype=np.int64)
    latest = np.minimum(arrivals + max_wait, horizon - hold)
    single = latest <= arrivals
    index = np.flatnonzero(~single)
    grid_arrivals = arrivals[index]
    grid_latest = latest[index]
    steps = (grid_latest - grid_arrivals) // granularity
    on_grid_last = grid_arrivals + steps * granularity
    extra = on_grid_last != grid_latest
    counts = steps + 1 + extra
    offsets = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    total = int(counts.sum()) if counts.size else 0
    positions = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    intra = np.arange(total, dtype=np.int64) - offsets[positions]
    starts = grid_arrivals[positions] + intra * granularity
    # The appended off-grid last candidate, where one exists.
    last_positions = offsets + counts - 1
    starts[last_positions[extra]] = grid_latest[extra]
    return CandidateBatch(
        single=single,
        index=index,
        arrivals=grid_arrivals,
        starts=starts,
        offsets=offsets,
        counts=counts,
        positions=positions,
    )


def segment_min(values: np.ndarray, batch: CandidateBatch) -> np.ndarray:
    """Per-job minimum over the flat candidate scores (exact)."""
    return np.minimum.reduceat(values, batch.offsets)


def segment_max(values: np.ndarray, batch: CandidateBatch) -> np.ndarray:
    """Per-job maximum over the flat candidate scores (exact)."""
    return np.maximum.reduceat(values, batch.offsets)


def segment_first_where(mask: np.ndarray, batch: CandidateBatch) -> np.ndarray:
    """Flat position of each job's first True candidate.

    Mirrors the scalar ``np.flatnonzero(condition)[0]`` selection; every
    job must have at least one True (the scalar paths guarantee it --
    the minimizing candidate always satisfies its own tolerance band).
    """
    intra = np.arange(mask.size, dtype=np.int64) - batch.offsets[batch.positions]
    candidates = np.where(mask, intra, _NO_INDEX)
    first = np.minimum.reduceat(candidates, batch.offsets)
    return batch.offsets + first


def group_jobs_by_queue(
    jobs: Sequence[Job], ctx: SchedulingContext
) -> list[tuple[JobQueue, list[int]]]:
    """Group job positions by their resolved queue, first-seen order.

    Queue resolution matches ``SchedulingContext.queue_of``; grouping is
    what lets a batch share one (estimate, max-wait) candidate geometry
    and one window-sums view per queue.
    """
    groups: dict[str, tuple[JobQueue, list[int]]] = {}
    for position, job in enumerate(jobs):
        queue = ctx.queue_of(job)
        entry = groups.get(queue.name)
        if entry is None:
            groups[queue.name] = (queue, [position])
        else:
            entry[1].append(position)
    return list(groups.values())
