"""Cost-aware meta-policies (paper Sections 4.2.3-4.2.4).

These wrap a *timing* policy (typically Carbon-Time or Lowest-Window) and
add purchase-option awareness:

* **RES-First** -- work-conserving use of pre-paid reserved capacity: run
  immediately if a reserved instance is idle; otherwise wait for the
  inner policy's carbon-aware start, grabbing any reserved instance that
  frees up in the meantime, and fall back to on-demand at the planned
  start.
* **Spot-First** -- run short jobs on discounted spot capacity at the
  inner policy's carbon-aware start; evicted jobs lose their progress and
  restart on on-demand.
* **Spot-RES** -- the combined policy: short jobs follow Spot-First, long
  jobs follow RES-First.

The wrappers only *mark* decisions (``reserved_pickup`` / ``use_spot``);
the simulator's resource manager enforces the semantics, because reserved
availability is runtime state no arrival-time decision can know.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import SchedulingError
from repro.policies.base import Decision, Policy, SchedulingContext
from repro.units import hours
from repro.workload.job import Job

__all__ = ["ResFirst", "SpotFirst", "SpotRes"]


class _Wrapper(Policy):
    """Shared plumbing for meta-policies around a timing policy.

    Subclasses implement :meth:`_wrap`, the pure per-job rewrapping of
    the inner decision; ``decide`` and ``decide_many`` both route through
    it so the scalar and batched paths cannot drift apart.
    """

    def __init__(self, inner: Policy):
        if inner is None:
            raise SchedulingError("wrapper needs an inner timing policy")
        self.inner = inner
        self.carbon_aware = inner.carbon_aware
        self.performance_aware = inner.performance_aware
        self.requires_job_length = inner.requires_job_length
        self.length_knowledge = inner.length_knowledge
        self.stateless = inner.stateless

    def _inner_decision(self, job: Job, ctx: SchedulingContext) -> Decision:
        return self.inner.decide(job, ctx)

    def _wrap(self, job: Job, decision: Decision, ctx: SchedulingContext) -> Decision:
        raise NotImplementedError  # pragma: no cover - subclasses override

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        return self._wrap(job, self._inner_decision(job, ctx), ctx)

    def decide_many(
        self, jobs: Sequence[Job], ctx: SchedulingContext
    ) -> list[Decision] | None:
        inner = self.inner.decide_many(jobs, ctx)
        if inner is None:
            return None
        return [
            self._wrap(job, decision, ctx)
            for job, decision in zip(jobs, inner, strict=True)
        ]


class ResFirst(_Wrapper):
    """Work-conserving reserved-first scheduling around a timing policy."""

    def __init__(self, inner: Policy):
        super().__init__(inner)
        self.name = f"RES-First-{inner.name}"

    def _wrap(self, job: Job, decision: Decision, ctx: SchedulingContext) -> Decision:
        if decision.segments is not None and len(decision.segments) > 1:
            raise SchedulingError(
                f"{self.name} wraps uninterruptible timing policies only; "
                f"{self.inner.name} produced a multi-segment plan"
            )
        return Decision(
            start_time=decision.start_time,
            segments=None,
            use_spot=False,
            reserved_pickup=True,
        )


class SpotFirst(_Wrapper):
    """Run short jobs on spot capacity at the carbon-aware start time.

    ``spot_max_length`` is the largest *queue bound* routed to spot (the
    paper's J^max, default 2 h: the short queue).  Longer jobs follow the
    inner policy on on-demand.
    """

    def __init__(self, inner: Policy, spot_max_length: int | None = None):
        super().__init__(inner)
        self.spot_max_length = spot_max_length if spot_max_length is not None else hours(2)
        if self.spot_max_length <= 0:
            raise SchedulingError("spot_max_length must be positive")
        self.name = f"Spot-First-{inner.name}"

    def _eligible(self, job: Job, ctx: SchedulingContext) -> bool:
        return ctx.queue_of(job).max_length <= self.spot_max_length

    def _wrap(self, job: Job, decision: Decision, ctx: SchedulingContext) -> Decision:
        if not self._eligible(job, ctx):
            return decision
        # Suspend-resume inner plans are preserved: each segment runs on
        # spot (paper's Spot-First-Ecovisor configuration).
        return Decision(
            start_time=decision.start_time,
            segments=decision.segments,
            use_spot=True,
            reserved_pickup=False,
        )


class SpotRes(SpotFirst):
    """Short jobs on spot, long jobs work-conserving on reserved."""

    def __init__(self, inner: Policy, spot_max_length: int | None = None):
        super().__init__(inner, spot_max_length=spot_max_length)
        self.name = f"Spot-RES-{inner.name}"

    def _wrap(self, job: Job, decision: Decision, ctx: SchedulingContext) -> Decision:
        if self._eligible(job, ctx):
            return Decision(
                start_time=decision.start_time,
                segments=decision.segments,
                use_spot=True,
                reserved_pickup=False,
            )
        if decision.segments is not None and len(decision.segments) > 1:
            raise SchedulingError(
                f"{self.name}: long jobs follow RES-First, which wraps "
                f"uninterruptible timing policies only"
            )
        return Decision(
            start_time=decision.start_time, use_spot=False, reserved_pickup=True
        )
