"""Lowest Carbon Slot policy (paper Section 4.2.1).

Examine the CI forecast over the waiting window ``[t, t + W)`` and begin
execution at the hour slot with the lowest carbon intensity.  Needs no
job-length knowledge at all -- the cheapest slot is cheapest regardless of
how long the job runs from there (though not necessarily optimal for the
job's full footprint, which is Lowest-Window's refinement).
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Decision, Policy, SchedulingContext
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job

__all__ = ["LowestSlot"]


class LowestSlot(Policy):
    """Start at the lowest-CI hourly slot within the waiting window."""

    name = "Lowest-Slot"
    carbon_aware = True
    performance_aware = False
    length_knowledge = "none"

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        queue = ctx.queue_of(job)
        arrival = job.arrival
        window_end = min(arrival + queue.max_wait, ctx.carbon_horizon - queue.max_length)
        if window_end <= arrival:
            return Decision(start_time=arrival)

        first_hour = arrival // MINUTES_PER_HOUR
        num_hours = -(-window_end // MINUTES_PER_HOUR) - first_hour
        values = ctx.forecaster.slot_values(arrival, arrival, num_hours)

        best_index = int(np.argmin(values))  # argmin ties break earliest
        slot_start = (first_hour + best_index) * MINUTES_PER_HOUR
        start = min(max(arrival, slot_start), window_end)
        return Decision(start_time=start)
