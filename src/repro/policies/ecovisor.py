"""Ecovisor baseline (Souza et al., ASPLOS '23; paper Table 1).

A *reactive* suspend-resume policy that needs no job-length knowledge:
at job arrival it fixes a threshold at the 30th percentile of the carbon
intensity over the next 24 hours, then executes whenever the current CI
is at or below the threshold and pauses otherwise.  Once the job has
waited its queue's maximum waiting time ``W`` in total, it runs to
completion unconditionally (the paper's compliance rule).

The engine executes plans, so the reactive walk is materialized into
segments at arrival; the walk consults only the "current" CI at each
step and uses the true length solely as its stopping condition, which is
behaviourally identical to reacting online.
"""

from __future__ import annotations

from repro.carbon.stats import percentile_threshold
from repro.policies.base import Decision, Policy, SchedulingContext
from repro.policies.wait_awhile import merge_segments
from repro.units import HOURS_PER_DAY, MINUTES_PER_HOUR
from repro.workload.job import Job

__all__ = ["Ecovisor"]


class Ecovisor(Policy):
    """Greedy threshold suspend-resume: run below the 30th CI percentile."""

    name = "Ecovisor"
    carbon_aware = True
    performance_aware = False
    length_knowledge = "none"

    def __init__(self, threshold_percentile: float = 30.0, lookahead_hours: int = HOURS_PER_DAY):
        self.threshold_percentile = threshold_percentile
        self.lookahead_hours = lookahead_hours

    def decide(self, job: Job, ctx: SchedulingContext) -> Decision:
        arrival = job.arrival
        remaining = job.length
        queue = ctx.queue_of(job)
        wait_budget = queue.max_wait

        horizon_hours = min(
            self.lookahead_hours,
            ctx.forecaster.trace.num_hours - arrival // MINUTES_PER_HOUR,
        )
        window = ctx.forecaster.slot_values(arrival, arrival, horizon_hours)
        threshold = percentile_threshold(window, self.threshold_percentile)

        segments: list[tuple[int, int]] = []
        cursor = arrival
        waited = 0
        while remaining > 0:
            if waited >= wait_budget or cursor + remaining >= ctx.carbon_horizon:
                # Waiting budget exhausted (or out of carbon data): the
                # job now runs to completion unconditionally.
                segments.append((cursor, cursor + remaining))
                break
            slot_end = (cursor // MINUTES_PER_HOUR + 1) * MINUTES_PER_HOUR
            current_ci = float(ctx.forecaster.slot_values(cursor, cursor, 1)[0])
            if current_ci <= threshold:
                run = min(slot_end - cursor, remaining)
                segments.append((cursor, cursor + run))
                cursor += run
                remaining -= run
            else:
                pause = min(slot_end - cursor, wait_budget - waited)
                waited += pause
                cursor += pause
        plan = merge_segments(segments)
        return Decision(start_time=plan[0][0], segments=plan)
