"""Merged-accounting validation for federated results.

Each region's engine already runs the single-cluster invariant checks of
:func:`repro.simulator.validation.verify_result` on its own schedule;
what was previously unchecked is the *merge*: a routing bug could count
a job twice, drop a region's accounting, or report placements that do
not match the executed schedules, and every per-region check would still
pass.  :func:`verify_federated_result` closes that gap.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.federation.simulation import FederatedResult

__all__ = ["verify_federated_result", "assert_valid_federated"]


def verify_federated_result(
    result: "FederatedResult", tolerance: float = 1e-6
) -> list[str]:
    """Every merged-accounting violation in ``result`` (empty when valid).

    Checks, on top of the per-region engine validation:

    * federation totals (carbon, cost, jobs) equal the sum over regions;
    * totals are finite and non-negative;
    * the placement map covers exactly the executed jobs -- each
      non-empty region's placement count equals its record count, empty
      placements name no result, and placements sum to the job total;
    * the migrated count is sane (non-negative, at most the off-home
      placements).
    """
    problems: list[str] = []
    region_carbon = sum(r.total_carbon_kg for r in result.per_region.values())
    region_cost = sum(r.total_cost for r in result.per_region.values())
    region_jobs = sum(len(r.records) for r in result.per_region.values())
    for label, total, summed in (
        ("carbon", result.total_carbon_kg, region_carbon),
        ("cost", result.total_cost, region_cost),
    ):
        if not math.isfinite(total) or total < 0:
            problems.append(f"federation {label} total {total!r} is not a "
                            "finite non-negative number")
        elif abs(total - summed) > tolerance:
            problems.append(
                f"federation {label} total {total:.9g} != region sum {summed:.9g}"
            )
    if result.total_jobs != region_jobs:
        problems.append(
            f"federation job total {result.total_jobs} != region sum {region_jobs}"
        )

    for name, count in result.placements.items():
        if count < 0:
            problems.append(f"region {name}: negative placement count {count}")
        executed = result.per_region.get(name)
        if count > 0 and executed is None:
            problems.append(f"region {name}: {count} placements but no result")
        if executed is not None and count != len(executed.records):
            problems.append(
                f"region {name}: {count} placements != "
                f"{len(executed.records)} executed records"
            )
    for name in result.per_region:
        if name not in result.placements:
            problems.append(f"region {name}: result present but unplaced")
    placed = sum(result.placements.values())
    if placed != result.total_jobs:
        problems.append(
            f"placements sum {placed} != federation job total {result.total_jobs}"
        )

    off_home = sum(
        count for name, count in result.placements.items() if name != result.home
    )
    if result.migrated_jobs < 0:
        problems.append(f"negative migrated count {result.migrated_jobs}")
    elif result.migrated_jobs != off_home:
        problems.append(
            f"migrated count {result.migrated_jobs} != off-home placements {off_home}"
        )
    return problems


def assert_valid_federated(result: "FederatedResult", tolerance: float = 1e-6) -> None:
    """Raise :class:`SimulationError` on any merged-accounting violation."""
    problems = verify_federated_result(result, tolerance=tolerance)
    if problems:
        raise SimulationError(
            "federated result failed validation:\n  - " + "\n  - ".join(problems)
        )
