"""Federated (multi-region) simulation.

Runs one GAIA cluster per region: a :class:`RegionSelector` routes each
job at arrival, then every region executes its share with its own engine
(reserved pool, CI trace, temporal policy).  Jobs placed outside their
home region optionally pay a migration delay (data transfer before the
job is schedulable), which shifts their effective arrival.

The runner participates in the fault-injection stack exactly like
:func:`repro.simulator.simulation.run_simulation`: process faults fire
first, input faults corrupt every region's carbon trace before
preparation, forecast faults wrap each region's forecaster (shared
between the selector and that region's engine, so both see the same
perturbed view), eviction storms wrap the spot model, and queue
corruption arms each engine's injector.  The federated-only
``migration-drop`` fault makes the runner ignore the requested migration
delay -- the divergence the difftest oracle must catch.

When every job lands in one region unshifted, that region's engine runs
the *original* workload object, so a single-region federation is
bit-identical (digest and all) to the plain ``Engine.run`` path -- a
registered metamorphic invariant (``federation-single-region``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel
from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    apply_input_faults,
    apply_process_faults,
    engine_injector,
    wrap_eviction,
    wrap_forecaster,
)
from repro.federation.selectors import RegionSelector
from repro.obs.events import FederationCompleted, FederationRouted
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, tracer_from_env
from repro.policies.base import Policy, SchedulingContext
from repro.policies.registry import make_policy
from repro.simulator.engine import Engine
from repro.simulator.results import SimulationResult
from repro.simulator.simulation import prepare_carbon
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, QueueSet, default_queue_set
from repro.workload.trace import WorkloadTrace

__all__ = ["FederatedRegion", "FederatedResult", "run_federated_simulation"]


@dataclass(frozen=True)
class FederatedRegion:
    """One cluster of the federation."""

    name: str
    carbon: CarbonIntensityTrace
    reserved_cpus: int = 0

    def __post_init__(self) -> None:
        if self.reserved_cpus < 0:
            raise ConfigError(f"region {self.name}: negative reserved pool")


@dataclass
class FederatedResult:
    """Merged accounting across the federation's per-region runs."""

    selector_name: str
    policy_name: str
    home: str
    per_region: dict[str, SimulationResult] = field(default_factory=dict)
    placements: dict[str, int] = field(default_factory=dict)
    migrated_jobs: int = 0
    metrics: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def total_carbon_kg(self) -> float:
        return sum(result.total_carbon_kg for result in self.per_region.values())

    @property
    def total_cost(self) -> float:
        return sum(result.total_cost for result in self.per_region.values())

    @property
    def mean_waiting_hours(self) -> float:
        waits = [
            record.waiting_time
            for result in self.per_region.values()
            for record in result.records
        ]
        return sum(waits) / len(waits) / MINUTES_PER_HOUR if waits else 0.0

    @property
    def total_jobs(self) -> int:
        return sum(len(result.records) for result in self.per_region.values())

    def summary(self) -> dict[str, float | str]:
        return {
            "selector": self.selector_name,
            "policy": self.policy_name,
            "carbon_kg": self.total_carbon_kg,
            "cost_usd": self.total_cost,
            "mean_wait_h": self.mean_waiting_hours,
            "migrated_jobs": float(self.migrated_jobs),
        }

    def digest(self) -> str:
        """SHA-256 content address of the merged outcome.

        Folds the per-region :meth:`SimulationResult.digest` values (in
        region-name order) with the routing outcome, so two federated
        runs share a digest iff every region's schedule *and* the
        placement map are bit-identical.
        """
        parts = ["FederatedResult", self.selector_name, self.policy_name, self.home]
        for name in sorted(self.per_region):
            parts.append(name)
            parts.append(self.per_region[name].digest())
        for name in sorted(self.placements):
            parts.append(f"{name}={self.placements[name]}")
        parts.append(str(self.migrated_jobs))
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def run_federated_simulation(
    workload: WorkloadTrace,
    regions: list[FederatedRegion],
    selector: RegionSelector,
    policy: Policy | str,
    home: str | None = None,
    queues: QueueSet | None = None,
    migration_minutes: int = 0,
    pricing: PricingModel = DEFAULT_PRICING,
    energy: EnergyModel = DEFAULT_ENERGY,
    granularity: int = 5,
    validate: bool = True,
    spot_seed: int = 0,
    fault_plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
) -> FederatedResult:
    """Route the workload across regions, then simulate each cluster.

    ``policy`` (a spec string or instance) is the *temporal* policy every
    region runs; ``selector`` is the *spatial* policy.  ``home`` defaults
    to the first region; jobs routed elsewhere have ``migration_minutes``
    added to their arrival (data staging) before they become schedulable.

    ``validate`` runs the merged-accounting checks of
    :func:`repro.federation.validation.assert_valid_federated` on top of
    each engine's own per-run validation.  ``fault_plan`` and ``tracer``
    behave as in :func:`~repro.simulator.simulation.run_simulation`.
    """
    if not regions:
        raise ConfigError("a federation needs at least one region")
    names = [region.name for region in regions]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate region names: {names}")
    home = home if home is not None else names[0]
    if home not in names:
        raise ConfigError(f"home region {home!r} not in the federation")
    if migration_minutes < 0:
        raise ConfigError("migration delay must be non-negative")
    if isinstance(policy, str):
        policy_spec = policy
    else:
        policy_spec = None

    apply_process_faults(fault_plan)
    if fault_plan is not None and fault_plan.by_kind("migration-drop"):
        # The federated-only fault: the runner "forgets" data staging, so
        # off-home placements become free -- caught by the difftest
        # oracle whenever the delay would have mattered.
        migration_minutes = 0
    owns_tracer = False
    if tracer is None:
        tracer = tracer_from_env()
        owns_tracer = tracer.enabled

    queues = queues if queues is not None else default_queue_set()
    queues = queues.with_averages(workload.jobs)
    workload = workload.with_queues(queues)

    # Build per-region contexts over fully tiled carbon so selector and
    # engines see identical horizons.
    extra_hours = -(-migration_minutes // MINUTES_PER_HOUR)
    prepared = {}
    for region in regions:
        carbon = apply_input_faults(fault_plan, region.carbon)
        trace = prepare_carbon(carbon, workload, queues)
        if extra_hours:
            # Migration shifts arrivals later; keep the slack intact.
            trace = trace.tile_to(trace.num_hours + extra_hours)
        prepared[region.name] = trace
    # One forecaster per region, shared between the selector's context
    # and that region's engine, so forecast faults perturb both views.
    forecasters = {
        name: wrap_forecaster(fault_plan, PerfectForecaster(trace))
        for name, trace in prepared.items()
    }
    contexts = {
        name: SchedulingContext(
            forecaster=forecasters[name], queues=queues, granularity=granularity
        )
        for name in prepared
    }

    # Route every job; apply the migration delay off-home.
    all_jobs = list(workload)
    assigned: dict[str, list[Job]] = {name: [] for name in names}
    migrated = 0
    for job in all_jobs:
        region = selector.select(job, contexts)
        if region not in assigned:
            raise ConfigError(f"selector chose unknown region {region!r}")
        if region != home and migration_minutes:
            job = replace(job, arrival=job.arrival + migration_minutes)
            migrated += 1
        elif region != home:
            migrated += 1
        assigned[region].append(job)
    if tracer.enabled:
        tracer.emit(
            FederationRouted(
                selector=selector.name,
                home=home,
                regions=len(regions),
                jobs=len(all_jobs),
                migrated=migrated,
                migration_minutes=migration_minutes,
            )
        )

    eviction_model = wrap_eviction(fault_plan, None)
    by_region: dict[str, SimulationResult] = {}
    for region in regions:
        jobs = assigned[region.name]
        if not jobs:
            continue
        if jobs == all_jobs:
            # Every job landed here unshifted: run the original workload
            # so the result (name, horizon, digest) is bit-identical to
            # the plain single-region Engine.run path.
            sub_workload = workload
        else:
            sub_workload = WorkloadTrace(
                jobs, name=f"{workload.name}@{region.name}",
                horizon=max(workload.horizon, max(j.arrival for j in jobs) + 1),
            )
        region_policy = (
            make_policy(policy_spec) if policy_spec is not None else policy
        )
        engine = Engine(
            workload=sub_workload,
            carbon=prepared[region.name],
            policy=region_policy,
            queues=queues,
            reserved_cpus=region.reserved_cpus,
            pricing=pricing,
            energy=energy,
            eviction_model=eviction_model,
            forecaster=forecasters[region.name],
            granularity=granularity,
            validate=validate,
            spot_seed=spot_seed,
            tracer=tracer,
            fault_injector=engine_injector(fault_plan),
        )
        by_region[region.name] = engine.run()

    policy_name = next(iter(by_region.values())).policy_name if by_region else str(policy)
    registry = MetricsRegistry()
    registry.counter("federation.regions", float(len(regions)))
    registry.counter("federation.jobs", float(len(all_jobs)))
    registry.counter("federation.migrated", float(migrated))
    result = FederatedResult(
        selector_name=selector.name,
        policy_name=policy_name,
        home=home,
        per_region=by_region,
        placements={name: len(jobs) for name, jobs in assigned.items()},
        migrated_jobs=migrated,
        metrics=registry.snapshot(),
    )
    if validate:
        from repro.federation.validation import assert_valid_federated

        assert_valid_federated(result)
    if tracer.enabled:
        tracer.emit(
            FederationCompleted(
                selector=selector.name,
                policy=policy_name,
                regions=len(regions),
                jobs=result.total_jobs,
                migrated=migrated,
                carbon_kg=result.total_carbon_kg,
                cost_usd=result.total_cost,
            )
        )
    if owns_tracer:
        tracer.close()
    return result
