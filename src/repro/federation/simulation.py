"""Federated (multi-region) simulation.

Runs one GAIA cluster per region: a :class:`RegionSelector` routes each
job at arrival, then every region executes its share with its own engine
(reserved pool, CI trace, temporal policy).  Jobs placed outside their
home region optionally pay a migration delay (data transfer before the
job is schedulable), which shifts their effective arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.carbon.forecast import PerfectForecaster
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel
from repro.errors import ConfigError
from repro.federation.selectors import RegionSelector
from repro.policies.base import Policy, SchedulingContext
from repro.policies.registry import make_policy
from repro.simulator.engine import Engine
from repro.simulator.results import SimulationResult
from repro.simulator.simulation import prepare_carbon
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, QueueSet, default_queue_set
from repro.workload.trace import WorkloadTrace

__all__ = ["FederatedRegion", "FederatedResult", "run_federated_simulation"]


@dataclass(frozen=True)
class FederatedRegion:
    """One cluster of the federation."""

    name: str
    carbon: CarbonIntensityTrace
    reserved_cpus: int = 0

    def __post_init__(self) -> None:
        if self.reserved_cpus < 0:
            raise ConfigError(f"region {self.name}: negative reserved pool")


@dataclass
class FederatedResult:
    """Merged accounting across the federation's per-region runs."""

    selector_name: str
    policy_name: str
    home: str
    per_region: dict[str, SimulationResult] = field(default_factory=dict)
    placements: dict[str, int] = field(default_factory=dict)
    migrated_jobs: int = 0

    @property
    def total_carbon_kg(self) -> float:
        return sum(result.total_carbon_kg for result in self.per_region.values())

    @property
    def total_cost(self) -> float:
        return sum(result.total_cost for result in self.per_region.values())

    @property
    def mean_waiting_hours(self) -> float:
        waits = [
            record.waiting_time
            for result in self.per_region.values()
            for record in result.records
        ]
        return sum(waits) / len(waits) / MINUTES_PER_HOUR if waits else 0.0

    @property
    def total_jobs(self) -> int:
        return sum(len(result.records) for result in self.per_region.values())

    def summary(self) -> dict[str, float | str]:
        return {
            "selector": self.selector_name,
            "policy": self.policy_name,
            "carbon_kg": self.total_carbon_kg,
            "cost_usd": self.total_cost,
            "mean_wait_h": self.mean_waiting_hours,
            "migrated_jobs": float(self.migrated_jobs),
        }


def run_federated_simulation(
    workload: WorkloadTrace,
    regions: list[FederatedRegion],
    selector: RegionSelector,
    policy: Policy | str,
    home: str | None = None,
    queues: QueueSet | None = None,
    migration_minutes: int = 0,
    pricing: PricingModel = DEFAULT_PRICING,
    energy: EnergyModel = DEFAULT_ENERGY,
    granularity: int = 5,
) -> FederatedResult:
    """Route the workload across regions, then simulate each cluster.

    ``policy`` (a spec string or instance) is the *temporal* policy every
    region runs; ``selector`` is the *spatial* policy.  ``home`` defaults
    to the first region; jobs routed elsewhere have ``migration_minutes``
    added to their arrival (data staging) before they become schedulable.
    """
    if not regions:
        raise ConfigError("a federation needs at least one region")
    names = [region.name for region in regions]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate region names: {names}")
    home = home if home is not None else names[0]
    if home not in names:
        raise ConfigError(f"home region {home!r} not in the federation")
    if migration_minutes < 0:
        raise ConfigError("migration delay must be non-negative")
    if isinstance(policy, str):
        policy_spec = policy
    else:
        policy_spec = None

    queues = queues if queues is not None else default_queue_set()
    queues = queues.with_averages(workload.jobs)
    workload = workload.with_queues(queues)

    # Build per-region contexts over fully tiled carbon so selector and
    # engines see identical horizons.
    extra_hours = -(-migration_minutes // MINUTES_PER_HOUR)
    prepared = {}
    for region in regions:
        trace = prepare_carbon(region.carbon, workload, queues)
        if extra_hours:
            # Migration shifts arrivals later; keep the slack intact.
            trace = trace.tile_to(trace.num_hours + extra_hours)
        prepared[region.name] = trace
    contexts = {
        name: SchedulingContext(
            forecaster=PerfectForecaster(trace), queues=queues, granularity=granularity
        )
        for name, trace in prepared.items()
    }

    # Route every job; apply the migration delay off-home.
    assigned: dict[str, list[Job]] = {name: [] for name in names}
    migrated = 0
    for job in workload:
        region = selector.select(job, contexts)
        if region not in assigned:
            raise ConfigError(f"selector chose unknown region {region!r}")
        if region != home and migration_minutes:
            job = replace(job, arrival=job.arrival + migration_minutes)
            migrated += 1
        elif region != home:
            migrated += 1
        assigned[region].append(job)

    by_region: dict[str, SimulationResult] = {}
    for region in regions:
        jobs = assigned[region.name]
        if not jobs:
            continue
        sub_workload = WorkloadTrace(
            jobs, name=f"{workload.name}@{region.name}",
            horizon=max(workload.horizon, max(j.arrival for j in jobs) + 1),
        )
        region_policy = (
            make_policy(policy_spec) if policy_spec is not None else policy
        )
        engine = Engine(
            workload=sub_workload,
            carbon=prepared[region.name],
            policy=region_policy,
            queues=queues,
            reserved_cpus=region.reserved_cpus,
            pricing=pricing,
            energy=energy,
            granularity=granularity,
        )
        by_region[region.name] = engine.run()

    policy_name = next(iter(by_region.values())).policy_name if by_region else str(policy)
    return FederatedResult(
        selector_name=selector.name,
        policy_name=policy_name,
        home=home,
        per_region=by_region,
        placements={name: len(jobs) for name, jobs in assigned.items()},
        migrated_jobs=migrated,
    )
