"""Region-selection policies for geographically federated clusters.

The paper exploits *temporal* CI variation within a single region and
leaves *spatial* shifting across geo-distributed clusters as future work
(Sections 2.1 and 9).  This module implements that extension: a
:class:`RegionSelector` assigns each arriving job to one of the
federation's regions; the chosen region's own (temporal) scheduling
policy then decides when it runs.

Selectors see the same knowledge the temporal policies do: per-region CI
forecasts and the job's queue (bound + average length), never its true
length.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigError
from repro.policies.base import SchedulingContext
from repro.workload.job import Job

__all__ = [
    "RegionSelector",
    "HomeRegion",
    "LowestMeanCI",
    "GreedySpatial",
    "SpatioTemporal",
    "SELECTOR_SPECS",
    "make_selector",
]

#: Registry spec strings accepted by :func:`make_selector` -- the
#: declarative selector tags a :class:`~repro.federation.spec.FederatedSpec`
#: carries instead of a live selector instance.
SELECTOR_SPECS = ("home", "lowest-mean-ci", "greedy-spatial", "spatio-temporal")


class RegionSelector(ABC):
    """Chooses the execution region for each arriving job."""

    name: str = "selector"

    @abstractmethod
    def select(self, job: Job, contexts: dict[str, SchedulingContext]) -> str:
        """Return the name of the region ``job`` should execute in.

        ``contexts`` maps region name to that region's scheduling
        context (forecaster + queues).
        """


class HomeRegion(RegionSelector):
    """Keep every job in its home region (the single-region baseline)."""

    def __init__(self, home: str):
        self.home = home
        self.name = f"home:{home}"

    def select(self, job: Job, contexts: dict[str, SchedulingContext]) -> str:
        if self.home not in contexts:
            raise ConfigError(f"home region {self.home!r} not in the federation")
        return self.home


class LowestMeanCI(RegionSelector):
    """Statically route everything to the annually-greenest region.

    The obvious strawman: it ignores when the job runs, so a region that
    is green *on average* but dirty right now still wins.
    """

    name = "lowest-mean-ci"

    def select(self, job: Job, contexts: dict[str, SchedulingContext]) -> str:
        means = {
            region: float(ctx.forecaster.trace.hourly.mean())
            for region, ctx in contexts.items()
        }
        return min(means, key=means.get)


class GreedySpatial(RegionSelector):
    """Route to the region with the greenest *immediate* window.

    Evaluates each region's forecast carbon over ``[t, t + Ĵ]`` (the
    queue-average window, starting now) and picks the minimum: spatial
    shifting without temporal shifting.
    """

    name = "greedy-spatial"

    def select(self, job: Job, contexts: dict[str, SchedulingContext]) -> str:
        best_region = None
        best_carbon = np.inf
        for region, ctx in sorted(contexts.items()):
            queue = ctx.queue_of(job)
            estimate = max(1, int(round(ctx.length_estimate(queue))))
            end = min(job.arrival + estimate, ctx.carbon_horizon)
            carbon_g = ctx.forecaster.interval_carbon(job.arrival, job.arrival, end)
            if carbon_g < best_carbon:
                best_carbon = carbon_g
                best_region = region
        if best_region is None:
            raise ConfigError("empty federation")
        return best_region


def make_selector(spec: str, home: str | None = None) -> RegionSelector:
    """Build a selector from its registry spec string.

    ``"home"`` keeps jobs in ``home`` (an explicit target can be named as
    ``"home:<region>"``); the other tags map one-to-one onto the selector
    classes.  Unknown specs fail loudly, mirroring
    :func:`repro.policies.registry.make_policy`.
    """
    if spec == "home" or spec.startswith("home:"):
        _, _, target = spec.partition(":")
        target = target or home
        if not target:
            raise ConfigError("the 'home' selector needs a home region")
        return HomeRegion(target)
    if spec == "lowest-mean-ci":
        return LowestMeanCI()
    if spec == "greedy-spatial":
        return GreedySpatial()
    if spec == "spatio-temporal":
        return SpatioTemporal()
    raise ConfigError(
        f"unknown selector spec {spec!r}; known: {sorted(SELECTOR_SPECS)}"
    )


class SpatioTemporal(RegionSelector):
    """Jointly pick the region whose *best start* within W is greenest.

    For each region, evaluates the minimum forecast window carbon over
    all candidate starts in ``[t, t + W]`` (what Lowest-Window would
    achieve there) and routes to the winner -- spatial and temporal
    flexibility composed.
    """

    name = "spatio-temporal"

    def select(self, job: Job, contexts: dict[str, SchedulingContext]) -> str:
        best_region = None
        best_carbon = np.inf
        for region, ctx in sorted(contexts.items()):
            queue = ctx.queue_of(job)
            estimate = max(1, int(round(ctx.length_estimate(queue))))
            candidates = ctx.candidate_starts(job.arrival, queue.max_wait, estimate)
            footprints = ctx.forecaster.window_carbon_many(
                job.arrival, candidates, estimate
            )
            carbon_g = float(footprints.min())
            if carbon_g < best_carbon:
                best_carbon = carbon_g
                best_region = region
        if best_region is None:
            raise ConfigError("empty federation")
        return best_region
