"""Geo-distributed federation (the paper's spatial-shifting future work)."""

from __future__ import annotations

from repro.federation.selectors import (
    GreedySpatial,
    HomeRegion,
    LowestMeanCI,
    RegionSelector,
    SpatioTemporal,
)
from repro.federation.simulation import (
    FederatedRegion,
    FederatedResult,
    run_federated_simulation,
)

__all__ = [
    "RegionSelector",
    "HomeRegion",
    "LowestMeanCI",
    "GreedySpatial",
    "SpatioTemporal",
    "FederatedRegion",
    "FederatedResult",
    "run_federated_simulation",
]
