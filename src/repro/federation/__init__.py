"""Geo-distributed federation (the paper's spatial-shifting future work)."""

from __future__ import annotations

from repro.federation.reference import run_reference_federated
from repro.federation.selectors import (
    SELECTOR_SPECS,
    GreedySpatial,
    HomeRegion,
    LowestMeanCI,
    RegionSelector,
    SpatioTemporal,
    make_selector,
)
from repro.federation.simulation import (
    FederatedRegion,
    FederatedResult,
    run_federated_simulation,
)
from repro.federation.spec import FederatedSpec, FrozenRegion
from repro.federation.validation import assert_valid_federated, verify_federated_result

__all__ = [
    "RegionSelector",
    "HomeRegion",
    "LowestMeanCI",
    "GreedySpatial",
    "SpatioTemporal",
    "SELECTOR_SPECS",
    "make_selector",
    "FederatedRegion",
    "FederatedResult",
    "FederatedSpec",
    "FrozenRegion",
    "run_federated_simulation",
    "run_reference_federated",
    "verify_federated_result",
    "assert_valid_federated",
]
