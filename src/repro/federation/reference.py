"""Naive scalar reference for federated runs.

The federated analogue of :func:`repro.simulator.reference.run_reference`:
straight-line preparation (full-workload queue averages, per-region
carbon coverage recomputed from first principles, migration tiling),
routing through the same selector contract, and one
:class:`~repro.simulator.reference.ReferenceEngine` per region.  The
optimized :func:`~repro.federation.simulation.run_federated_simulation`
is differentially tested against this path by the fuzzer's spatial
scenarios.

Deliberately unsupported: fault plans and tracers -- the reference
exists to certify the *unfaulted* federated core, which is exactly why a
perturbed optimized run (e.g. under ``migration-drop``) diverges from it
and is caught.
"""

from __future__ import annotations

from dataclasses import replace

from repro.carbon.forecast import PerfectForecaster
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel
from repro.errors import ConfigError
from repro.federation.selectors import RegionSelector
from repro.federation.simulation import FederatedRegion, FederatedResult
from repro.policies.base import Policy, SchedulingContext
from repro.policies.registry import make_policy
from repro.simulator.reference import ReferenceEngine
from repro.simulator.results import SimulationResult
from repro.units import MINUTES_PER_HOUR
from repro.workload.job import Job, QueueSet, default_queue_set
from repro.workload.trace import WorkloadTrace

__all__ = ["run_reference_federated"]


def run_reference_federated(
    workload: WorkloadTrace,
    regions: list[FederatedRegion],
    selector: RegionSelector,
    policy: Policy | str,
    home: str | None = None,
    queues: QueueSet | None = None,
    migration_minutes: int = 0,
    pricing: PricingModel = DEFAULT_PRICING,
    energy: EnergyModel = DEFAULT_ENERGY,
    granularity: int = 5,
    validate: bool = True,
    spot_seed: int = 0,
    **unsupported,
) -> FederatedResult:
    """Reference counterpart of ``run_federated_simulation``.

    Accepts the optimized entry point's keyword surface so
    ``run_reference_federated(**spec.to_kwargs())`` works, but rejects
    the knobs the reference deliberately does not implement (fault
    plans, tracers).
    """
    for name, value in unsupported.items():
        if name not in ("fault_plan", "tracer"):
            raise ConfigError(f"run_reference_federated got an unknown knob {name!r}")
        if value is not None:
            raise ConfigError(
                f"the federated reference does not support {name!r}; it "
                "exists to differentially test the unfaulted federation core"
            )
    if not regions:
        raise ConfigError("a federation needs at least one region")
    names = [region.name for region in regions]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate region names: {names}")
    home = home if home is not None else names[0]
    if home not in names:
        raise ConfigError(f"home region {home!r} not in the federation")
    if migration_minutes < 0:
        raise ConfigError("migration delay must be non-negative")
    policy_spec = policy if isinstance(policy, str) else None

    queues = queues if queues is not None else default_queue_set()
    queues = queues.with_averages(workload.jobs)
    workload = workload.with_queues(queues)

    # Per-region coverage, recomputed from first principles over the
    # *full* workload (the selector and every engine must clamp candidate
    # windows at the same horizon the optimized path uses): arrival
    # horizon, full-W waits, a complete eviction redo, slot rounding, and
    # the migration shift.
    max_length = max((job.length for job in workload), default=0)
    required_minutes = (
        workload.horizon + 2 * max_length + queues.max_wait + MINUTES_PER_HOUR
    )
    extra_hours = -(-migration_minutes // MINUTES_PER_HOUR)
    prepared = {}
    for region in regions:
        trace = region.carbon
        if trace.horizon_minutes < required_minutes:
            trace = trace.tile_to(-(-required_minutes // MINUTES_PER_HOUR))
        if extra_hours:
            trace = trace.tile_to(trace.num_hours + extra_hours)
        prepared[region.name] = trace
    forecasters = {name: PerfectForecaster(trace) for name, trace in prepared.items()}
    contexts = {
        name: SchedulingContext(
            forecaster=forecasters[name], queues=queues, granularity=granularity
        )
        for name in prepared
    }

    all_jobs = list(workload)
    assigned: dict[str, list[Job]] = {name: [] for name in names}
    migrated = 0
    for job in all_jobs:
        region = selector.select(job, contexts)
        if region not in assigned:
            raise ConfigError(f"selector chose unknown region {region!r}")
        if region != home:
            migrated += 1
            if migration_minutes:
                job = replace(job, arrival=job.arrival + migration_minutes)
        assigned[region].append(job)

    by_region: dict[str, SimulationResult] = {}
    for region in regions:
        jobs = assigned[region.name]
        if not jobs:
            continue
        if jobs == all_jobs:
            sub_workload = workload
        else:
            sub_workload = WorkloadTrace(
                jobs, name=f"{workload.name}@{region.name}",
                horizon=max(workload.horizon, max(j.arrival for j in jobs) + 1),
            )
        region_policy = (
            make_policy(policy_spec) if policy_spec is not None else policy
        )
        engine = ReferenceEngine(
            workload=sub_workload,
            carbon=prepared[region.name],
            policy=region_policy,
            queues=queues,
            reserved_cpus=region.reserved_cpus,
            pricing=pricing,
            energy=energy,
            eviction_model=None,
            forecaster=forecasters[region.name],
            granularity=granularity,
            validate=validate,
            spot_seed=spot_seed,
        )
        by_region[region.name] = engine.run()

    policy_name = (
        next(iter(by_region.values())).policy_name if by_region else str(policy)
    )
    result = FederatedResult(
        selector_name=selector.name,
        policy_name=policy_name,
        home=home,
        per_region=by_region,
        placements={name: len(jobs) for name, jobs in assigned.items()},
        migrated_jobs=migrated,
    )
    if validate:
        from repro.federation.validation import assert_valid_federated

        assert_valid_federated(result)
    return result
