"""Declarative descriptions of federated runs.

A :class:`FederatedSpec` captures everything that determines a
:func:`repro.federation.simulation.run_federated_simulation` outcome --
the workload, every region's CI trace and reserved pool, the spatial
selector and temporal policy (both as registry spec strings), the
migration delay, and the fault plan -- as a frozen, hashable, picklable
value.  Like :class:`~repro.simulator.runner.spec.SimulationSpec`, specs
are the currency of the batch runner: ``run_many`` deduplicates and
caches them by :meth:`FederatedSpec.digest`, and campaigns journal them
like any other spec.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.federation.selectors import SELECTOR_SPECS
from repro.simulator.runner.spec import FrozenSeries, FrozenWorkload
from repro.workload.job import QueueSet

__all__ = ["FrozenRegion", "FederatedSpec"]


@dataclass(frozen=True)
class FrozenRegion:
    """A hashable, picklable snapshot of a
    :class:`~repro.federation.simulation.FederatedRegion`."""

    name: str
    carbon: FrozenSeries
    reserved_cpus: int = 0

    @classmethod
    def freeze(cls, region) -> "FrozenRegion":
        """Snapshot a live region (the carbon trace is memo-frozen)."""
        return cls(
            name=region.name,
            carbon=FrozenSeries.freeze(region.carbon),
            reserved_cpus=region.reserved_cpus,
        )

    def thaw(self):
        """Rebuild the live region this payload was frozen from."""
        from repro.federation.simulation import FederatedRegion

        return FederatedRegion(
            name=self.name,
            carbon=self.carbon.thaw(),
            reserved_cpus=self.reserved_cpus,
        )


@dataclass(frozen=True)
class FederatedSpec:
    """One ``run_federated_simulation`` call as a frozen, digest-able value.

    ``selector`` is a registry spec string (see
    :data:`repro.federation.selectors.SELECTOR_SPECS`); ``policy`` the
    temporal policy's registry spec string.  Build specs with
    :meth:`build`, fan batches out with ``run_many``, or execute one
    in-process with :meth:`run`.
    """

    workload: FrozenWorkload
    regions: tuple[FrozenRegion, ...]
    selector: str
    policy: str
    home: str | None = None
    queues: QueueSet | None = None
    migration_minutes: int = 0
    pricing: PricingModel = DEFAULT_PRICING
    energy: EnergyModel = DEFAULT_ENERGY
    granularity: int = 5
    validate: bool = True
    spot_seed: int = 0
    fault_plan: FaultPlan | None = None

    @classmethod
    def build(
        cls,
        workload,
        regions,
        selector: str,
        policy: str,
        home: str | None = None,
        queues: QueueSet | None = None,
        migration_minutes: int = 0,
        pricing: PricingModel = DEFAULT_PRICING,
        energy: EnergyModel = DEFAULT_ENERGY,
        granularity: int = 5,
        validate: bool = True,
        spot_seed: int = 0,
        fault_plan: FaultPlan | None = None,
    ) -> "FederatedSpec":
        """Freeze the arguments of one ``run_federated_simulation`` call.

        ``regions`` is a sequence of live ``FederatedRegion`` values;
        ``selector`` and ``policy`` must be registry spec strings (live
        instances cannot cross process boundaries declaratively).
        """
        if not isinstance(selector, str):
            raise ConfigError(
                "FederatedSpec needs a selector spec string (one of "
                f"{sorted(SELECTOR_SPECS)}); pass instances to "
                "run_federated_simulation directly"
            )
        if not isinstance(policy, str):
            raise ConfigError(
                "FederatedSpec needs a policy spec string (e.g. 'carbon-time')"
            )
        if not regions:
            raise ConfigError("a federation needs at least one region")
        return cls(
            workload=FrozenWorkload.freeze(workload),
            regions=tuple(FrozenRegion.freeze(region) for region in regions),
            selector=selector,
            policy=policy,
            home=home,
            queues=queues,
            migration_minutes=migration_minutes,
            pricing=pricing,
            energy=energy,
            granularity=granularity,
            validate=validate,
            spot_seed=spot_seed,
            fault_plan=fault_plan,
        )

    def to_kwargs(self) -> dict:
        """The ``run_federated_simulation`` keyword arguments this spec
        describes."""
        from repro.federation.selectors import make_selector

        home = self.home if self.home is not None else self.regions[0].name
        return {
            "workload": self.workload.thaw(),
            "regions": [region.thaw() for region in self.regions],
            "selector": make_selector(self.selector, home),
            "policy": self.policy,
            "home": home,
            "queues": self.queues,
            "migration_minutes": self.migration_minutes,
            "pricing": self.pricing,
            "energy": self.energy,
            "granularity": self.granularity,
            "validate": self.validate,
            "spot_seed": self.spot_seed,
            "fault_plan": self.fault_plan,
        }

    def run(self):
        """Execute this spec in-process and return the FederatedResult."""
        from repro.federation.simulation import run_federated_simulation

        return run_federated_simulation(**self.to_kwargs())

    def digest(self) -> str:
        """SHA-256 content address of this spec.

        Covers the workload and every region's carbon content digest
        plus every knob (and the fault plan), mirroring
        :meth:`SimulationSpec.digest` so federated runs cache and
        deduplicate under the same contract.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            parts = [
                "FederatedSpec",
                self.workload.content_digest(),
            ]
            for region in self.regions:
                parts.extend(
                    (region.name, region.carbon.content_digest(),
                     str(region.reserved_cpus))
                )
            parts.extend(
                (
                    self.selector,
                    self.policy,
                    repr(self.home),
                    repr(self.queues),
                    str(self.migration_minutes),
                    repr(self.pricing),
                    repr(self.energy),
                    str(self.granularity),
                    str(self.validate),
                    str(self.spot_seed),
                    self.fault_plan.digest() if self.fault_plan is not None else "-",
                )
            )
            cached = hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
            self.__dict__["_digest"] = cached
        return cached
