"""Capacity bookkeeping for the fixed reserved pool.

On-demand and spot capacity is elastic (the cloud always has more), so
only the pre-paid reserved pool needs explicit accounting.  The pool
enforces conservation invariants: allocations never exceed capacity and
releases never exceed allocations.
"""

from __future__ import annotations

from repro.errors import CapacityError, ConfigError

__all__ = ["ReservedPool"]


class ReservedPool:
    """A fixed pool of reserved CPUs with strict conservation checks."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ConfigError("reserved capacity must be non-negative")
        self._capacity = int(capacity)
        self._in_use = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def free(self) -> int:
        return self._capacity - self._in_use

    def can_fit(self, cpus: int) -> bool:
        """Whether ``cpus`` CPUs are currently free."""
        if cpus <= 0:
            raise CapacityError("capacity queries must be for positive CPUs")
        return cpus <= self.free

    def allocate(self, cpus: int) -> None:
        """Take ``cpus`` CPUs from the pool; raises if they do not fit."""
        if not self.can_fit(cpus):
            raise CapacityError(
                f"cannot allocate {cpus} reserved CPUs; only {self.free} free"
            )
        self._in_use += cpus

    def release(self, cpus: int) -> None:
        """Return ``cpus`` CPUs to the pool; raises on over-release."""
        if cpus <= 0:
            raise CapacityError("release must be for positive CPUs")
        if cpus > self._in_use:
            raise CapacityError(
                f"releasing {cpus} reserved CPUs but only {self._in_use} in use"
            )
        self._in_use -= cpus

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ReservedPool {self._in_use}/{self._capacity} in use>"
