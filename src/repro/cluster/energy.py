"""Server energy model.

The paper assumes homogeneous resources and that reserved instances are
*turned off when idle* (no idle energy or carbon); accordingly the default
idle power is zero, but a non-zero idle draw is supported for ablations.
A job's carbon footprint is its energy (kWh) weighted by the carbon
intensity of each time slot it executes in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import MINUTES_PER_HOUR

__all__ = ["EnergyModel", "DEFAULT_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-CPU power draw in watts.

    Attributes
    ----------
    watts_per_cpu:
        Active power per CPU.  Only relative carbon matters for the
        paper's normalized metrics, so the default (10 W, a small cloud
        vCPU share) sets the absolute scale of "total saved kg" figures.
    idle_watts_per_cpu:
        Draw of an idle (but powered) reserved CPU; the paper assumes 0.
    """

    watts_per_cpu: float = 10.0
    idle_watts_per_cpu: float = 0.0

    def __post_init__(self) -> None:
        if self.watts_per_cpu <= 0:
            raise ConfigError("active power must be positive")
        if self.idle_watts_per_cpu < 0:
            raise ConfigError("idle power must be non-negative")

    def active_kw(self, cpus: int) -> float:
        """Active power draw of ``cpus`` busy CPUs in kW."""
        if cpus < 0:
            raise ConfigError("cpus must be non-negative")
        return self.watts_per_cpu * cpus / 1000.0

    def active_kw_many(self, cpu_counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`active_kw` (same operation order, so the
        per-element results are bit-identical to the scalar method)."""
        counts = np.asarray(cpu_counts)
        if counts.size and counts.min() < 0:
            raise ConfigError("cpus must be non-negative")
        return self.watts_per_cpu * counts / 1000.0

    def energy_kwh(self, cpus: int, minutes: float) -> float:
        """Active energy of ``cpus`` CPUs busy for ``minutes``."""
        if minutes < 0:
            raise ConfigError("minutes must be non-negative")
        return self.active_kw(cpus) * minutes / MINUTES_PER_HOUR


#: The default energy model used across experiments.
DEFAULT_ENERGY = EnergyModel()
