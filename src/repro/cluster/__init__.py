"""Cloud cluster substrate: purchase options, pricing, energy, evictions."""

from __future__ import annotations

from repro.cluster.capacity import ReservedPool
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import DEFAULT_PRICING, PricingModel, PurchaseOption
from repro.cluster.spot import (
    CheckpointConfig,
    DiurnalHazard,
    EvictionModel,
    HourlyHazard,
    NoEvictions,
)

__all__ = [
    "CheckpointConfig",
    "PurchaseOption",
    "PricingModel",
    "DEFAULT_PRICING",
    "EnergyModel",
    "DEFAULT_ENERGY",
    "ReservedPool",
    "EvictionModel",
    "NoEvictions",
    "HourlyHazard",
    "DiurnalHazard",
]
