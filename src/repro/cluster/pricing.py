"""Cloud purchase options and pricing (paper Sections 2.3, 6.1).

The paper's deployment uses AWS ``c7gn.medium`` workers at $0.0624 per
on-demand hour, 3-year reserved instances at 40% of the on-demand price,
and spot instances at 20%.  The crucial asymmetry: **reserved capacity is
paid upfront for the whole commitment period whether used or not**, while
on-demand and spot are pay-as-you-go.  This is what turns carbon-aware
demand spikes into cost increases.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError
from repro.units import MINUTES_PER_HOUR

__all__ = ["PurchaseOption", "PricingModel", "DEFAULT_PRICING"]


class PurchaseOption(str, Enum):
    """The three cloud purchase options GAIA schedules across."""

    RESERVED = "reserved"
    ON_DEMAND = "on_demand"
    SPOT = "spot"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PricingModel:
    """Per-CPU pricing for the three purchase options.

    Attributes
    ----------
    on_demand_hourly:
        $ per CPU-hour for on-demand capacity.
    reserved_fraction:
        Reserved price as a fraction of on-demand (paper: 0.4 for a
        3-year commitment).
    spot_fraction:
        Spot price as a fraction of on-demand (paper: 0.2).
    carbon_price_per_kg:
        Optional carbon tax in $ per kgCO2eq, folded into job cost by the
        accounting layer (paper Section 7 ablation); 0 disables it.
    """

    on_demand_hourly: float = 0.0624
    reserved_fraction: float = 0.4
    spot_fraction: float = 0.2
    carbon_price_per_kg: float = 0.0

    def __post_init__(self) -> None:
        if self.on_demand_hourly <= 0:
            raise ConfigError("on-demand price must be positive")
        if not 0 < self.reserved_fraction <= 1:
            raise ConfigError("reserved fraction must be in (0, 1]")
        if not 0 < self.spot_fraction <= 1:
            raise ConfigError("spot fraction must be in (0, 1]")
        if self.carbon_price_per_kg < 0:
            raise ConfigError("carbon price must be non-negative")

    @property
    def reserved_hourly(self) -> float:
        """$ per CPU-hour of reserved capacity (paid regardless of use)."""
        return self.on_demand_hourly * self.reserved_fraction

    @property
    def spot_hourly(self) -> float:
        """$ per CPU-hour of spot capacity."""
        return self.on_demand_hourly * self.spot_fraction

    def hourly_rate(self, option: PurchaseOption) -> float:
        """$ per CPU-hour for a purchase option's metered usage."""
        if option is PurchaseOption.RESERVED:
            return self.reserved_hourly
        if option is PurchaseOption.SPOT:
            return self.spot_hourly
        return self.on_demand_hourly

    def usage_cost(self, option: PurchaseOption, cpu_minutes: float) -> float:
        """Metered cost of using ``cpu_minutes`` on ``option``.

        Reserved usage is *not* metered (it is covered by the upfront
        payment), so this returns 0 for reserved.
        """
        if cpu_minutes < 0:
            raise ConfigError("cpu_minutes must be non-negative")
        if option is PurchaseOption.RESERVED:
            return 0.0
        return self.hourly_rate(option) * cpu_minutes / MINUTES_PER_HOUR

    def reserved_upfront(self, reserved_cpus: int, horizon_minutes: int) -> float:
        """Upfront cost of holding ``reserved_cpus`` for the whole horizon."""
        if reserved_cpus < 0 or horizon_minutes < 0:
            raise ConfigError("reserved capacity and horizon must be non-negative")
        return self.reserved_hourly * reserved_cpus * horizon_minutes / MINUTES_PER_HOUR

    def breakeven_utilization(self) -> float:
        """Reserved utilization above which reserved beats on-demand.

        A reserved CPU used a fraction ``u`` of the time costs
        ``reserved_fraction / u`` per *useful* hour relative to on-demand;
        break-even is at ``u = reserved_fraction`` (paper Fig. 4, regime 3
        sits below this).
        """
        return self.reserved_fraction

    def effective_reserved_hourly(self, utilization: float) -> float:
        """Effective $ per *useful* CPU-hour at a given reserved utilization."""
        if not 0 < utilization <= 1:
            raise ConfigError("utilization must be in (0, 1]")
        return self.reserved_hourly / utilization

    def with_carbon_price(self, price_per_kg: float) -> "PricingModel":
        """A copy of this model with a carbon tax attached."""
        return PricingModel(
            on_demand_hourly=self.on_demand_hourly,
            reserved_fraction=self.reserved_fraction,
            spot_fraction=self.spot_fraction,
            carbon_price_per_kg=price_per_kg,
        )


#: The paper's pricing configuration.
DEFAULT_PRICING = PricingModel()
