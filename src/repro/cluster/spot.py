"""Spot-instance eviction models (paper Sections 4.2.4, 6.4.5).

Spot capacity is rented at a steep discount but may be revoked.  The
paper parameterizes evictions by an hourly *eviction rate* -- the percent
of spot customers evicted per hour -- and assumes all job progress is
lost on eviction (application-agnostic checkpointing being impractical in
its HPC setting).  Fig. 18 sweeps rates of 0-15%/hour.

A constant hourly eviction probability ``p`` corresponds to a memoryless
survival process, so eviction times are sampled from an exponential with
rate ``-ln(1 - p)`` per hour.  A diurnal variant modulates the hazard
with the daily demand cycle the paper cites (evictions track cloud
demand).
"""

from __future__ import annotations

import math
import zlib
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigError
from repro.units import HOURS_PER_DAY, MINUTES_PER_HOUR

__all__ = [
    "EvictionModel",
    "NoEvictions",
    "HourlyHazard",
    "DiurnalHazard",
    "CheckpointConfig",
]


class CheckpointConfig:
    """Periodic checkpointing of spot executions (paper §4.2.4 future work).

    The paper assumes all progress is lost on eviction and defers the
    "trade-off between the checkpointing overhead, eviction rate, and
    the amount of recomputation" to future work; this implements it.

    A job on spot checkpoints after every ``interval`` minutes of useful
    work, paying ``overhead`` minutes per checkpoint.  On eviction, work
    up to the last *completed* checkpoint survives; everything since is
    recomputed.

    Parameters
    ----------
    interval:
        Useful-work minutes between checkpoints.
    overhead:
        Wall-clock minutes each checkpoint costs (the job occupies its
        CPUs but makes no progress).
    """

    def __init__(self, interval: int, overhead: int):
        if interval <= 0:
            raise ConfigError("checkpoint interval must be positive")
        if overhead < 0:
            raise ConfigError("checkpoint overhead must be non-negative")
        self.interval = int(interval)
        self.overhead = int(overhead)

    def wall_time(self, work: int) -> int:
        """Wall minutes to complete ``work`` minutes of useful work.

        A checkpoint follows every full interval; no checkpoint after
        the final (possibly partial) stretch -- the job is done.
        """
        if work < 0:
            raise ConfigError("work must be non-negative")
        full_intervals = (work - 1) // self.interval if work > 0 else 0
        return work + full_intervals * self.overhead

    def preserved_work(self, elapsed_wall: float, total_work: int) -> int:
        """Useful work preserved after ``elapsed_wall`` minutes on spot.

        Work is durable once its trailing checkpoint *completes*, i.e.
        after ``k * (interval + overhead)`` wall minutes for ``k``
        intervals; a fully finished job needs no trailing checkpoint but
        a finished job is never evicted, so that case cannot arise here.
        """
        if elapsed_wall < 0:
            raise ConfigError("elapsed time must be non-negative")
        chunk = self.interval + self.overhead
        completed_intervals = int(elapsed_wall // chunk)
        return min(completed_intervals * self.interval, total_work)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CheckpointConfig every {self.interval}m +{self.overhead}m>"


class EvictionModel(ABC):
    """Samples the eviction time of a spot allocation."""

    @abstractmethod
    def sample_eviction(self, start_minute: int, rng: np.random.Generator) -> float:
        """Minutes *after* ``start_minute`` until eviction (may be inf)."""

    def rng_for_job(self, seed: int, job_id: int) -> np.random.Generator:
        """A deterministic per-job RNG, so re-running a simulation (or
        re-scheduling the same job after an eviction) is reproducible."""
        return np.random.default_rng(
            np.random.SeedSequence([seed, zlib.crc32(b"spot"), job_id])
        )


class NoEvictions(EvictionModel):
    """Spot capacity that is never revoked (the paper's prototype case:
    "spot instances were never evicted in our experiments")."""

    def sample_eviction(self, start_minute: int, rng: np.random.Generator) -> float:
        return math.inf


class HourlyHazard(EvictionModel):
    """Constant per-hour eviction probability.

    Parameters
    ----------
    hourly_rate:
        Probability of eviction within any given hour, in [0, 1).
        0 degrades to :class:`NoEvictions` behaviour.
    """

    def __init__(self, hourly_rate: float):
        if not 0 <= hourly_rate < 1:
            raise ConfigError("hourly eviction rate must be in [0, 1)")
        self.hourly_rate = hourly_rate
        self._lambda_per_minute = (
            -math.log(1.0 - hourly_rate) / MINUTES_PER_HOUR if hourly_rate > 0 else 0.0
        )

    def sample_eviction(self, start_minute: int, rng: np.random.Generator) -> float:
        if self._lambda_per_minute == 0.0:
            return math.inf
        return float(rng.exponential(1.0 / self._lambda_per_minute))

    def survival_probability(self, minutes: float) -> float:
        """Probability a spot allocation survives ``minutes`` unevicted."""
        if minutes < 0:
            raise ConfigError("minutes must be non-negative")
        return math.exp(-self._lambda_per_minute * minutes)


class DiurnalHazard(EvictionModel):
    """Eviction hazard that follows the daily cloud-demand cycle.

    The instantaneous hourly rate is
    ``base_rate * (1 + amplitude * cos(2*pi*(h - peak_hour)/24))``;
    sampling uses thinning against the peak rate so the non-homogeneous
    process is exact.
    """

    def __init__(self, base_rate: float, amplitude: float = 0.5, peak_hour: float = 14.0):
        if not 0 <= base_rate < 1:
            raise ConfigError("base eviction rate must be in [0, 1)")
        if not 0 <= amplitude <= 1:
            raise ConfigError("amplitude must be in [0, 1]")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.peak_hour = peak_hour

    def _rate_at(self, minute: float) -> float:
        hour_of_day = (minute / MINUTES_PER_HOUR) % HOURS_PER_DAY
        modulation = 1.0 + self.amplitude * math.cos(
            2.0 * math.pi * (hour_of_day - self.peak_hour) / HOURS_PER_DAY
        )
        rate = self.base_rate * modulation
        return -math.log(max(1e-12, 1.0 - rate)) / MINUTES_PER_HOUR

    def sample_eviction(self, start_minute: int, rng: np.random.Generator) -> float:
        if self.base_rate == 0:
            return math.inf
        peak = -math.log(1.0 - min(0.999999, self.base_rate * (1 + self.amplitude)))
        peak_per_minute = peak / MINUTES_PER_HOUR
        elapsed = 0.0
        # Thinning (Lewis-Shedler): propose from the peak-rate process,
        # accept with probability rate(t)/peak.
        for _ in range(100_000):
            elapsed += rng.exponential(1.0 / peak_per_minute)
            if rng.random() <= self._rate_at(start_minute + elapsed) / peak_per_minute:
                return elapsed
        return math.inf  # pragma: no cover - unreachable at sane rates
