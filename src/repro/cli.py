"""Command-line interface mirroring the paper's artifact workflow.

The GAIA artifact is driven by ``python3 src/run.py --scheduling-policy
... -w 6x24`` and emits, per experiment, *an aggregate file, a details
file (per-job consumption), and a run-time file (allocation and carbon
during execution)*.  This CLI reproduces that workflow on the simulator::

    python -m repro --policy res-first:carbon-time --region SA-AU \
        --workload alibaba --jobs 1000 --horizon-days 7 \
        --reserved 9 -w 6x24 --output-dir results/

Workloads may be a built-in family (``alibaba``/``azure``/``mustang``/
``poisson``) or a CSV written by :meth:`WorkloadTrace.to_csv`; carbon may
be a built-in region or a CSV written by :meth:`HourlySeries.to_csv`.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys

from repro.carbon.regions import REGION_PROFILES, region_trace
from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.pricing import DEFAULT_PRICING
from repro.cluster.spot import CheckpointConfig, HourlyHazard, NoEvictions
from repro.errors import ReproError
from repro.simulator.results import SimulationResult, demand_profile
from repro.simulator.simulation import run_simulation
from repro.units import MINUTES_PER_DAY, MINUTES_PER_HOUR, hours
from repro.workload.job import default_queue_set
from repro.workload.sampling import week_long_trace, year_long_trace
from repro.workload.synthetic import TRACE_FAMILIES, poisson_exponential
from repro.workload.trace import WorkloadTrace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GAIA simulator: carbon/cost/performance-aware batch scheduling",
    )
    parser.add_argument(
        "--policy", default="nowait",
        help="policy spec, e.g. carbon-time or res-first:carbon-time",
    )
    parser.add_argument(
        "--workload", default="alibaba",
        help="trace family (alibaba/azure/mustang/poisson) or a jobs CSV path",
    )
    parser.add_argument("--jobs", type=int, default=1_000, help="jobs to sample")
    parser.add_argument("--horizon-days", type=float, default=7.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--region", default="SA-AU",
        help=f"carbon region ({', '.join(sorted(REGION_PROFILES))}) or a CSV path",
    )
    parser.add_argument(
        "--carbon-start-hour", type=int, default=0,
        help="offset into the carbon trace (the artifact's 'Carbon Index')",
    )
    parser.add_argument("--reserved", type=int, default=0, help="reserved CPUs")
    parser.add_argument(
        "-w", "--waiting", default="6x24", metavar="SHORTxLONG",
        help="max waiting hours as SHORTxLONG (artifact syntax), e.g. 6x24",
    )
    parser.add_argument("--eviction-rate", type=float, default=0.0,
                        help="hourly spot eviction probability (0-1)")
    parser.add_argument("--checkpoint-interval", type=int, default=0,
                        help="spot checkpoint interval in minutes (0 = off)")
    parser.add_argument("--checkpoint-overhead", type=int, default=2,
                        help="minutes per checkpoint")
    parser.add_argument("--instance-overhead", type=int, default=0,
                        help="boot minutes billed per elastic allocation")
    parser.add_argument("--forecaster", choices=("perfect", "noisy", "historical"),
                        default="perfect",
                        help="CI forecaster the policies consult")
    parser.add_argument("--forecast-sigma", type=float, default=0.2,
                        help="relative error at 24 h lead (noisy forecaster)")
    parser.add_argument("--online-estimation", action="store_true",
                        help="learn queue-average lengths from completions "
                             "instead of using trace-oracle averages")
    parser.add_argument("--carbon-price", type=float, default=0.0,
                        help="carbon tax in $ per kgCO2eq folded into cost")
    parser.add_argument("--granularity", type=int, default=5)
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-run the simulation instead of reusing "
                             "a cached result for identical inputs")
    parser.add_argument("--retries", type=int, default=None,
                        help="extra attempts for a failing run "
                             "(default $REPRO_RETRIES or 0)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-execution timeout in seconds; runs in a "
                             "worker process so a hung run can be abandoned "
                             "(default $REPRO_TIMEOUT or none)")
    parser.add_argument("--fault-plan", default=None, metavar="PLAN",
                        help="inject deterministic faults, e.g. "
                             "'eviction-storm:rate=0.5,hours=6;forecast-bias:bias=0.3' "
                             "(see docs/robustness.md)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="seed for the fault plan's RNG streams "
                             "(requires --fault-plan; default 0)")
    parser.add_argument("--output-dir", default=None,
                        help="write aggregate.csv, details.csv, runtime.csv here")
    return parser


def _parse_waiting(spec: str) -> tuple[int, int]:
    try:
        short_text, _, long_text = spec.lower().partition("x")
        return hours(float(short_text)), hours(float(long_text))
    except ValueError:
        raise ReproError(f"invalid -w value {spec!r}; expected e.g. 6x24") from None


def _load_workload(args: argparse.Namespace) -> WorkloadTrace:
    horizon = int(args.horizon_days * MINUTES_PER_DAY)
    if os.path.exists(args.workload):
        return WorkloadTrace.from_csv(args.workload, name=os.path.basename(args.workload))
    if args.workload == "poisson":
        return poisson_exponential(horizon=horizon, seed=args.seed)
    generator = TRACE_FAMILIES.get(args.workload)
    if generator is None:
        raise ReproError(
            f"unknown workload {args.workload!r}: not a file and not one of "
            f"{sorted(TRACE_FAMILIES)} or 'poisson'"
        )
    raw = generator(num_jobs=max(20_000, 10 * args.jobs), seed=args.seed)
    if args.horizon_days <= 7:
        return week_long_trace(raw, num_jobs=args.jobs, horizon=horizon, seed=args.seed)
    return year_long_trace(raw, num_jobs=args.jobs, horizon=horizon, seed=args.seed)


def _load_carbon(args: argparse.Namespace) -> CarbonIntensityTrace:
    if os.path.exists(args.region):
        series = CarbonIntensityTrace.from_csv(args.region, name=os.path.basename(args.region))
    else:
        if args.region not in REGION_PROFILES:
            raise ReproError(
                f"unknown region {args.region!r}: not a file and not one of "
                f"{sorted(REGION_PROFILES)}"
            )
        series = region_trace(args.region)
    if args.carbon_start_hour:
        series = series.slice_hours(
            args.carbon_start_hour, series.num_hours - args.carbon_start_hour
        )
    return series


def _write_outputs(result: SimulationResult, carbon_trace, energy_kw_per_cpu, out_dir: str) -> None:
    os.makedirs(out_dir, exist_ok=True)
    # Aggregate file: the totals the artifact reports.
    with open(os.path.join(out_dir, "aggregate.csv"), "w", newline="") as handle:
        writer = csv.writer(handle)
        summary = result.summary()
        writer.writerow(summary.keys())
        writer.writerow(summary.values())
    # Details file: per-job consumption.
    with open(os.path.join(out_dir, "details.csv"), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["job_id", "queue", "arrival", "length", "cpus", "first_start",
             "finish", "waiting_min", "carbon_g", "energy_kwh", "usage_cost",
             "evictions", "lost_cpu_min"]
        )
        for record in result.records:
            writer.writerow(
                [record.job_id, record.queue, record.arrival, record.length,
                 record.cpus, record.first_start, record.finish,
                 record.waiting_time, f"{record.carbon_g:.6f}",
                 f"{record.energy_kwh:.6f}", f"{record.usage_cost:.6f}",
                 record.evictions, f"{record.lost_cpu_minutes:.1f}"]
            )
    # Runtime file: hourly allocation and carbon during execution.
    horizon = max((record.finish for record in result.records), default=0)
    profile = demand_profile(result.records, horizon)
    hours_count = -(-horizon // MINUTES_PER_HOUR)
    with open(os.path.join(out_dir, "runtime.csv"), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["hour", "mean_demand_cpus", "carbon_intensity", "carbon_g"])
        for hour in range(hours_count):
            lo, hi = hour * MINUTES_PER_HOUR, min(horizon, (hour + 1) * MINUTES_PER_HOUR)
            mean_demand = float(profile[lo:hi].mean()) if hi > lo else 0.0
            ci = carbon_trace.ci_at(min(lo, carbon_trace.horizon_minutes - 1))
            grams = mean_demand * energy_kw_per_cpu * ci * (hi - lo) / MINUTES_PER_HOUR
            writer.writerow([hour, f"{mean_demand:.3f}", f"{ci:.2f}", f"{grams:.4f}"])


def main(argv: list[str] | None = None) -> int:
    """Run one simulation from CLI arguments; return a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        short_wait, long_wait = _parse_waiting(args.waiting)
        workload = _load_workload(args)
        carbon_trace = _load_carbon(args)
        queues = default_queue_set(short_wait=short_wait, long_wait=long_wait)
        eviction = (
            HourlyHazard(args.eviction_rate) if args.eviction_rate > 0 else NoEvictions()
        )
        checkpointing = (
            CheckpointConfig(args.checkpoint_interval, args.checkpoint_overhead)
            if args.checkpoint_interval > 0
            else None
        )
        forecaster_factory = None
        forecast_sigma = 0.0
        if args.forecaster == "noisy":
            forecast_sigma = args.forecast_sigma
        elif args.forecaster == "historical":
            from repro.carbon.historical import HistoricalForecaster

            forecaster_factory = HistoricalForecaster
        pricing = DEFAULT_PRICING.with_carbon_price(args.carbon_price)
        fault_plan = None
        if args.fault_plan:
            from repro.faults import parse_fault_plan

            seed = args.fault_seed if args.fault_seed is not None else 0
            fault_plan = parse_fault_plan(args.fault_plan, seed=seed)
        elif args.fault_seed is not None:
            parser.error("--fault-seed requires --fault-plan")
        sim_kwargs = dict(
            reserved_cpus=args.reserved,
            queues=queues,
            pricing=pricing,
            eviction_model=eviction,
            checkpointing=checkpointing,
            instance_overhead_minutes=args.instance_overhead,
            granularity=args.granularity,
            forecast_sigma=forecast_sigma,
            online_estimation=args.online_estimation,
            fault_plan=fault_plan,
        )
        if forecaster_factory is not None:
            # Live forecaster objects are not spec-able; run directly.
            result = run_simulation(
                workload, carbon_trace, args.policy,
                forecaster_factory=forecaster_factory, **sim_kwargs,
            )
        else:
            from repro.simulator.runner import SimulationSpec, run_many

            spec = SimulationSpec.build(workload, carbon_trace, args.policy, **sim_kwargs)
            result = run_many(
                [spec],
                use_cache=not args.no_cache,
                retries=args.retries,
                timeout=args.timeout,
            )[0]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    from repro.analysis.report import render_kv, sparkline

    print(render_kv(result.summary(), title=f"{result.policy_name} on {result.region}"))
    last_finish = max((record.finish for record in result.records), default=0)
    if last_finish:
        profile = demand_profile(result.records, last_finish)
        print(f"\ndemand  {sparkline(profile)}")
        ci_hours = carbon_trace.hourly[: -(-last_finish // MINUTES_PER_HOUR)]
        print(f"carbon  {sparkline(ci_hours)}")
    if args.output_dir:
        from repro.cluster.energy import DEFAULT_ENERGY

        covering = carbon_trace.tile_to(-(-last_finish // MINUTES_PER_HOUR) + 1)
        _write_outputs(result, covering, DEFAULT_ENERGY.active_kw(1), args.output_dir)
        print(f"\nwrote aggregate.csv, details.csv, runtime.csv to {args.output_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
