"""Command line for the differential fuzzer: ``python -m repro.difftest``.

Fuzzes N seeded scenarios through the optimized engine and the scalar
reference engine, diffing each pair of results field by field.  Every
:data:`~repro.difftest.scenarios.SPATIAL_PERIOD`-th scenario is
*federated*: a multi-region spec run through
:func:`repro.federation.simulation.run_federated_simulation` against
the straight-line :func:`repro.federation.reference.run_reference_federated`.
On divergence the fuzzer shrinks the scenario's workload and writes a
repro bundle (see :mod:`repro.difftest.bundle` and ``docs/testing.md``).

``--perturb`` applies a fault plan (``repro.faults`` syntax, e.g.
``"forecast-bias:sigma=0.5"`` or the federated-only ``"migration-drop"``)
to the *optimized* engine only, which must make the oracle report
divergences -- the standard self-test that the oracle can actually catch
a mutated engine.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.difftest.bundle import minimize_spec, write_bundle
from repro.difftest.diff import compare_results
from repro.difftest.federated import compare_federated
from repro.difftest.scenarios import mixed_scenario_spec
from repro.errors import ReproError
from repro.faults import parse_fault_plan
from repro.federation.reference import run_reference_federated
from repro.federation.spec import FederatedSpec
from repro.simulator.reference import run_reference
from repro.simulator.runner.spec import SimulationSpec

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The fuzzer's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.difftest",
        description="Differential fuzzing of the optimized engine against "
        "the scalar reference engine.",
    )
    parser.add_argument(
        "--scenarios", type=int, default=50, help="number of scenarios to fuzz"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fuzzing seed (scenario stream id)"
    )
    parser.add_argument(
        "--bundle-dir",
        default="difftest-bundles",
        help="directory for divergence repro bundles",
    )
    parser.add_argument(
        "--perturb",
        default=None,
        metavar="FAULT_PLAN",
        help="apply a fault plan to the optimized engine only (oracle self-test)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="fuzz all scenarios even after a divergence (default: stop at first)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-divergence reports"
    )
    return parser


def _optimized_spec(spec, perturb: str | None):
    """The spec the optimized engine runs (fault-planned under --perturb)."""
    if perturb is None:
        return spec
    return replace(spec, fault_plan=parse_fault_plan(perturb, seed=spec.spot_seed))


def _diff_pair(spec, perturb: str | None):
    """Run one scenario through both engines and diff the outcomes.

    Dispatches on the spec type: plain :class:`SimulationSpec` scenarios
    go through ``run_reference``/``compare_results``, federated ones
    through ``run_reference_federated``/``compare_federated``.
    """
    if isinstance(spec, FederatedSpec):
        kwargs = spec.to_kwargs()
        kwargs.pop("fault_plan", None)  # the reference never runs faulted
        reference = run_reference_federated(**kwargs)
        optimized = _optimized_spec(spec, perturb).run()
        return compare_federated(reference, optimized)
    reference = run_reference(**spec.to_kwargs())
    optimized = _optimized_spec(spec, perturb).run()
    return compare_results(reference, optimized)


def _diverges(spec, perturb: str | None) -> bool:
    """Oracle probe used during minimization: do the engines disagree?"""
    try:
        return not _diff_pair(spec, perturb).identical
    except ReproError:
        # A subset that no longer simulates cleanly (e.g. queue averages
        # shifted) is not a smaller reproduction; keep the previous spec.
        return False


def main(argv: list[str] | None = None) -> int:
    """Fuzzer entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    divergences = 0
    for index in range(args.scenarios):
        spec = mixed_scenario_spec(args.seed, index)
        diff = _diff_pair(spec, args.perturb)
        if diff.identical:
            continue
        divergences += 1
        minimized = minimize_spec(spec, lambda s: _diverges(s, args.perturb))
        bundle_dir = write_bundle(
            args.bundle_dir,
            spec=spec,
            minimized=minimized,
            diff=diff,
            seed=args.seed,
            scenario_index=index,
            perturb=args.perturb,
        )
        if not args.quiet:
            print(f"DIVERGENCE scenario {index} (policy {spec.policy}):")
            print(diff.render())
            print(f"repro bundle: {bundle_dir}")
        if not args.keep_going:
            break
    checked = index + 1 if args.scenarios else 0
    print(
        f"difftest: {checked} scenario(s) checked (seed {args.seed}), "
        f"{divergences} divergence(s)"
    )
    return 1 if divergences else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
