"""Seeded random scenario generation for the differential oracle.

:func:`scenario_spec` maps ``(seed, index)`` deterministically to a
:class:`~repro.simulator.runner.spec.SimulationSpec`: a frozen, picklable
description both engines can execute.  The sampler is built on the
existing synthetic generators (:mod:`repro.workload.synthetic`,
:mod:`repro.carbon.synthetic`) and sweeps the dimensions the paper's
experiments exercise -- workload shape, region trace character, policy
(including purchase-option wrappers), slack factors, candidate
granularity, forecast noise, spot-eviction hazards, checkpointing, and
instance boot overhead.

Scenarios span hundreds of jobs over up-to-a-week horizons: big enough
to exercise the engine's batched fast path (cohort draining, decision
precomputation, segmented window scoring) while the minute-by-minute
reference engine stays tractable, and diverse enough that the oracle's
power still comes from many scenarios rather than any single one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.carbon.synthetic import RegionProfile, generate_carbon_trace
from repro.simulator.runner.spec import SimulationSpec
from repro.units import days, hours
from repro.workload.job import JobQueue, QueueSet
from repro.workload.synthetic import alibaba_like, mustang_like, poisson_exponential
from repro.workload.trace import WorkloadTrace

__all__ = [
    "ScenarioSpace",
    "scenario_spec",
    "federated_scenario_spec",
    "mixed_scenario_spec",
    "DEFAULT_SPACE",
    "SPATIAL_PERIOD",
    "SELECTOR_POOL",
]


#: Policy spec strings the fuzzer samples from: every timing policy the
#: paper evaluates, plus the purchase-option wrappers (Section 4.2.3-4).
POLICY_POOL: tuple[str, ...] = (
    "nowait",
    "allwait-threshold",
    "lowest-slot",
    "lowest-window",
    "carbon-time",
    "wait-awhile",
    "ecovisor",
    "gaia-sr",
    "res-first:nowait",
    "res-first:carbon-time",
    "res-first:lowest-window",
    "spot-first:lowest-slot",
    "spot-first:carbon-time",
    "spot-res:carbon-time",
)

#: Region-selector spec strings the spatial dimension samples from.
SELECTOR_POOL: tuple[str, ...] = (
    "home",
    "lowest-mean-ci",
    "greedy-spatial",
    "spatio-temporal",
)

#: Every ``SPATIAL_PERIOD``-th scenario of the mixed stream is federated.
SPATIAL_PERIOD = 5

#: Seed-sequence stream id separating spatial sampling from the temporal
#: stream (same ``(seed, index)`` must not correlate the two samplers).
_SPATIAL_STREAM = 0x5FA71A1


@dataclass(frozen=True)
class ScenarioSpace:
    """Bounds of the randomized scenario distribution.

    Shrinking these (e.g. ``max_jobs``) trades oracle power for speed;
    the defaults are sized so scenarios regularly hit the engine's
    batched fast path with non-trivial cohorts (hundreds of jobs,
    week-scale horizons) while one scenario stays well under a second
    through both engines.
    """

    max_jobs: int = 400
    min_horizon_days: int = 1
    max_horizon_days: int = 7
    min_mean_ci: float = 80.0
    max_mean_ci: float = 600.0
    slack_factors: tuple[float, ...] = (0.0, 0.25, 1.0, 1.0, 2.0)
    granularities: tuple[int, ...] = (1, 5, 15, 30)
    reserved_pool_sizes: tuple[int, ...] = (0, 0, 8, 16, 32, 64)
    overhead_choices: tuple[int, ...] = (0, 0, 0, 2, 5)
    spot_probability: float = 0.5
    # Spatial (federated) dimension: a federation runs one engine per
    # region, so its workloads are capped tighter than the temporal ones.
    max_federated_jobs: int = 150
    region_counts: tuple[int, ...] = (1, 2, 2, 3, 4)
    migration_choices: tuple[int, ...] = (0, 0, 30, 90, 240)


#: The default sampling space used by the CLI and CI.
DEFAULT_SPACE = ScenarioSpace()


def _clamp_lengths(trace: WorkloadTrace, bound: int) -> WorkloadTrace:
    """Cap job lengths at ``bound`` so every job fits the longest queue."""
    if not len(trace) or max(job.length for job in trace) <= bound:
        return trace
    jobs = [
        replace(job, length=min(job.length, bound)) if job.length > bound else job
        for job in trace.jobs
    ]
    return WorkloadTrace(jobs, name=trace.name, horizon=trace.horizon)


def _sample_workload(
    rng: np.random.Generator, space: ScenarioSpace, seed: int, index: int
) -> WorkloadTrace:
    """Draw one small workload from the synthetic trace families."""
    horizon = int(rng.integers(space.min_horizon_days, space.max_horizon_days + 1)) * days(1)
    family = rng.choice(["poisson", "alibaba", "mustang"], p=[0.5, 0.25, 0.25])
    gen_seed = int(rng.integers(0, 2**31))
    if family == "poisson":
        trace = poisson_exponential(
            mean_interarrival=int(rng.integers(20, 120)),
            mean_length=int(rng.integers(30, hours(8))),
            cpus=int(rng.integers(1, 9)),
            horizon=horizon,
            seed=gen_seed,
            name=f"fuzz-poisson-{seed}-{index}",
        )
    elif family == "alibaba":
        trace = alibaba_like(
            num_jobs=int(rng.integers(5, space.max_jobs + 1)),
            horizon=horizon,
            seed=gen_seed,
            max_cpus=32,
        )
    else:
        trace = mustang_like(
            num_jobs=int(rng.integers(5, space.max_jobs + 1)),
            horizon=horizon,
            seed=gen_seed,
            max_cpus=48,
        )
    if len(trace) > space.max_jobs:
        trace = WorkloadTrace(
            trace.jobs[: space.max_jobs], name=trace.name, horizon=trace.horizon
        )
    return trace


def _sample_queues(rng: np.random.Generator, space: ScenarioSpace) -> QueueSet:
    """The paper's two-queue configuration at a sampled slack factor."""
    slack = float(rng.choice(space.slack_factors))
    return QueueSet(
        (
            JobQueue(name="short", max_length=hours(2), max_wait=int(hours(6) * slack)),
            JobQueue(name="long", max_length=days(3), max_wait=int(hours(24) * slack)),
        )
    )


def _sample_carbon(rng: np.random.Generator, space: ScenarioSpace, seed: int, index: int):
    """Draw one synthetic region trace (diurnal + seasonal + OU noise)."""
    profile = RegionProfile(
        name=f"fuzz-region-{seed}-{index}",
        mean_ci=float(rng.uniform(space.min_mean_ci, space.max_mean_ci)),
        diurnal_amplitude=float(rng.uniform(0.0, 0.5)),
        seasonal_amplitude=float(rng.uniform(0.0, 0.3)),
        noise_sigma=float(rng.uniform(0.0, 0.2)),
        noise_half_life_hours=float(rng.uniform(2.0, 12.0)),
        diurnal_peak_hour=float(rng.uniform(0.0, 24.0)),
    )
    num_hours = int(rng.integers(3 * 24, 8 * 24))
    return generate_carbon_trace(profile, num_hours=num_hours, seed=int(rng.integers(0, 2**31)))


def scenario_spec(
    seed: int, index: int, space: ScenarioSpace = DEFAULT_SPACE
) -> SimulationSpec:
    """Deterministically sample scenario ``index`` of fuzzing run ``seed``.

    Returns a frozen :class:`SimulationSpec`; running it through
    :func:`repro.simulator.simulation.run_simulation` and
    :func:`repro.simulator.reference.run_reference` must yield results
    that agree under :func:`repro.difftest.diff.compare_results`.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    queues = _sample_queues(rng, space)
    workload = _clamp_lengths(
        _sample_workload(rng, space, seed, index), queues.longest.max_length
    )
    carbon_trace = _sample_carbon(rng, space, seed, index)
    policy = str(rng.choice(POLICY_POOL))

    eviction_kind = rng.choice(["none", "hourly", "diurnal"], p=[0.4, 0.4, 0.2])
    eviction_model = None
    if eviction_kind == "hourly":
        from repro.cluster.spot import HourlyHazard

        eviction_model = HourlyHazard(float(rng.uniform(0.002, 0.08)))
    elif eviction_kind == "diurnal":
        from repro.cluster.spot import DiurnalHazard

        eviction_model = DiurnalHazard(
            float(rng.uniform(0.002, 0.05)),
            amplitude=float(rng.uniform(0.0, 0.9)),
            peak_hour=float(rng.uniform(0.0, 24.0)),
        )

    checkpointing = None
    retry_spot = False
    if rng.random() < 0.4:
        from repro.cluster.spot import CheckpointConfig

        checkpointing = CheckpointConfig(
            interval=int(rng.integers(15, 121)), overhead=int(rng.integers(1, 6))
        )
        retry_spot = bool(rng.random() < 0.5)

    forecast_sigma = 0.0
    forecast_seed = 0
    if rng.random() < 0.3:
        forecast_sigma = float(rng.uniform(0.02, 0.3))
        forecast_seed = int(rng.integers(0, 2**31))

    return SimulationSpec.build(
        workload=workload,
        carbon=carbon_trace,
        policy=policy,
        reserved_cpus=int(rng.choice(space.reserved_pool_sizes)),
        queues=queues,
        eviction_model=eviction_model,
        forecast_sigma=forecast_sigma,
        forecast_seed=forecast_seed,
        granularity=int(rng.choice(space.granularities)),
        spot_seed=int(rng.integers(0, 2**31)),
        checkpointing=checkpointing,
        retry_spot=retry_spot,
        instance_overhead_minutes=int(rng.choice(space.overhead_choices)),
    )


def federated_scenario_spec(seed: int, index: int, space: ScenarioSpace = DEFAULT_SPACE):
    """Deterministically sample spatial scenario ``index`` of run ``seed``.

    Returns a frozen :class:`~repro.federation.spec.FederatedSpec`
    sampling the dimensions *both* federated engines support: region
    count and CI character, selector, temporal policy, migration delay,
    per-region reserved pools, slack, and granularity.  Evictions,
    forecast noise, and checkpointing are per-engine knobs outside the
    federated spec and are not sampled here.
    """
    from repro.federation.spec import FederatedSpec
    from repro.federation.simulation import FederatedRegion

    rng = np.random.default_rng(np.random.SeedSequence([seed, index, _SPATIAL_STREAM]))
    queues = _sample_queues(rng, space)
    workload = _clamp_lengths(
        _sample_workload(rng, space, seed, index), queues.longest.max_length
    )
    if len(workload) > space.max_federated_jobs:
        workload = WorkloadTrace(
            workload.jobs[: space.max_federated_jobs],
            name=workload.name,
            horizon=workload.horizon,
        )
    num_regions = int(rng.choice(space.region_counts))
    regions = [
        FederatedRegion(
            name=f"fuzz-fed-{seed}-{index}-{position}",
            carbon=_sample_carbon(rng, space, seed, index * 16 + position),
            reserved_cpus=int(rng.choice(space.reserved_pool_sizes)),
        )
        for position in range(num_regions)
    ]
    return FederatedSpec.build(
        workload=workload,
        regions=regions,
        selector=str(rng.choice(SELECTOR_POOL)),
        policy=str(rng.choice(POLICY_POOL)),
        home=regions[int(rng.integers(0, num_regions))].name,
        queues=queues,
        migration_minutes=int(rng.choice(space.migration_choices)),
        granularity=int(rng.choice(space.granularities)),
        spot_seed=int(rng.integers(0, 2**31)),
    )


def mixed_scenario_spec(seed: int, index: int, space: ScenarioSpace = DEFAULT_SPACE):
    """The fuzzer's combined stream: temporal plus the spatial dimension.

    Every :data:`SPATIAL_PERIOD`-th scenario is a
    :class:`~repro.federation.spec.FederatedSpec`; the rest are plain
    :class:`SimulationSpec` scenarios from :func:`scenario_spec`.
    """
    if index % SPATIAL_PERIOD == SPATIAL_PERIOD - 1:
        return federated_scenario_spec(seed, index, space)
    return scenario_spec(seed, index, space)
