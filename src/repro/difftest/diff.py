"""Tolerant field-by-field comparison of two simulation results.

The differential contract between the optimized and reference engines:

* every **integer scheduling outcome** -- first start, finish, eviction
  count, and the exact usage-interval set (start, end, cpus, purchase
  option) -- must match bit for bit;
* every **accounted float** (carbon, energy, cost, baseline, lost work,
  checkpoint and provisioning overhead) must agree within a per-field
  tolerance, because the engines accumulate in different orders (batched
  prefix sums vs. scalar minute loops).

Schedule mismatches are diffed through the observability layer's
:func:`repro.obs.analyze.diff_traces` over integer-only wire events, so
a divergence report looks exactly like a ``python -m repro.obs diff``
first-divergence record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.analyze import diff_traces, render_diff
from repro.simulator.results import JobRecord, SimulationResult

__all__ = [
    "FIELD_TOLERANCES",
    "FieldDelta",
    "ResultDiff",
    "schedule_events",
    "compare_results",
]


#: Per-field (relative, absolute) tolerances for accounted floats.  The
#: two engines sum identical per-minute quantities in different orders,
#: so disagreement beyond a few ulps of the total indicates a real bug.
FIELD_TOLERANCES: dict[str, tuple[float, float]] = {
    "carbon_g": (1e-6, 1e-6),
    "energy_kwh": (1e-6, 1e-9),
    "usage_cost": (1e-6, 1e-9),
    "baseline_carbon_g": (1e-6, 1e-6),
    "lost_cpu_minutes": (1e-9, 1e-9),
    "checkpoint_overhead_minutes": (1e-9, 1e-9),
    "provisioning_cpu_minutes": (1e-9, 1e-9),
}


@dataclass(frozen=True)
class FieldDelta:
    """One accounted float that disagrees beyond its tolerance."""

    job_id: int
    field: str
    reference: float
    optimized: float

    @property
    def relative_error(self) -> float:
        """The disagreement relative to the larger magnitude."""
        scale = max(abs(self.reference), abs(self.optimized), 1e-300)
        return abs(self.reference - self.optimized) / scale


@dataclass
class ResultDiff:
    """Outcome of comparing a reference result against an optimized one."""

    identical: bool
    field_deltas: list[FieldDelta] = field(default_factory=list)
    schedule_diff: dict[str, Any] = field(default_factory=dict)
    first_diverging_minute: int | None = None

    def render(self) -> str:
        """Human-readable divergence report (empty string if identical)."""
        if self.identical:
            return ""
        lines = []
        if not self.schedule_diff.get("identical", True):
            lines.append("schedule divergence (reference=a, optimized=b):")
            lines.append(render_diff(self.schedule_diff))
        if self.field_deltas:
            lines.append("accounting deltas beyond tolerance:")
            for delta in self.field_deltas[:20]:
                lines.append(
                    f"  job {delta.job_id} {delta.field}: "
                    f"reference={delta.reference!r} optimized={delta.optimized!r} "
                    f"(rel {delta.relative_error:.3e})"
                )
            if len(self.field_deltas) > 20:
                lines.append(f"  ... and {len(self.field_deltas) - 20} more")
        if self.first_diverging_minute is not None:
            lines.append(f"first diverging minute: {self.first_diverging_minute}")
        return "\n".join(lines)


def schedule_events(result: SimulationResult) -> list[dict[str, Any]]:
    """A result's integer scheduling outcome as wire-form events.

    One ``job_schedule`` event per record plus one ``usage_interval``
    event per usage interval, all integer-valued, in record order -- the
    form :func:`repro.obs.analyze.diff_traces` consumes.
    """
    events: list[dict[str, Any]] = []
    for record in result.records:
        events.append(
            {
                "type": "job_schedule",
                "job_id": record.job_id,
                "queue": record.queue,
                "arrival": record.arrival,
                "length": record.length,
                "cpus": record.cpus,
                "first_start": record.first_start,
                "finish": record.finish,
                "evictions": record.evictions,
            }
        )
        for interval in record.usage:
            events.append(
                {
                    "type": "usage_interval",
                    "job_id": record.job_id,
                    "start": interval.start,
                    "end": interval.end,
                    "cpus": interval.cpus,
                    "option": interval.option.value,
                }
            )
    return events


def _within_tolerance(name: str, reference: float, optimized: float) -> bool:
    """Whether one accounted float pair agrees within its field tolerance."""
    rel, abs_tol = FIELD_TOLERANCES[name]
    scale = max(abs(reference), abs(optimized))
    return abs(reference - optimized) <= max(abs_tol, rel * scale)


def _event_minute(event: dict[str, Any] | None) -> int | None:
    """The earliest simulation minute a wire event refers to."""
    if event is None:
        return None
    for key in ("first_start", "start", "arrival"):
        if key in event:
            return int(event[key])
    return None


def _records_by_id(result: SimulationResult) -> dict[int, JobRecord]:
    """Index a result's records by job id."""
    return {record.job_id: record for record in result.records}


def compare_results(reference: SimulationResult, optimized: SimulationResult) -> ResultDiff:
    """Diff two results under the differential contract.

    ``reference`` plays the role of trace *a* and ``optimized`` of trace
    *b* in the embedded schedule diff.
    """
    schedule_diff = diff_traces(schedule_events(reference), schedule_events(optimized))

    deltas: list[FieldDelta] = []
    ref_records = _records_by_id(reference)
    opt_records = _records_by_id(optimized)
    for job_id in sorted(ref_records.keys() & opt_records.keys()):
        ref_record, opt_record = ref_records[job_id], opt_records[job_id]
        for name in FIELD_TOLERANCES:
            ref_value = float(getattr(ref_record, name))
            opt_value = float(getattr(opt_record, name))
            if not _within_tolerance(name, ref_value, opt_value):
                deltas.append(
                    FieldDelta(
                        job_id=job_id,
                        field=name,
                        reference=ref_value,
                        optimized=opt_value,
                    )
                )

    identical = schedule_diff["identical"] and not deltas
    first_minute: int | None = None
    if not identical:
        candidates: list[int] = []
        divergence = schedule_diff.get("first_divergence")
        if divergence is not None:
            for side in ("a", "b"):
                minute = _event_minute(divergence.get(side))
                if minute is not None:
                    candidates.append(minute)
        for delta in deltas:
            record = ref_records.get(delta.job_id) or opt_records.get(delta.job_id)
            if record is not None:
                starts = [interval.start for interval in record.usage]
                candidates.append(min(starts) if starts else record.arrival)
        if candidates:
            first_minute = min(candidates)
    return ResultDiff(
        identical=identical,
        field_deltas=deltas,
        schedule_diff=schedule_diff,
        first_diverging_minute=first_minute,
    )
