"""Module entry point: ``python -m repro.difftest``."""

from __future__ import annotations

import sys

from repro.difftest.cli import main

__all__: list[str] = []

if __name__ == "__main__":
    sys.exit(main())
