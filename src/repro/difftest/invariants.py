"""Metamorphic invariants: paper laws as executable checks.

Each check is a pure function that runs one or more simulations and
raises :class:`AssertionError` when the corresponding law is violated.
The :data:`INVARIANTS` registry maps check names to the paper claim they
encode (the table in ``docs/testing.md`` mirrors it), and the hypothesis
suite in ``tests/difftest/test_metamorphic.py`` drives every check over
randomized inputs.

Soundness notes (why the preconditions are what they are):

* *zero-slack collapse* holds for every policy only without evictions
  and checkpointing, because the law speaks about timing, not purchase
  options.
* *carbon scaling* uses power-of-two factors so that scaling the trace
  is exact in floating point; every policy's comparisons then order
  identically and decisions cannot move.
* *slack monotonicity* requires ``granularity=1`` (candidate grids are
  supersets as W widens) and holds for the carbon-aware policies whose
  objective is the window footprint itself; Lowest-Slot optimizes a
  single slot, not the execution window, and is excluded.  For the
  average-length policies the law additionally needs the length
  estimate to be exact (uniform per-queue lengths) -- otherwise the
  *realized* footprint drifts from the *optimized* one by the
  estimation error.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.trace import CarbonIntensityTrace
from repro.cluster.energy import DEFAULT_ENERGY, EnergyModel
from repro.cluster.pricing import PurchaseOption
from repro.simulator.results import SimulationResult
from repro.simulator.simulation import run_simulation
from repro.units import MINUTES_PER_HOUR, days, hours
from repro.workload.job import JobQueue, QueueSet
from repro.workload.trace import WorkloadTrace

__all__ = [
    "INVARIANTS",
    "check_zero_slack_collapses_to_nowait",
    "check_carbon_scaling",
    "check_slack_monotonicity",
    "check_cost_option_ordering",
    "check_energy_conservation",
    "check_federation_single_region",
    "check_migration_delay_neutrality",
    "check_scaling_greedy_dominance",
    "check_scaling_feasibility",
    "slack_queue_set",
]

#: Carbon-aware policies whose objective is the execution-window
#: footprint; for these, widening W can only grow the candidate set.
SLACK_MONOTONE_POLICIES: tuple[str, ...] = ("lowest-window", "carbon-time", "wait-awhile")


def slack_queue_set(slack_factor: float) -> QueueSet:
    """The paper's two-queue configuration with waits scaled by a factor."""
    return QueueSet(
        (
            JobQueue(
                name="short",
                max_length=hours(2),
                max_wait=int(hours(6) * slack_factor),
            ),
            JobQueue(
                name="long",
                max_length=days(3),
                max_wait=int(hours(24) * slack_factor),
            ),
        )
    )


def _timing(result: SimulationResult) -> list[tuple[int, int, int]]:
    """The pure timing outcome: (job_id, first_start, finish) per record."""
    return [
        (record.job_id, record.first_start, record.finish)
        for record in result.records
    ]


def check_zero_slack_collapses_to_nowait(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: str,
    granularity: int = 5,
) -> None:
    """Zero slack collapses every waiting policy to the NoWait schedule.

    With ``W = 0`` no policy has room to shift or pause work, so the
    timing outcome must equal NoWait's: every job starts at its arrival
    and finishes ``length`` minutes later.  (Paper Section 5.1: waiting
    policies trade *slack* for carbon; no slack, no trade.)  Evictions
    and checkpointing are excluded -- the law is about timing, and both
    perturb finishes independently of the policy.
    """
    queues = slack_queue_set(0.0)
    result = run_simulation(
        workload, carbon, policy, queues=queues, granularity=granularity
    )
    nowait = run_simulation(
        workload, carbon, "nowait", queues=queues, granularity=granularity
    )
    assert _timing(result) == _timing(nowait), (
        f"{policy} deviates from NoWait at zero slack"
    )
    for record in result.records:
        assert record.first_start == record.arrival
        assert record.finish == record.arrival + record.length


def check_carbon_scaling(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: str,
    scale: float,
    granularity: int = 5,
    reserved_cpus: int = 0,
) -> None:
    """Scaling the carbon trace by ``k`` scales footprints by exactly ``k``.

    Carbon intensity enters every policy objective linearly, so a
    uniformly scaled trace reorders nothing: decisions (and therefore
    schedules, energy, and cost) are unchanged while every carbon field
    scales by ``k``.  (The paper normalizes all carbon results against
    NoWait -- Figs. 8-13 -- which presumes exactly this homogeneity.)
    ``scale`` should be a power of two so trace scaling is float-exact.
    """
    base = run_simulation(
        workload, carbon, policy,
        granularity=granularity, reserved_cpus=reserved_cpus,
    )
    scaled_trace = CarbonIntensityTrace(
        carbon.hourly * scale, name=f"{carbon.name}-x{scale}"
    )
    scaled = run_simulation(
        workload, scaled_trace, policy,
        granularity=granularity, reserved_cpus=reserved_cpus,
    )
    assert _timing(base) == _timing(scaled), (
        f"{policy}: decisions moved under carbon scaling x{scale}"
    )
    for base_record, scaled_record in zip(base.records, scaled.records):
        assert base_record.usage == scaled_record.usage
        for name in ("carbon_g", "baseline_carbon_g"):
            expected = getattr(base_record, name) * scale
            actual = getattr(scaled_record, name)
            assert abs(actual - expected) <= 1e-9 * max(1.0, abs(expected)), (
                f"{name} scaled by {actual / max(getattr(base_record, name), 1e-300)}, "
                f"expected {scale}"
            )
        assert scaled_record.energy_kwh == base_record.energy_kwh
        assert scaled_record.usage_cost == base_record.usage_cost


def check_slack_monotonicity(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: str,
    slack_factors: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
) -> None:
    """Widening slack never increases carbon for carbon-aware policies.

    At ``granularity=1`` the candidate start set for a wider W is a
    superset of the narrower one, so a policy minimizing its window
    footprint can only do at least as well (paper Fig. 9: savings grow
    monotonically with the waiting bound).  Applies to
    :data:`SLACK_MONOTONE_POLICIES`; Lowest-Slot optimizes one slot
    rather than the window and Ecovisor's threshold is recomputed per
    window, so neither is covered by the law.

    Precondition: the law speaks about the footprint the policy
    *optimizes*.  Wait Awhile knows exact lengths, but Lowest-Window and
    Carbon-Time optimize the queue-average window Ĵ; when Ĵ != J the
    realized footprint can rise by the estimation error even as the
    optimized one falls.  Callers must therefore pass workloads whose
    per-queue lengths are uniform (so Ĵ == J exactly).
    """
    assert policy in SLACK_MONOTONE_POLICIES, f"{policy} is not slack-monotone"
    previous_carbon_g: float | None = None
    for slack_factor in sorted(slack_factors):
        result = run_simulation(
            workload, carbon, policy,
            queues=slack_queue_set(slack_factor), granularity=1,
        )
        total_carbon_g = result.total_carbon_g
        if previous_carbon_g is not None:
            tolerance = 1e-9 * max(1.0, previous_carbon_g)
            assert total_carbon_g <= previous_carbon_g + tolerance, (
                f"{policy}: carbon rose from {previous_carbon_g} to "
                f"{total_carbon_g} when slack widened to x{slack_factor}"
            )
        previous_carbon_g = total_carbon_g


def check_cost_option_ordering(
    workload: WorkloadTrace, carbon: CarbonIntensityTrace
) -> None:
    """Spot <= reserved <= on-demand cost at equal schedules.

    The paper's pricing (Section 2.3): spot at 20% and reserved at 40%
    of the on-demand rate.  Running the *same* NoWait schedule entirely
    on each option must realize that ordering: metered spot cost <= the
    reserved-rate cost of the same CPU-minutes <= metered on-demand
    cost.  Reserved usage itself is never metered (covered upfront).
    """
    from repro.policies.registry import make_policy

    on_demand = run_simulation(workload, carbon, "nowait", reserved_cpus=0)
    # Raise the spot eligibility bound to the longest queue so *every*
    # job runs on spot, not just the short queue (paper default J^max=2h).
    all_spot = make_policy("spot-first:nowait", spot_max_length=days(3))
    spot = run_simulation(workload, carbon, all_spot, reserved_cpus=0)
    peak = int(np.max(workload.demand_profile())) if len(workload) else 0
    reserved = run_simulation(workload, carbon, "nowait", reserved_cpus=peak)

    assert _timing(on_demand) == _timing(spot) == _timing(reserved), (
        "schedules differ between purchase options"
    )
    cpu_minutes = sum(
        interval.cpu_minutes
        for record in on_demand.records
        for interval in record.usage
    )
    pricing = on_demand.pricing
    reserved_rate_cost = pricing.reserved_hourly * cpu_minutes / MINUTES_PER_HOUR
    tolerance = 1e-9 * max(1.0, on_demand.metered_cost)
    assert spot.metered_cost <= reserved_rate_cost + tolerance
    assert reserved_rate_cost <= on_demand.metered_cost + tolerance
    assert reserved.metered_cost == 0.0, "reserved usage must not be metered"
    expected_spot = on_demand.metered_cost * pricing.spot_fraction
    assert abs(spot.metered_cost - expected_spot) <= tolerance


def check_energy_conservation(
    result: SimulationResult,
    energy: EnergyModel = DEFAULT_ENERGY,
    instance_overhead_minutes: int = 0,
) -> None:
    """Per-job energy recomputed from usage sums to the cluster total.

    Energy is attributed by actual usage for every purchase option
    (paper Section 4.1): each record's ``energy_kwh`` must equal the
    scalar integral of its usage intervals (plus boot overhead for
    elastic allocations), and the cluster total must be their sum.
    """
    recomputed_total_kwh = 0.0
    for record in result.records:
        kw = energy.active_kw(record.cpus)
        expected_kwh = 0.0
        for interval in record.usage:
            expected_kwh += kw * (interval.end - interval.start) / MINUTES_PER_HOUR
            if (
                instance_overhead_minutes
                and interval.option is not PurchaseOption.RESERVED
            ):
                expected_kwh += energy.energy_kwh(record.cpus, instance_overhead_minutes)
        tolerance = 1e-9 * max(1.0, expected_kwh)
        assert abs(record.energy_kwh - expected_kwh) <= tolerance, (
            f"job {record.job_id}: energy {record.energy_kwh} != usage "
            f"integral {expected_kwh}"
        )
        recomputed_total_kwh += record.energy_kwh
    tolerance = 1e-9 * max(1.0, recomputed_total_kwh)
    assert abs(result.total_energy_kwh - recomputed_total_kwh) <= tolerance


def check_federation_single_region(
    workload: WorkloadTrace,
    carbon: CarbonIntensityTrace,
    policy: str,
    granularity: int = 5,
    reserved_cpus: int = 0,
) -> None:
    """A single-region federation degenerates to the plain engine, bit for bit.

    With one region every selector places every job at home unshifted,
    so the federated runner must execute the *same* engine call as
    :func:`~repro.simulator.simulation.run_simulation` -- the region's
    :meth:`SimulationResult.digest` (which hashes every record field and
    every float via ``repr``) must be identical, not merely tolerant.
    """
    from repro.federation.selectors import SELECTOR_SPECS, make_selector
    from repro.federation.simulation import FederatedRegion, run_federated_simulation

    plain = run_simulation(
        workload, carbon, policy,
        granularity=granularity, reserved_cpus=reserved_cpus,
    )
    region = FederatedRegion(
        name=carbon.name or "only", carbon=carbon, reserved_cpus=reserved_cpus
    )
    for selector_spec in SELECTOR_SPECS:
        federated = run_federated_simulation(
            workload,
            [region],
            make_selector(selector_spec, region.name),
            policy,
            granularity=granularity,
        )
        assert federated.placements == {region.name: len(workload)}
        assert federated.migrated_jobs == 0
        only = federated.per_region[region.name]
        assert only.digest() == plain.digest(), (
            f"selector {selector_spec}: single-region federation diverged "
            f"from the plain engine"
        )


def check_migration_delay_neutrality(
    workload: WorkloadTrace,
    regions,
    policy: str,
    migration_minutes: int,
    granularity: int = 5,
) -> None:
    """The migration delay is accounting-neutral for home placements.

    Data staging only shifts the arrival of jobs placed *off* home, so
    under the home selector (zero off-home placements) any migration
    delay must leave the merged outcome digest-identical to the
    zero-delay run.  Each region's trace is tiled a little further to
    keep the delay's slack, which must not move any decision: candidate
    windows are bounded by the queues' waiting budgets, already covered
    by the undelayed preparation.
    """
    from repro.federation.selectors import make_selector
    from repro.federation.simulation import run_federated_simulation

    home = regions[0].name
    base = run_federated_simulation(
        workload, list(regions), make_selector("home", home), policy,
        home=home, migration_minutes=0, granularity=granularity,
    )
    delayed = run_federated_simulation(
        workload, list(regions), make_selector("home", home), policy,
        home=home, migration_minutes=migration_minutes, granularity=granularity,
    )
    assert delayed.migrated_jobs == 0, "home selector must not migrate"
    assert base.digest() == delayed.digest(), (
        f"{policy}: migration delay {migration_minutes} changed a run with "
        "only home placements"
    )


def check_scaling_greedy_dominance(
    job,
    carbon: CarbonIntensityTrace,
    speedup=None,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> None:
    """The greedy scaling plan never beats -- is never beaten by -- any
    fixed allocation, carbon-wise.

    Energy is linear in CPUs, so under a concave speedup the greedy plan
    equals the fractional-LP optimum up to one minute of ceil rounding
    on its most expensive unit; every feasible fixed (constant-CPU,
    run-on-arrival) allocation is a feasible point of that LP.  The
    greedy plan's carbon must therefore be at most the fixed plan's plus
    one cpu-minute of carbon at the trace maximum.
    """
    from repro.scaling.planner import fixed_allocation_plan, plan_carbon_scaling
    from repro.scaling.speedup import LinearSpeedup

    speedup = speedup if speedup is not None else LinearSpeedup()
    for cpus in range(1, job.max_cpus + 1):
        rate = speedup.rate(cpus)
        if rate <= 0:
            continue
        fixed = fixed_allocation_plan(job, carbon, cpus, energy=energy, speedup=speedup)
        deadline = fixed.completion_minute
        greedy = plan_carbon_scaling(
            job, carbon, deadline, speedup=speedup, energy=energy
        )
        max_ci = float(np.max(carbon.hourly[: -(-deadline // MINUTES_PER_HOUR)]))
        rounding_slack = max_ci * energy.active_kw(1) / MINUTES_PER_HOUR
        tolerance = rounding_slack + 1e-9 * max(1.0, fixed.carbon_g)
        assert greedy.carbon_g <= fixed.carbon_g + tolerance, (
            f"greedy plan emits {greedy.carbon_g:.6f} g, fixed {cpus}-CPU "
            f"allocation only {fixed.carbon_g:.6f} g (deadline {deadline})"
        )


def check_scaling_feasibility(
    job,
    carbon: CarbonIntensityTrace,
    deadline: int,
    speedup=None,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> None:
    """Every plan meets its work, deadline, and CPU-cap constraints.

    The planner either raises :class:`SchedulingError` (infeasible) or
    returns a plan that finishes the work by the deadline inside the
    CPU cap, with non-overlapping, ordered allocation segments.
    """
    from repro.scaling.planner import plan_carbon_scaling
    from repro.scaling.speedup import LinearSpeedup

    speedup = speedup if speedup is not None else LinearSpeedup()
    plan = plan_carbon_scaling(job, carbon, deadline, speedup=speedup, energy=energy)
    assert plan.work_done(speedup) + 1e-6 >= job.work, (
        f"plan accomplishes {plan.work_done(speedup)} of {job.work} work-minutes"
    )
    assert plan.completion_minute <= deadline
    assert plan.peak_cpus <= job.max_cpus
    previous_end = None
    for start, end, cpus in sorted(plan.allocation):
        assert job.arrival <= start < end <= deadline
        assert 1 <= cpus <= job.max_cpus
        assert previous_end is None or start >= previous_end, (
            "allocation segments overlap"
        )
        previous_end = end


#: Registry of metamorphic invariants with the paper claim each encodes.
#: ``docs/testing.md`` renders this table; the hypothesis suite drives
#: every check.
INVARIANTS: dict[str, dict[str, object]] = {
    "zero-slack-collapse": {
        "claim": "Waiting policies trade slack for carbon; with W=0 every "
        "policy's timing equals NoWait (paper Section 5.1, Table 1).",
        "check": check_zero_slack_collapses_to_nowait,
    },
    "carbon-scaling": {
        "claim": "Carbon enters every objective linearly; scaling the CI "
        "trace by k leaves decisions unchanged and scales footprints by k "
        "(normalization premise of Figs. 8-13).",
        "check": check_carbon_scaling,
    },
    "slack-monotonicity": {
        "claim": "Widening the waiting bound never increases carbon for "
        "window-optimizing carbon-aware policies (paper Fig. 9).",
        "check": check_slack_monotonicity,
    },
    "cost-option-ordering": {
        "claim": "Spot (20%) <= reserved (40%) <= on-demand (100%) pricing "
        "at equal schedules; reserved usage is never metered (Section 2.3).",
        "check": check_cost_option_ordering,
    },
    "energy-conservation": {
        "claim": "Energy and carbon are attributed by actual usage; per-job "
        "energy equals the usage integral and sums to the cluster total "
        "(Section 4.1).",
        "check": check_energy_conservation,
    },
    "federation-single-region": {
        "claim": "Spatial shifting degenerates gracefully: a one-region "
        "federation is bit-identical (result digest) to the plain engine "
        "under every selector (spatial future work, Section 9).",
        "check": check_federation_single_region,
    },
    "migration-delay-neutrality": {
        "claim": "Data-staging delay prices only off-home placements; with "
        "every job at home, any migration delay leaves the merged outcome "
        "digest-identical to the zero-delay run.",
        "check": check_migration_delay_neutrality,
    },
    "scaling-greedy-dominance": {
        "claim": "Under concave speedups the greedy scaling plan never "
        "exceeds any fixed allocation's carbon (beyond one cpu-minute of "
        "ceil rounding) -- the CarbonScaler exchange argument (Section 9).",
        "check": check_scaling_greedy_dominance,
    },
    "scaling-feasibility": {
        "claim": "Scaling plans always meet their work, deadline, and "
        "CPU-cap constraints or the planner raises instead of emitting an "
        "infeasible plan.",
        "check": check_scaling_feasibility,
    },
}
