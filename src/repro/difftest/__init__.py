"""Differential-testing oracle for the simulation engine.

Cross-checks the optimized engine (:class:`repro.simulator.engine.Engine`)
against the deliberately simple reference engine
(:mod:`repro.simulator.reference`) over randomized scenarios, and encodes
the paper's metamorphic laws as executable invariants.

Entry points:

* ``python -m repro.difftest`` -- the scenario fuzzer CLI (temporal plus
  the federated *spatial* dimension);
* :func:`repro.difftest.scenarios.scenario_spec` /
  :func:`repro.difftest.scenarios.federated_scenario_spec` -- seeded
  scenario generation;
* :func:`repro.difftest.diff.compare_results` /
  :func:`repro.difftest.federated.compare_federated` -- tolerant
  field-by-field result comparison;
* :mod:`repro.difftest.invariants` -- the metamorphic invariant suite
  (each check is traceable to a paper claim; see ``docs/testing.md``).
"""

from __future__ import annotations

from repro.difftest.diff import FieldDelta, ResultDiff, compare_results
from repro.difftest.federated import FederatedDiff, compare_federated
from repro.difftest.scenarios import (
    ScenarioSpace,
    federated_scenario_spec,
    mixed_scenario_spec,
    scenario_spec,
)

__all__ = [
    "FieldDelta",
    "ResultDiff",
    "compare_results",
    "FederatedDiff",
    "compare_federated",
    "ScenarioSpace",
    "scenario_spec",
    "federated_scenario_spec",
    "mixed_scenario_spec",
]
