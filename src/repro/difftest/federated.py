"""Differential comparison of federated results.

A federated run diverges when either the *routing* outcome (placements,
migrated count, home, selector) or any *region's* simulation outcome
differs.  Region results are diffed under the standard differential
contract of :func:`repro.difftest.diff.compare_results` -- bit-exact
integer schedules, tolerance-bounded accounted floats -- so a federated
divergence report is a set of per-region reports plus the routing
deltas.

:class:`FederatedDiff` exposes the same surface the bundle writer reads
from :class:`~repro.difftest.diff.ResultDiff` (``identical``,
``field_deltas``, ``schedule_diff``, ``first_diverging_minute``,
``render``), so divergence bundles work unchanged for federated specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.difftest.diff import FieldDelta, ResultDiff, compare_results

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.simulation import FederatedResult

__all__ = ["FederatedDiff", "compare_federated"]


@dataclass
class FederatedDiff:
    """Outcome of comparing a reference federated run against an optimized one."""

    identical: bool
    #: Routing-level disagreements (placements, migrated count, home, ...).
    routing_problems: list[str] = field(default_factory=list)
    #: Per-region diffs, keyed by region name (only regions present on
    #: both sides are compared; missing regions are routing problems).
    region_diffs: dict[str, ResultDiff] = field(default_factory=dict)

    @property
    def field_deltas(self) -> list[FieldDelta]:
        return [
            delta
            for name in sorted(self.region_diffs)
            for delta in self.region_diffs[name].field_deltas
        ]

    @property
    def schedule_diff(self) -> dict[str, Any]:
        for name in sorted(self.region_diffs):
            diff = self.region_diffs[name].schedule_diff
            if diff and not diff.get("identical", True):
                return diff
        return {"identical": True}

    @property
    def first_diverging_minute(self) -> int | None:
        minutes = [
            diff.first_diverging_minute
            for diff in self.region_diffs.values()
            if diff.first_diverging_minute is not None
        ]
        return min(minutes) if minutes else None

    def render(self) -> str:
        """Human-readable divergence report (empty string if identical)."""
        if self.identical:
            return ""
        lines = []
        for problem in self.routing_problems:
            lines.append(f"routing: {problem}")
        for name in sorted(self.region_diffs):
            diff = self.region_diffs[name]
            if diff.identical:
                continue
            lines.append(f"region {name}:")
            lines.extend(f"  {line}" for line in diff.render().splitlines())
        return "\n".join(lines)


def compare_federated(
    reference: "FederatedResult", optimized: "FederatedResult"
) -> FederatedDiff:
    """Diff two federated results under the differential contract.

    Routing metadata (selector, home, placements, migrated count) must
    match exactly; each shared region's result must satisfy
    :func:`~repro.difftest.diff.compare_results`.
    """
    problems: list[str] = []
    for name in ("selector_name", "policy_name", "home"):
        ref_value = getattr(reference, name)
        opt_value = getattr(optimized, name)
        if ref_value != opt_value:
            problems.append(f"{name}: reference={ref_value!r} optimized={opt_value!r}")
    if reference.placements != optimized.placements:
        problems.append(
            f"placements: reference={reference.placements!r} "
            f"optimized={optimized.placements!r}"
        )
    if reference.migrated_jobs != optimized.migrated_jobs:
        problems.append(
            f"migrated_jobs: reference={reference.migrated_jobs} "
            f"optimized={optimized.migrated_jobs}"
        )
    ref_regions = set(reference.per_region)
    opt_regions = set(optimized.per_region)
    for name in sorted(ref_regions ^ opt_regions):
        side = "reference" if name in ref_regions else "optimized"
        problems.append(f"region {name!r} has results only on the {side} side")

    region_diffs = {
        name: compare_results(reference.per_region[name], optimized.per_region[name])
        for name in sorted(ref_regions & opt_regions)
    }
    identical = not problems and all(diff.identical for diff in region_diffs.values())
    return FederatedDiff(
        identical=identical,
        routing_problems=problems,
        region_diffs=region_diffs,
    )
