"""Minimized repro bundles for oracle divergences.

When the fuzzer finds a scenario where the engines disagree, it (1)
shrinks the workload with a delta-debugging pass that keeps only jobs
necessary to reproduce the divergence, and (2) writes a self-contained
bundle directory:

* ``bundle.json`` -- spec digests, fuzzer seed and scenario index, the
  first diverging minute, per-field deltas, and the schedule diff in the
  observability wire form;
* ``spec.pkl`` -- the minimized :class:`SimulationSpec`, picklable and
  re-runnable with ``SimulationSpec.run()`` / ``run_reference``;
* ``report.txt`` -- the human-readable divergence report.

``docs/testing.md`` walks through interpreting a bundle.
"""

from __future__ import annotations

import json
import pickle
from collections.abc import Callable
from dataclasses import replace
from pathlib import Path

from repro.difftest.diff import ResultDiff
from repro.simulator.runner.spec import FrozenWorkload, SimulationSpec

__all__ = ["spec_with_jobs", "minimize_spec", "write_bundle"]


def spec_with_jobs(
    spec: SimulationSpec, jobs: tuple[tuple[int, int, int, int, str], ...]
) -> SimulationSpec:
    """A copy of ``spec`` whose workload holds only ``jobs``.

    ``dataclasses.replace`` drops the cached digest, so the copy's
    :meth:`SimulationSpec.digest` is recomputed over the subset.
    """
    workload = FrozenWorkload(
        jobs=jobs, name=spec.workload.name, horizon=spec.workload.horizon
    )
    return replace(spec, workload=workload)


def minimize_spec(
    spec: SimulationSpec,
    still_diverges: Callable[[SimulationSpec], bool],
    max_probes: int = 200,
) -> SimulationSpec:
    """Shrink a diverging spec's workload, ddmin-style.

    Repeatedly tries dropping job chunks (halves first, then ever finer
    slices down to single jobs), keeping any removal after which
    ``still_diverges`` holds.  Removing jobs shifts queue-average length
    estimates, so some subsets stop diverging -- those removals are
    simply not taken.  ``max_probes`` bounds total oracle invocations.
    """
    jobs = spec.workload.jobs
    probes = 0
    chunk = max(1, len(jobs) // 2)
    while chunk >= 1 and probes < max_probes:
        shrunk = False
        start = 0
        while start < len(jobs) and probes < max_probes:
            candidate = jobs[:start] + jobs[start + chunk:]
            if not candidate:
                start += chunk
                continue
            probes += 1
            if still_diverges(spec_with_jobs(spec, candidate)):
                jobs = candidate
                shrunk = True
                # keep start in place: the next chunk slid into position
            else:
                start += chunk
        if not shrunk or chunk == 1:
            if chunk == 1:
                break
        chunk = max(1, chunk // 2)
    return spec_with_jobs(spec, jobs)


def write_bundle(
    directory: str | Path,
    *,
    spec: SimulationSpec,
    minimized: SimulationSpec,
    diff: ResultDiff,
    seed: int,
    scenario_index: int,
    perturb: str | None = None,
) -> Path:
    """Write one divergence's repro bundle; returns the bundle directory."""
    bundle_dir = Path(directory) / f"divergence-s{seed}-i{scenario_index}"
    bundle_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "seed": seed,
        "scenario_index": scenario_index,
        "policy": spec.policy,
        "spec_digest": spec.digest(),
        "minimized_digest": minimized.digest(),
        "num_jobs": len(spec.workload.jobs),
        "minimized_jobs": len(minimized.workload.jobs),
        "first_diverging_minute": diff.first_diverging_minute,
        "perturb": perturb,
        "field_deltas": [
            {
                "job_id": delta.job_id,
                "field": delta.field,
                "reference": delta.reference,
                "optimized": delta.optimized,
            }
            for delta in diff.field_deltas
        ],
        "schedule_diff": diff.schedule_diff,
    }
    (bundle_dir / "bundle.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    with open(bundle_dir / "spec.pkl", "wb") as stream:
        pickle.dump(minimized, stream)
    (bundle_dir / "report.txt").write_text(diff.render() + "\n", encoding="utf-8")
    return bundle_dir
