"""Exception hierarchy for the GAIA reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TraceError(ReproError):
    """A carbon or workload trace is malformed or too short for the request."""


class ConfigError(ReproError):
    """A simulation, cluster, or policy configuration is invalid."""


class SchedulingError(ReproError):
    """A policy produced an invalid decision (e.g. start before arrival)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class CapacityError(ReproError):
    """Capacity bookkeeping was violated (double-free / over-allocation)."""
