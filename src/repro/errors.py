"""Exception hierarchy for the GAIA reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class TraceError(ReproError):
    """A carbon or workload trace is malformed or too short for the request."""


class ConfigError(ReproError):
    """A simulation, cluster, or policy configuration is invalid."""


class SchedulingError(ReproError):
    """A policy produced an invalid decision (e.g. start before arrival)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class CapacityError(ReproError):
    """Capacity bookkeeping was violated (double-free / over-allocation)."""


class CampaignError(ReproError):
    """A campaign directory is invalid, locked, or inconsistent.

    Raised by :class:`repro.simulator.runner.campaign.Campaign` when a
    directory cannot be created/loaded or when a second runner holds the
    campaign lock.
    """


class SweepError(ReproError):
    """A batch run finished with failed specs after exhausting recovery.

    Raised by :func:`repro.simulator.runner.run_many` under the default
    ``on_error="raise"`` policy.  Unlike a raw worker traceback it keeps
    the sweep's partial outcome: ``results`` has one entry per submitted
    spec (``None`` for failed slots) and ``failures`` one structured
    :class:`repro.simulator.runner.SpecFailure` per failed slot.
    """

    def __init__(self, message: str, results=None, failures=None):
        super().__init__(message)
        self.results = results if results is not None else []
        self.failures = failures if failures is not None else []
