"""repro -- reproduction of GAIA (ASPLOS '24): carbon-, performance-, and
cost-aware batch scheduling on cloud purchase options.

Quickstart::

    from repro import run_simulation, region_trace, alibaba_like, week_long_trace

    workload = week_long_trace(alibaba_like(20_000, seed=1), num_jobs=1_000)
    carbon = region_trace("SA-AU")
    nowait = run_simulation(workload, carbon, "nowait")
    gaia = run_simulation(workload, carbon, "res-first:carbon-time", reserved_cpus=9)
    print(gaia.carbon_savings_vs(nowait), gaia.cost_increase_vs(nowait))

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper's figures mapped to the benchmark harness.
"""

from __future__ import annotations

from repro.carbon import (
    CarbonIntensityTrace,
    HistoricalForecaster,
    NoisyForecaster,
    PerfectForecaster,
    RegionProfile,
    generate_carbon_trace,
    region_trace,
)
from repro.federation import (
    FederatedRegion,
    FederatedResult,
    GreedySpatial,
    HomeRegion,
    SpatioTemporal,
    run_federated_simulation,
)
from repro.cluster import (
    DEFAULT_ENERGY,
    DEFAULT_PRICING,
    CheckpointConfig,
    DiurnalHazard,
    EnergyModel,
    HourlyHazard,
    NoEvictions,
    PricingModel,
    PurchaseOption,
)
from repro.policies import (
    AllWaitThreshold,
    CarbonTime,
    Decision,
    Ecovisor,
    LowestSlot,
    LowestWindow,
    NoWait,
    Policy,
    ResFirst,
    SpotFirst,
    SpotRes,
    WaitAwhile,
    make_policy,
    policy_table,
)
from repro.obs import (
    CollectingTracer,
    JsonlTracer,
    MetricsRegistry,
    Tracer,
    aggregate_metrics,
    tracer_from_env,
)
from repro.scaling import (
    AmdahlSpeedup,
    LinearSpeedup,
    MalleableJob,
    ScalingPlan,
    fixed_allocation_plan,
    plan_carbon_scaling,
)
from repro.simulator import (
    JobRecord,
    ResultCache,
    RunStats,
    SimulationResult,
    SimulationSpec,
    run_many,
    run_simulation,
)
from repro.workload import (
    Job,
    JobQueue,
    QueueSet,
    WorkloadTrace,
    alibaba_like,
    azure_like,
    default_queue_set,
    mustang_like,
    poisson_exponential,
    week_long_trace,
    year_long_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # carbon
    "CarbonIntensityTrace",
    "RegionProfile",
    "generate_carbon_trace",
    "region_trace",
    "PerfectForecaster",
    "NoisyForecaster",
    "HistoricalForecaster",
    # federation
    "FederatedRegion",
    "FederatedResult",
    "HomeRegion",
    "GreedySpatial",
    "SpatioTemporal",
    "run_federated_simulation",
    # cluster
    "PurchaseOption",
    "PricingModel",
    "DEFAULT_PRICING",
    "EnergyModel",
    "DEFAULT_ENERGY",
    "NoEvictions",
    "HourlyHazard",
    "DiurnalHazard",
    "CheckpointConfig",
    # workload
    "Job",
    "JobQueue",
    "QueueSet",
    "default_queue_set",
    "WorkloadTrace",
    "alibaba_like",
    "azure_like",
    "mustang_like",
    "poisson_exponential",
    "week_long_trace",
    "year_long_trace",
    # policies
    "Policy",
    "Decision",
    "NoWait",
    "AllWaitThreshold",
    "WaitAwhile",
    "Ecovisor",
    "LowestSlot",
    "LowestWindow",
    "CarbonTime",
    "ResFirst",
    "SpotFirst",
    "SpotRes",
    "make_policy",
    "policy_table",
    # scaling (extension)
    "MalleableJob",
    "ScalingPlan",
    "LinearSpeedup",
    "AmdahlSpeedup",
    "plan_carbon_scaling",
    "fixed_allocation_plan",
    # simulator
    "run_simulation",
    "SimulationResult",
    "JobRecord",
    # batch runner
    "SimulationSpec",
    "run_many",
    "RunStats",
    "ResultCache",
    # observability
    "Tracer",
    "JsonlTracer",
    "CollectingTracer",
    "tracer_from_env",
    "MetricsRegistry",
    "aggregate_metrics",
]
