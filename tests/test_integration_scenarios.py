"""End-to-end user journeys across the whole library.

Each scenario exercises the full pipeline -- trace generation, sampling,
simulation, analysis, verification -- the way the README and examples
compose it, with cross-module consistency checks.
"""

import numpy as np
import pytest

from repro import (
    CheckpointConfig,
    HourlyHazard,
    PurchaseOption,
    alibaba_like,
    region_trace,
    run_simulation,
    week_long_trace,
)
from repro.analysis.metrics import savings_per_cost_percent
from repro.analysis.tradeoff import knee_point, reserved_sweep
from repro.simulator.results import demand_profile
from repro.simulator.validation import assert_valid, verify_result
from repro.units import days, hours
from repro.workload.job import default_queue_set


def assert_accounting(*results, queues=None):
    """Re-derive every accounting invariant for each simulation result.

    ``assert_valid`` raises on the first violation, so each end-to-end
    journey doubles as an invariant regression test (the runtime
    counterpart of the simlint rules -- see docs/linting.md).
    """
    for result in results:
        assert_valid(result, queues=queues)


@pytest.fixture(scope="module")
def workload():
    return week_long_trace(
        alibaba_like(6_000, horizon=days(40), seed=21), num_jobs=250
    )


@pytest.fixture(scope="module")
def carbon():
    return region_trace("SA-AU")


class TestReadmeJourney:
    """The README quickstart, with its implicit claims verified."""

    def test_quickstart_flow(self, workload, carbon):
        nowait = run_simulation(workload, carbon, "nowait")
        gaia = run_simulation(
            workload, carbon, "res-first:carbon-time",
            reserved_cpus=int(workload.mean_demand / 2),
        )
        assert gaia.carbon_savings_vs(nowait) > 0
        assert gaia.total_cost < nowait.total_cost  # reserved pool pays off
        assert gaia.mean_waiting_hours > 0
        assert verify_result(gaia, queues=default_queue_set()) == []
        assert_accounting(nowait, gaia, queues=default_queue_set())

    def test_nowait_realizes_the_arrival_demand(self, workload, carbon):
        """Under NoWait, the realized demand profile equals the
        workload's run-on-arrival profile -- two independent code paths."""
        result = run_simulation(workload, carbon, "nowait")
        assert_accounting(result, queues=default_queue_set())
        realized = demand_profile(result.records, workload.horizon)
        planned = workload.demand_profile()
        np.testing.assert_allclose(realized, planned)

    def test_carbon_matches_manual_recomputation(self, workload, carbon):
        """Total carbon equals an independent recomputation from usage
        intervals and the raw trace."""
        result = run_simulation(workload, carbon, "carbon-time")
        assert_accounting(result, queues=default_queue_set())
        from repro.simulator.simulation import prepare_carbon

        covering = prepare_carbon(carbon, workload, default_queue_set())
        recomputed = 0.0
        for record in result.records:
            for interval in record.usage:
                recomputed += (
                    covering.interval_carbon(interval.start, interval.end)
                    * 0.01 * record.cpus
                )
        assert result.total_carbon_g == pytest.approx(recomputed)


class TestCapacityPlanningJourney:
    def test_sweep_and_knee(self, workload, carbon):
        mean = workload.mean_demand
        points = reserved_sweep(
            workload, carbon, "res-first:carbon-time",
            [0, int(mean / 2), int(mean), int(mean * 1.5)],
        )
        knee = knee_point(points)
        assert knee.reserved_cpus > 0
        assert knee.normalized_cost < 1.0
        # The knee's result is self-consistent with a direct run.
        direct = run_simulation(
            workload, carbon, "res-first:carbon-time",
            reserved_cpus=knee.reserved_cpus,
        )
        assert direct.total_cost == pytest.approx(knee.cost)
        assert_accounting(direct, queues=default_queue_set())


class TestSpotJourney:
    def test_checkpointed_spot_under_pressure(self, workload, carbon):
        result = run_simulation(
            workload, carbon, "spot-res:carbon-time", reserved_cpus=8,
            eviction_model=HourlyHazard(0.10),
            checkpointing=CheckpointConfig(interval=30, overhead=2),
            retry_spot=True,
        )
        assert verify_result(result) == []
        assert_accounting(result, queues=default_queue_set())
        options = {
            option
            for record in result.records
            for option in record.options_used
        }
        assert PurchaseOption.SPOT in options
        assert PurchaseOption.RESERVED in options

    def test_headline_metric_composes(self, workload, carbon):
        baseline = run_simulation(workload, carbon, "nowait", reserved_cpus=8)
        gaia = run_simulation(
            workload, carbon, "spot-res:carbon-time", reserved_cpus=8
        )
        ratio = savings_per_cost_percent(gaia, baseline)
        assert ratio > 0  # saves carbon without losing money overall
        assert_accounting(baseline, gaia, queues=default_queue_set())


class TestPersistenceJourney:
    def test_workload_roundtrip_reproduces_simulation(self, tmp_path, workload, carbon):
        path = str(tmp_path / "workload.csv")
        workload.to_csv(path)
        from repro.workload.trace import WorkloadTrace

        reloaded = WorkloadTrace.from_csv(path, name=workload.name,
                                          horizon=workload.horizon)
        a = run_simulation(workload, carbon, "carbon-time")
        b = run_simulation(reloaded, carbon, "carbon-time")
        assert a.total_carbon_g == b.total_carbon_g
        assert a.total_cost == b.total_cost
        assert_accounting(a, b, queues=default_queue_set())
